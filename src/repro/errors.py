"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """A structural problem with a multi-cost graph (missing node, bad edge...)."""


class FacilityError(ReproError):
    """A problem with a facility definition or facility set."""


class LocationError(ReproError):
    """An invalid network location (unknown edge, offset out of range...)."""


class StorageError(ReproError):
    """A problem in the simulated disk storage layer."""


class PackFormatError(StorageError):
    """A dataset pack file is structurally invalid (bad magic, wrong
    endianness, truncation, undecodable slot or catalog)."""


class PackVersionError(PackFormatError):
    """A dataset pack was written by an incompatible format version."""


class PackChecksumError(PackFormatError):
    """A dataset pack's content does not match its recorded SHA-256."""


class QueryError(ReproError):
    """An invalid preference-query specification (bad k, bad weights...)."""


class PolicyError(QueryError):
    """An invalid or conflicting :class:`repro.api.ExecutionPolicy`.

    Subclasses :class:`QueryError` so call sites written before the policy
    layer existed (which catch ``QueryError`` around service construction)
    keep catching the same failures.
    """


class ServeError(ReproError):
    """A serving-tier problem (bad serve configuration, transport misuse).

    Request-level failures (malformed payloads, unknown subscriptions) are
    reported to clients as structured error envelopes, never raised across
    the transport; this class covers server-side misconfiguration."""


class JournalError(ServeError):
    """A batch-job journal is structurally corrupt (bad framing or checksum
    anywhere before the final record — a torn *tail* is tolerated and
    truncated, earlier corruption is not)."""


class JournalMismatchError(JournalError):
    """A journal was recorded against a different dataset (catalog/workload
    fingerprint mismatch); replaying it would serve stale results."""


class RetryBudgetExceededError(ServeError):
    """A client-side retry policy ran out of attempts or wall-clock budget
    before the request succeeded; carries the last response's status."""

    def __init__(self, message: str, *, status: int | None = None, attempts: int = 0):
        super().__init__(message)
        self.status = status
        self.attempts = attempts


class DataGenerationError(ReproError):
    """Invalid parameters passed to one of the synthetic data generators."""
