"""The disk-resident storage scheme of Figure 2: ``NetworkStorage``.

``NetworkStorage`` assembles the simulated disk, the LRU buffer pool, the
adjacency file + adjacency tree and the facility file + facility tree into
one object that implements the :class:`~repro.network.accessor.GraphAccessor`
protocol.  All LSA/CEA/top-k runs in the experiments of Section VI use this
accessor, so that page reads (the dominant cost in the paper) are measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.network.accessor import AccessStatistics, AdjacencyRecord, FacilityRecord
from repro.network.facilities import FacilityId, FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph, NodeId
from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.layout import (
    StoredAdjacencyEntry,
    build_adjacency_file,
    build_facility_file,
)
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageKind, RecordSizes
from repro.storage.btree import StaticBPlusTree

__all__ = ["StorageConfig", "NetworkStorage", "StorageSnapshotView"]


@dataclass(frozen=True)
class StorageConfig:
    """Knobs of the simulated storage layer.

    ``buffer_fraction`` is the LRU buffer size expressed as a fraction of the
    pages occupied by the MCN information (adjacency tree + adjacency file),
    exactly as in the paper's experiments (0 %–2 %, default 1 %).
    """

    page_size: int = DEFAULT_PAGE_SIZE
    buffer_fraction: float = 0.01
    record_sizes: RecordSizes = RecordSizes()

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise StorageError("page size must be positive")
        if self.buffer_fraction < 0:
            raise StorageError("buffer fraction cannot be negative")


class NetworkStorage:
    """Disk-resident MCN + facility storage with an LRU buffer.

    Implements the accessor protocol used by every query algorithm:

    * :meth:`adjacency` — adjacency-tree traversal + adjacency-file page reads;
    * :meth:`edge_facilities` — facility-file page reads (the pointer comes
      with the adjacency entry, as in Figure 2, so no extra index I/O);
    * :meth:`facility_edge` — facility-tree traversal (used once per candidate
      when the shrinking stage starts).
    """

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        config: StorageConfig | None = None,
    ):
        self._graph = graph
        self._facilities = facilities
        self._config = config or StorageConfig()
        self._disk = SimulatedDisk(self._config.page_size)
        sizes = self._config.record_sizes

        self._facility_layout = build_facility_file(self._disk, facilities, record_sizes=sizes)
        self._adjacency_layout = build_adjacency_file(
            self._disk, graph, facilities, self._facility_layout, record_sizes=sizes
        )
        self._adjacency_tree = StaticBPlusTree(
            self._disk,
            PageKind.ADJACENCY_INDEX,
            ((node_id, pages) for node_id, pages in self._adjacency_layout.node_pages.items()),
            record_sizes=sizes,
        )
        self._facility_tree = StaticBPlusTree(
            self._disk,
            PageKind.FACILITY_INDEX,
            (
                (facility.facility_id, (facility.edge_id, self._facility_layout.edge_pages.get(facility.edge_id, ())))
                for facility in facilities
            ),
            record_sizes=sizes,
        )
        capacity = max(int(round(self.mcn_page_count * self._config.buffer_fraction)), 0)
        if self._config.buffer_fraction > 0:
            capacity = max(capacity, 1)
        self._buffer = LRUBufferPool(self._disk, capacity)
        self._stats = AccessStatistics()

    # ------------------------------------------------------------------ #
    # Sizing / introspection
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
    ) -> "NetworkStorage":
        """Convenience constructor mirroring the paper's two knobs."""
        return cls(graph, facilities, StorageConfig(page_size=page_size, buffer_fraction=buffer_fraction))

    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def facilities(self) -> FacilitySet:
        return self._facilities

    @property
    def config(self) -> StorageConfig:
        return self._config

    @property
    def disk(self) -> SimulatedDisk:
        return self._disk

    @property
    def buffer(self) -> LRUBufferPool:
        return self._buffer

    @property
    def num_cost_types(self) -> int:
        return self._graph.num_cost_types

    @property
    def mcn_page_count(self) -> int:
        """Pages occupied by the MCN information (adjacency tree + adjacency file)."""
        return self._adjacency_layout.page_count + self._adjacency_tree.page_count()

    @property
    def total_page_count(self) -> int:
        return self._disk.num_pages

    @property
    def statistics(self) -> AccessStatistics:
        stats = self._stats
        stats.page_reads = self._buffer.statistics.misses
        stats.buffer_hits = self._buffer.statistics.hits
        return stats

    def reset_statistics(self, *, clear_buffer: bool = False) -> None:
        """Zero all counters; optionally also drop buffered pages (cold start)."""
        self._stats.reset()
        self._buffer.statistics.reset()
        self._disk.statistics.reset()
        if clear_buffer:
            self._buffer.clear()

    # ------------------------------------------------------------------ #
    # Accessor protocol
    # ------------------------------------------------------------------ #
    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        """Adjacency list of ``node_id`` (index traversal + data page reads)."""
        self._stats.adjacency_requests += 1
        return self._read_adjacency(node_id, self._buffer)

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        """Facilities on ``edge_id`` (facility-file page reads only)."""
        self._stats.facility_requests += 1
        return self._read_edge_facilities(edge_id, self._buffer)

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        """Edge of a facility (facility-tree traversal)."""
        self._stats.facility_tree_requests += 1
        return self._read_facility_edge(facility_id, self._buffer)

    # ------------------------------------------------------------------ #
    # Page-level reads, parameterised by the buffer pool doing the I/O
    # (shared between the storage itself and its read-only snapshot views)
    # ------------------------------------------------------------------ #
    def _read_adjacency(self, node_id: NodeId, buffer: LRUBufferPool) -> list[AdjacencyRecord]:
        try:
            pages = self._adjacency_tree.lookup(node_id, buffer)
        except StorageError:
            raise StorageError(f"node {node_id} not present in the adjacency tree") from None
        records: list[AdjacencyRecord] = []
        for page_id in pages:  # type: ignore[union-attr]
            page = buffer.read(page_id)
            for stored in page.records:
                if isinstance(stored, StoredAdjacencyEntry) and stored.node == node_id:
                    records.append(stored.record)
        return records

    def _read_edge_facilities(self, edge_id: EdgeId, buffer: LRUBufferPool) -> list[FacilityRecord]:
        pages = self._facility_layout.edge_pages.get(edge_id, ())
        records: list[FacilityRecord] = []
        for page_id in pages:
            page = buffer.read(page_id)
            for stored in page.records:
                if isinstance(stored, FacilityRecord) and stored.edge_id == edge_id:
                    records.append(stored)
        return records

    def _read_facility_edge(self, facility_id: FacilityId, buffer: LRUBufferPool) -> EdgeId:
        try:
            edge_id, _pages = self._facility_tree.lookup(facility_id, buffer)
        except StorageError:
            raise StorageError(f"facility {facility_id} not present in the facility tree") from None
        return edge_id

    # ------------------------------------------------------------------ #
    # Page plans (the compiled-graph fast path)
    # ------------------------------------------------------------------ #
    # Every accessor request touches a fixed page sequence: the files and
    # index trees are bulk-loaded and never mutated, so the sequence can be
    # precomputed once and replayed through any buffer pool.  Replaying a
    # plan performs exactly the buffered reads the record-materialising read
    # path performs — same pages, same order — which is how the expansion
    # kernel keeps page-read/buffer-hit counters bit-identical without
    # scanning page records.  Plan extraction itself reads via
    # :meth:`SimulatedDisk.peek` and moves no counter.

    def adjacency_page_plan(self, node_id: NodeId) -> tuple[int, ...]:
        """Page ids an :meth:`adjacency` request for ``node_id`` reads, in order."""
        return self._adjacency_tree.path_pages(node_id) + self._adjacency_layout.node_pages.get(
            node_id, ()
        )

    def facility_page_plan(self, edge_id: EdgeId) -> tuple[int, ...]:
        """Page ids an :meth:`edge_facilities` request for ``edge_id`` reads, in order."""
        return self._facility_layout.edge_pages.get(edge_id, ())

    def facility_tree_page_plan(self, facility_id: FacilityId) -> tuple[int, ...]:
        """Page ids a :meth:`facility_edge` request for ``facility_id`` reads, in order."""
        return self._facility_tree.path_pages(facility_id)

    def snapshot_view(self, *, buffer_capacity: int | None = None) -> "StorageSnapshotView":
        """A read-only view sharing this storage's pages but owning its buffer.

        The view reads the same simulated disk (adjacency/facility files and
        trees are never mutated after construction), yet brings its own LRU
        buffer pool and I/O counters.  This is how parallel shard workers get
        independent data layers over one built network without copying any
        page: N workers cost N buffers, not N copies of the MCN.

        ``buffer_capacity`` overrides the page capacity of the view's buffer;
        by default the view gets the same capacity as this storage's pool.
        """
        if buffer_capacity is None:
            buffer_capacity = self._buffer.capacity
        return StorageSnapshotView(self, buffer_capacity)

    def describe(self) -> dict[str, int]:
        """Page-count summary used by the CLI and examples."""
        return {
            "adjacency_file_pages": self._adjacency_layout.page_count,
            "adjacency_tree_pages": self._adjacency_tree.page_count(),
            "facility_file_pages": self._facility_layout.page_count,
            "facility_tree_pages": self._facility_tree.page_count(),
            "mcn_pages": self.mcn_page_count,
            "total_pages": self.total_page_count,
            "buffer_capacity": self._buffer.capacity,
        }


class StorageSnapshotView:
    """Read-only accessor over a built :class:`NetworkStorage`.

    Shares the base storage's simulated disk, file layouts and index trees
    (all immutable once built) while owning a private LRU buffer pool and
    private :class:`AccessStatistics`.  Views therefore satisfy the
    :class:`~repro.network.accessor.GraphAccessor` protocol with fully
    isolated I/O accounting: page reads done through one view never warm
    another view's buffer nor touch the base storage's counters, which is
    exactly what per-shard workers of the parallel query service need.
    """

    def __init__(self, base: NetworkStorage, buffer_capacity: int):
        self._base = base
        self._buffer = LRUBufferPool(base.disk, buffer_capacity)
        self._stats = AccessStatistics()

    @property
    def base(self) -> NetworkStorage:
        """The storage whose pages this view reads."""
        return self._base

    @property
    def graph(self) -> MultiCostGraph:
        return self._base.graph

    @property
    def facilities(self) -> FacilitySet:
        return self._base.facilities

    @property
    def buffer(self) -> LRUBufferPool:
        """The view's private buffer pool."""
        return self._buffer

    @property
    def num_cost_types(self) -> int:
        return self._base.num_cost_types

    @property
    def statistics(self) -> AccessStatistics:
        stats = self._stats
        stats.page_reads = self._buffer.statistics.misses
        stats.buffer_hits = self._buffer.statistics.hits
        return stats

    def reset_statistics(self, *, clear_buffer: bool = False) -> None:
        """Zero the view's counters; optionally drop its buffered pages."""
        self._stats.reset()
        self._buffer.statistics.reset()
        if clear_buffer:
            self._buffer.clear()

    def snapshot_view(self, *, buffer_capacity: int | None = None) -> "StorageSnapshotView":
        """A sibling view of the same base storage (views are not stackable)."""
        if buffer_capacity is None:
            buffer_capacity = self._buffer.capacity
        return StorageSnapshotView(self._base, buffer_capacity)

    # ------------------------------------------------------------------ #
    # Accessor protocol (same page reads as the base, private buffer)
    # ------------------------------------------------------------------ #
    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        self._stats.adjacency_requests += 1
        return self._base._read_adjacency(node_id, self._buffer)

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        self._stats.facility_requests += 1
        return self._base._read_edge_facilities(edge_id, self._buffer)

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        self._stats.facility_tree_requests += 1
        return self._base._read_facility_edge(facility_id, self._buffer)
