"""An LRU buffer pool between the query algorithms and the simulated disk.

The paper's experiments vary the buffer size between 0 % and 2 % of the
pages occupied by the MCN information (default 1 %); the pool here
implements exactly that: a fixed-capacity page cache with least-recently-used
eviction and hit/miss accounting.  Capacity 0 disables caching entirely
(every request is a physical read), matching the paper's 0 % configuration.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.pages import Page

__all__ = ["BufferStatistics", "LRUBufferPool"]


@dataclass
class BufferStatistics:
    """Logical request counters of the buffer pool."""

    requests: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0


class LRUBufferPool:
    """Fixed-capacity LRU cache of disk pages."""

    def __init__(self, disk: SimulatedDisk, capacity: int):
        if capacity < 0:
            raise StorageError("buffer capacity cannot be negative")
        self._disk = disk
        self._capacity = capacity
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self._stats = BufferStatistics()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def statistics(self) -> BufferStatistics:
        return self._stats

    @property
    def resident_pages(self) -> int:
        return len(self._frames)

    def read(self, page_id: int) -> Page:
        """Return the page, from the buffer when resident, otherwise from disk."""
        self._stats.requests += 1
        if self._capacity == 0:
            self._stats.misses += 1
            return self._disk.read(page_id)
        frame = self._frames.get(page_id)
        if frame is not None:
            self._stats.hits += 1
            self._frames.move_to_end(page_id)
            return frame
        self._stats.misses += 1
        page = self._disk.read(page_id)
        self._frames[page_id] = page
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
        return page

    def clear(self) -> None:
        """Drop all resident pages (used between repeated queries in benchmarks)."""
        self._frames.clear()
