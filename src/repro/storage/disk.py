"""A simulated disk: a flat page store with read/write accounting."""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.pages import Page, PageKind

__all__ = ["DiskStatistics", "SimulatedDisk"]


@dataclass
class DiskStatistics:
    """Raw physical I/O counters of the simulated disk."""

    page_reads: int = 0
    page_writes: int = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0


class SimulatedDisk:
    """Stores pages by id and counts every physical read and write.

    All reads normally go through :class:`repro.storage.buffer.LRUBufferPool`;
    reading the disk directly is only done by the buffer pool itself (on a
    miss) and by tests.
    """

    def __init__(self, page_size: int):
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self._page_size = page_size
        self._pages: dict[int, Page] = {}
        self._next_page_id = 0
        self._stats = DiskStatistics()
        # One disk may back many snapshot views read by concurrent shard
        # workers; the counter increment must not lose updates across threads.
        self._stats_lock = threading.Lock()

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def statistics(self) -> DiskStatistics:
        return self._stats

    def allocate(self, kind: PageKind) -> Page:
        """Create and persist a fresh empty page of the given kind."""
        page = Page(page_id=self._next_page_id, kind=kind)
        self._pages[page.page_id] = page
        self._next_page_id += 1
        self._stats.page_writes += 1
        return page

    def read(self, page_id: int) -> Page:
        """Physically read a page (counted; safe under concurrent readers)."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise StorageError(f"unknown page {page_id}") from None
        with self._stats_lock:
            self._stats.page_reads += 1
        return page

    def peek(self, page_id: int) -> Page:
        """Read a page without touching any counter.

        Used only at *build* time — the compiled-graph snapshot walks the
        index trees once to precompute per-request page plans, and that walk
        must not perturb the physical-read accounting the experiments measure.
        """
        try:
            return self._pages[page_id]
        except KeyError:
            raise StorageError(f"unknown page {page_id}") from None

    def pages_of_kind(self, kind: PageKind) -> int:
        """Number of pages of a given kind (used to size the LRU buffer)."""
        return sum(1 for page in self._pages.values() if page.kind is kind)
