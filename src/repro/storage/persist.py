"""The on-disk dataset pack format and its ``mmap``-backed page store.

A *pack* is a single file holding an entire built dataset: every page of the
Figure-2 storage scheme (adjacency file, facility file and both bulk-loaded
B+-trees) plus the binary side tables a graph view needs (node ids, edge
table, facility-page index) and a JSON catalog describing all of it.

Layout (all integers little-endian)::

    +--------------------------------------------------------------+
    | header (88 bytes, fixed)                                     |
    |   magic "MCNPACK1" | endian tag | format version             |
    |   page_size | slot_size | num_pages                          |
    |   catalog offset | catalog length | SHA-256 checksum         |
    +--------------------------------------------------------------+
    | page region: num_pages slots of slot_size bytes each         |
    |   slot i starts at HEADER_SIZE + i * slot_size  (arithmetic) |
    +--------------------------------------------------------------+
    | binary sections (node ids, edge table, facility-page index)  |
    +--------------------------------------------------------------+
    | catalog JSON (section offsets, tree shapes, page counts)     |
    +--------------------------------------------------------------+

Every page is encoded into a fixed-width slot (the width is the largest
encoded page, so ``page_id -> file offset`` is a multiply-add), which lets
:class:`FileDisk` serve :meth:`read`/:meth:`peek` straight off an ``mmap``
with the exact interface of :class:`~repro.storage.disk.SimulatedDisk`.  The
checksum is the SHA-256 of the whole file with the checksum field zeroed.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
import threading

from repro.errors import (
    PackChecksumError,
    PackFormatError,
    PackVersionError,
    StorageError,
)
from repro.network.accessor import AdjacencyRecord, FacilityRecord
from repro.storage.btree import _InternalRecord, _LeafRecord
from repro.storage.disk import DiskStatistics
from repro.storage.layout import StoredAdjacencyEntry
from repro.storage.pages import Page, PageKind

__all__ = [
    "PACK_MAGIC",
    "PACK_VERSION",
    "FileDisk",
    "PackWriter",
    "SpoolingDisk",
    "compute_pack_checksum",
    "read_pack_header",
]

PACK_MAGIC = b"MCNPACK1"
PACK_VERSION = 1
# Written as a native little-endian u32; a pack produced on (or doctored
# for) a big-endian layout reads back as 0x04030201 and is rejected.
_ENDIAN_TAG = 0x01020304
_ENDIAN_TAG_SWAPPED = 0x04030201

_HEADER = struct.Struct("<8sIIQQQQQ32s")
HEADER_SIZE = _HEADER.size
_CHECKSUM_OFFSET = HEADER_SIZE - 32

_SLOT_HEADER = struct.Struct("<BxHI")  # page kind, pad, record count, used_bytes

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_FACILITY_RECORD = struct.Struct("<qqd")

_KIND_CODES = {
    PageKind.ADJACENCY: 0,
    PageKind.FACILITY: 1,
    PageKind.ADJACENCY_INDEX: 2,
    PageKind.FACILITY_INDEX: 3,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

_LEAF = 0
_INTERNAL = 1


# --------------------------------------------------------------------- #
# Page slot codec
# --------------------------------------------------------------------- #
def _append_ids(parts: list[bytes], ids) -> None:
    parts.append(_U32.pack(len(ids)))
    for value in ids:
        parts.append(_I64.pack(value))


def encode_page(page: Page, num_cost_types: int) -> bytes:
    """Serialise one page (without slot padding)."""
    parts: list[bytes] = [
        _SLOT_HEADER.pack(_KIND_CODES[page.kind], len(page.records), page.used_bytes)
    ]
    if page.kind is PageKind.ADJACENCY:
        for stored in page.records:
            record = stored.record
            parts.append(
                struct.pack(
                    "<qqqqdI",
                    stored.node,
                    record.neighbor,
                    record.edge_id,
                    record.first_node,
                    record.length,
                    record.facility_count,
                )
            )
            for cost in record.costs:
                parts.append(_F64.pack(cost))
            _append_ids(parts, stored.facility_pages)
    elif page.kind is PageKind.FACILITY:
        for record in page.records:
            parts.append(
                _FACILITY_RECORD.pack(record.facility_id, record.edge_id, record.offset)
            )
    else:
        for record in page.records:
            if isinstance(record, _LeafRecord):
                parts.append(_U8.pack(_LEAF))
                _append_ids(parts, record.keys)
                if page.kind is PageKind.ADJACENCY_INDEX:
                    # Adjacency-tree values are adjacency-file page tuples.
                    for pages in record.values:
                        _append_ids(parts, pages)
                else:
                    # Facility-tree values are (edge id, facility-page tuple).
                    for edge_id, pages in record.values:
                        parts.append(_I64.pack(edge_id))
                        _append_ids(parts, pages)
            elif isinstance(record, _InternalRecord):
                parts.append(_U8.pack(_INTERNAL))
                _append_ids(parts, record.separators)
                _append_ids(parts, record.children)
            else:  # pragma: no cover - guarded by the storage layer itself
                raise PackFormatError(
                    f"unencodable index record {type(record).__name__}"
                )
    return b"".join(parts)


class _Cursor:
    """Sequential struct reads over a buffer, with bounds checking."""

    __slots__ = ("buffer", "offset", "end")

    def __init__(self, buffer, offset: int, end: int):
        self.buffer = buffer
        self.offset = offset
        self.end = end

    def unpack(self, fmt: struct.Struct):
        if self.offset + fmt.size > self.end:
            raise PackFormatError("page slot ends mid-record (corrupt pack)")
        values = fmt.unpack_from(self.buffer, self.offset)
        self.offset += fmt.size
        return values

    def read_ids(self) -> tuple[int, ...]:
        (count,) = self.unpack(_U32)
        if count > (self.end - self.offset) // _I64.size:
            raise PackFormatError("id list longer than its page slot (corrupt pack)")
        values = struct.unpack_from(f"<{count}q", self.buffer, self.offset)
        self.offset += count * _I64.size
        return values


def decode_page(buffer, offset: int, slot_size: int, page_id: int, num_cost_types: int) -> Page:
    """Decode the page stored in the slot starting at ``offset``."""
    cursor = _Cursor(buffer, offset, offset + slot_size)
    kind_code, record_count, used_bytes = cursor.unpack(_SLOT_HEADER)
    kind = _CODE_KINDS.get(kind_code)
    if kind is None:
        raise PackFormatError(f"page {page_id} has unknown kind code {kind_code}")
    records: list[object] = []
    if kind is PageKind.ADJACENCY:
        entry = struct.Struct("<qqqqdI")
        costs_struct = struct.Struct(f"<{num_cost_types}d")
        for _ in range(record_count):
            node, neighbor, edge_id, first_node, length, facility_count = cursor.unpack(entry)
            costs = cursor.unpack(costs_struct)
            facility_pages = cursor.read_ids()
            records.append(
                StoredAdjacencyEntry(
                    node=node,
                    record=AdjacencyRecord(
                        neighbor=neighbor,
                        edge_id=edge_id,
                        costs=costs,
                        length=length,
                        first_node=first_node,
                        facility_count=facility_count,
                    ),
                    facility_pages=facility_pages,
                )
            )
    elif kind is PageKind.FACILITY:
        for _ in range(record_count):
            facility_id, edge_id, facility_offset = cursor.unpack(_FACILITY_RECORD)
            records.append(FacilityRecord(facility_id, edge_id, facility_offset))
    else:
        for _ in range(record_count):
            (record_type,) = cursor.unpack(_U8)
            if record_type == _LEAF:
                keys = cursor.read_ids()
                values: list[object] = []
                if kind is PageKind.ADJACENCY_INDEX:
                    for _ in keys:
                        values.append(cursor.read_ids())
                else:
                    for _ in keys:
                        (edge_id,) = cursor.unpack(_I64)
                        values.append((edge_id, cursor.read_ids()))
                records.append(_LeafRecord(keys=keys, values=tuple(values)))
            elif record_type == _INTERNAL:
                separators = cursor.read_ids()
                children = cursor.read_ids()
                records.append(_InternalRecord(separators=separators, children=children))
            else:
                raise PackFormatError(
                    f"page {page_id} has unknown index record type {record_type}"
                )
    return Page(page_id=page_id, kind=kind, records=records, used_bytes=used_bytes)


# --------------------------------------------------------------------- #
# Checksum
# --------------------------------------------------------------------- #
def compute_pack_checksum(readable, total_size: int) -> bytes:
    """SHA-256 of a pack with the header's checksum field zeroed.

    ``readable`` must support ``seek``/``read``; the file is consumed in
    chunks so arbitrarily large packs hash with constant memory.
    """
    digest = hashlib.sha256()
    readable.seek(0)
    digest.update(readable.read(_CHECKSUM_OFFSET))
    digest.update(b"\x00" * 32)
    readable.seek(_CHECKSUM_OFFSET + 32)
    remaining = total_size - (_CHECKSUM_OFFSET + 32)
    while remaining > 0:
        chunk = readable.read(min(remaining, 1 << 20))
        if not chunk:
            raise PackFormatError("pack file shrank while hashing")
        digest.update(chunk)
        remaining -= len(chunk)
    return digest.digest()


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #
class _SectionWriter:
    """Accumulates one binary section in a spill file."""

    def __init__(self, name: str, directory: str):
        self.name = name
        self._file = tempfile.TemporaryFile(dir=directory)
        self.length = 0

    def write(self, data: bytes) -> None:
        self._file.write(data)
        self.length += len(data)

    def copy_into(self, destination, chunk_size: int = 1 << 20) -> None:
        self._file.seek(0)
        while True:
            chunk = self._file.read(chunk_size)
            if not chunk:
                break
            destination.write(chunk)

    def close(self) -> None:
        self._file.close()


class PackWriter:
    """Streams encoded page slots and sections into a pack file.

    Pages and section bytes are spilled to temporary files as they arrive
    (the final slot width is only known once the largest page has been
    seen), then assembled into the destination file by :meth:`finalize`.
    Nothing is held in memory, so million-page packs build with bounded RSS.
    """

    def __init__(self, path: str, *, page_size: int, num_cost_types: int):
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self._path = os.fspath(path)
        self._page_size = page_size
        self._num_cost_types = num_cost_types
        directory = os.path.dirname(os.path.abspath(self._path)) or "."
        self._directory = directory
        self._slots = tempfile.TemporaryFile(dir=directory)
        self._sections: list[_SectionWriter] = []
        self._num_pages = 0
        self._max_slot = 0
        self._finalized = False

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def add_page(self, page: Page) -> None:
        """Append a page; pages must arrive in ``page_id`` order from 0."""
        if page.page_id != self._num_pages:
            raise StorageError(
                f"pages must be added in id order: expected {self._num_pages}, "
                f"got {page.page_id}"
            )
        encoded = encode_page(page, self._num_cost_types)
        self._slots.write(_U32.pack(len(encoded)))
        self._slots.write(encoded)
        self._max_slot = max(self._max_slot, len(encoded))
        self._num_pages += 1

    def section(self, name: str) -> _SectionWriter:
        """Open a named binary section; write bytes to the returned object."""
        writer = _SectionWriter(name, self._directory)
        self._sections.append(writer)
        return writer

    def finalize(self, catalog_payload: dict) -> dict:
        """Assemble the pack file and stamp its checksum.

        ``catalog_payload`` is extended with the slot geometry and section
        directory, serialised as the trailing JSON catalog, and returned.
        """
        if self._finalized:
            raise StorageError("pack writer already finalized")
        self._finalized = True
        # Align slots to 8 bytes so mmap'ed struct reads stay aligned.
        slot_size = (self._max_slot + 7) & ~7 if self._num_pages else 0
        payload = dict(catalog_payload)
        payload["format_version"] = PACK_VERSION
        payload["page_size"] = self._page_size
        payload["num_cost_types"] = self._num_cost_types
        payload["num_pages"] = self._num_pages
        payload["slot_size"] = slot_size

        sections: dict[str, list[int]] = {}
        offset = HEADER_SIZE + self._num_pages * slot_size
        for section in self._sections:
            sections[section.name] = [offset, section.length]
            offset += section.length
        payload["sections"] = sections
        catalog_offset = offset
        catalog_bytes = json.dumps(payload, sort_keys=True).encode("utf-8")

        with open(self._path, "wb") as out:
            out.write(
                _HEADER.pack(
                    PACK_MAGIC,
                    _ENDIAN_TAG,
                    PACK_VERSION,
                    self._page_size,
                    slot_size,
                    self._num_pages,
                    catalog_offset,
                    len(catalog_bytes),
                    b"\x00" * 32,
                )
            )
            self._slots.seek(0)
            for _ in range(self._num_pages):
                (length,) = _U32.unpack(self._slots.read(_U32.size))
                encoded = self._slots.read(length)
                out.write(encoded)
                out.write(b"\x00" * (slot_size - length))
            for section in self._sections:
                section.copy_into(out)
                section.close()
            out.write(catalog_bytes)
            out.flush()
        self._slots.close()
        with open(self._path, "r+b") as out:
            checksum = compute_pack_checksum(out, os.path.getsize(self._path))
            out.seek(_CHECKSUM_OFFSET)
            out.write(checksum)
        payload["checksum"] = checksum.hex()
        return payload


class SpoolingDisk:
    """A write-only stand-in for :class:`SimulatedDisk` that streams to a pack.

    The flat-file and B+-tree builders only ever touch the page they most
    recently allocated, so the previous page can be encoded and spilled the
    moment a new one is requested.  Reads are refused: nothing queries a
    dataset while it is being built.
    """

    def __init__(self, writer: PackWriter):
        self._writer = writer
        self._current: Page | None = None
        self._next_page_id = 0
        self._kind_counts = {kind: 0 for kind in PageKind}
        self._stats = DiskStatistics()

    @property
    def page_size(self) -> int:
        return self._writer.page_size

    @property
    def num_pages(self) -> int:
        return self._next_page_id

    @property
    def statistics(self) -> DiskStatistics:
        return self._stats

    def allocate(self, kind: PageKind) -> Page:
        self.flush()
        page = Page(page_id=self._next_page_id, kind=kind)
        self._current = page
        self._next_page_id += 1
        self._kind_counts[kind] += 1
        self._stats.page_writes += 1
        return page

    def flush(self) -> None:
        """Spill the in-flight page (called automatically; once more at the end)."""
        if self._current is not None:
            self._writer.add_page(self._current)
            self._current = None

    def read(self, page_id: int) -> Page:
        raise StorageError("a spooling disk is write-only (pack under construction)")

    def peek(self, page_id: int) -> Page:
        raise StorageError("a spooling disk is write-only (pack under construction)")

    def pages_of_kind(self, kind: PageKind) -> int:
        return self._kind_counts[kind]


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #
def read_pack_header(path: str) -> dict:
    """Parse and validate a pack header; returns its fields as a dict.

    Raises the typed pack errors on malformed input; never reads past the
    header, so it is safe on arbitrarily corrupt files.
    """
    size = os.path.getsize(path)
    if size < HEADER_SIZE:
        raise PackFormatError(
            f"{path}: file of {size} bytes is shorter than the {HEADER_SIZE}-byte header"
        )
    with open(path, "rb") as handle:
        raw = handle.read(HEADER_SIZE)
    (
        magic,
        endian_tag,
        version,
        page_size,
        slot_size,
        num_pages,
        catalog_offset,
        catalog_length,
        checksum,
    ) = _HEADER.unpack(raw)
    if magic != PACK_MAGIC:
        raise PackFormatError(f"{path}: bad magic {magic!r}; not a dataset pack")
    if endian_tag == _ENDIAN_TAG_SWAPPED:
        raise PackFormatError(
            f"{path}: byte-swapped endianness tag; pack written with opposite endianness"
        )
    if endian_tag != _ENDIAN_TAG:
        raise PackFormatError(f"{path}: corrupt endianness tag 0x{endian_tag:08x}")
    if version != PACK_VERSION:
        raise PackVersionError(
            f"{path}: pack format version {version}, this build reads version {PACK_VERSION}"
        )
    expected = catalog_offset + catalog_length
    if size < expected:
        raise PackFormatError(
            f"{path}: truncated pack ({size} bytes, catalog ends at {expected})"
        )
    return {
        "page_size": page_size,
        "slot_size": slot_size,
        "num_pages": num_pages,
        "catalog_offset": catalog_offset,
        "catalog_length": catalog_length,
        "checksum": checksum,
        "file_size": size,
    }


class FileDisk:
    """``mmap``-backed read-only page store over a dataset pack.

    Satisfies the read interface of :class:`~repro.storage.disk.SimulatedDisk`
    — counted :meth:`read`, uncounted :meth:`peek` (page-plan extraction),
    ``page_size`` / ``num_pages`` / ``statistics`` / :meth:`pages_of_kind` —
    so the LRU buffer pool, ``NetworkStorage``-style accessors, golden
    page-read fixtures and the differential oracle run unchanged over it.
    Pages are decoded fresh on every read; resident memory is therefore
    bounded by the buffer pool holding the decoded pages, not the dataset.
    """

    def __init__(self, path: str, *, verify_checksum: bool = True):
        self._path = os.fspath(path)
        header = read_pack_header(self._path)
        self._page_size = header["page_size"]
        self._slot_size = header["slot_size"]
        self._num_pages = header["num_pages"]
        self._file = open(self._path, "rb")
        try:
            self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise PackFormatError(f"{self._path}: cannot map an empty pack") from None
        try:
            if verify_checksum:
                # Hash through chunked file reads, not mmap slices: slicing
                # the map would fault the whole pack into resident memory,
                # defeating the bounded-RSS property on multi-GB datasets.
                actual = compute_pack_checksum(self._file, header["file_size"])
                if actual != header["checksum"]:
                    raise PackChecksumError(
                        f"{self._path}: SHA-256 mismatch — expected "
                        f"{header['checksum'].hex()}, file hashes to {actual.hex()}"
                    )
            start = header["catalog_offset"]
            end = start + header["catalog_length"]
            try:
                payload = json.loads(self._mm[start:end].decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise PackFormatError(f"{self._path}: undecodable catalog: {exc}") from None
            if not isinstance(payload, dict):
                raise PackFormatError(f"{self._path}: catalog is not a JSON object")
            self._catalog_payload = payload
            self._num_cost_types = int(payload.get("num_cost_types", 1))
            counts = payload.get("page_kind_counts", {})
            self._kind_counts = {
                kind: int(counts.get(kind.value, 0)) for kind in PageKind
            }
            self._checksum = header["checksum"]
        except Exception:
            self._mm.close()
            self._file.close()
            raise
        self._stats = DiskStatistics()
        self._stats_lock = threading.Lock()
        self._closed = False

    # -- SimulatedDisk interface ---------------------------------------- #
    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def statistics(self) -> DiskStatistics:
        return self._stats

    def allocate(self, kind: PageKind) -> Page:
        raise StorageError("a pack-backed disk is read-only")

    def _decode(self, page_id: int) -> Page:
        if self._closed:
            raise StorageError(f"{self._path}: pack is closed")
        if not 0 <= page_id < self._num_pages:
            raise StorageError(f"unknown page {page_id}")
        offset = HEADER_SIZE + page_id * self._slot_size
        return decode_page(self._mm, offset, self._slot_size, page_id, self._num_cost_types)

    def read(self, page_id: int) -> Page:
        """Physically read a page (counted; safe under concurrent readers)."""
        page = self._decode(page_id)
        with self._stats_lock:
            self._stats.page_reads += 1
        return page

    def peek(self, page_id: int) -> Page:
        """Read a page without touching any counter (page-plan extraction)."""
        return self._decode(page_id)

    def pages_of_kind(self, kind: PageKind) -> int:
        return self._kind_counts[kind]

    # -- pack-specific surface ------------------------------------------ #
    @property
    def path(self) -> str:
        return self._path

    @property
    def checksum(self) -> bytes:
        """The SHA-256 recorded in the header (32 raw bytes)."""
        return self._checksum

    @property
    def catalog_payload(self) -> dict:
        """The decoded trailing JSON catalog."""
        return self._catalog_payload

    def section_bounds(self, name: str) -> tuple[int, int]:
        """``(offset, length)`` of a named binary section."""
        try:
            offset, length = self._catalog_payload["sections"][name]
        except (KeyError, TypeError, ValueError):
            raise PackFormatError(f"{self._path}: pack has no section {name!r}") from None
        return int(offset), int(length)

    @property
    def buffer(self):
        """The raw ``mmap`` (sections are bisected in place, never copied)."""
        return self._mm

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._mm.close()
            self._file.close()

    def __enter__(self) -> "FileDisk":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
