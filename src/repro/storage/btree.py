"""A static, bulk-loaded B+-tree over integer keys, stored on simulated pages.

The "adjacency tree" and "facility tree" of the paper's storage scheme
(Figure 2) are modelled with this structure: given a node id (respectively a
facility id), a root-to-leaf traversal — each step a buffered page read —
yields the pointer into the adjacency file (respectively the facility file).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Iterable

from repro.errors import StorageError
from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.pages import PageKind, RecordSizes

__all__ = ["StaticBPlusTree"]


@dataclass(frozen=True)
class _LeafRecord:
    keys: tuple[int, ...]
    values: tuple[object, ...]


@dataclass(frozen=True)
class _InternalRecord:
    separators: tuple[int, ...]  # smallest key reachable under each child except the first
    children: tuple[int, ...]  # child page ids


class StaticBPlusTree:
    """Bulk-loaded B+ tree mapping integer keys to opaque values.

    The tree is read-only after construction, which matches the paper's
    setting (the network and facility set are static during querying).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        kind: PageKind,
        entries: Iterable[tuple[int, object]],
        *,
        record_sizes: RecordSizes | None = None,
        presorted: bool = False,
    ):
        """Bulk-load the tree from ``entries``.

        With ``presorted=True`` the entries are consumed as a stream that
        must already be in strictly increasing key order; nothing is
        materialised, so million-entry trees can be loaded with bounded
        memory (the streaming pack builder relies on this).  The resulting
        pages are identical to the sorted-list path for the same entries.
        """
        self._disk = disk
        self._kind = kind
        sizes = record_sizes or RecordSizes()
        fanout = max(disk.page_size // sizes.index_entry(), 2)
        self._fanout = fanout
        if not presorted:
            entries = sorted(entries, key=lambda pair: pair[0])
            keys = [key for key, _ in entries]
            if len(set(keys)) != len(keys):
                raise StorageError("B+ tree keys must be unique")
        self._num_entries = 0
        self._height = 0
        self._root_page_id = self._bulk_load(iter(entries))

    @classmethod
    def from_built(
        cls,
        disk,
        kind: PageKind,
        *,
        root_page_id: int | None,
        height: int,
        num_entries: int,
        record_sizes: RecordSizes | None = None,
    ) -> "StaticBPlusTree":
        """Adopt a tree whose pages already live on ``disk`` (no bulk load).

        Used when a dataset pack is opened: the leaf and internal pages were
        serialised at build time, so only the root pointer and shape
        metadata need restoring.
        """
        tree = object.__new__(cls)
        tree._disk = disk
        tree._kind = kind
        sizes = record_sizes or RecordSizes()
        tree._fanout = max(disk.page_size // sizes.index_entry(), 2)
        tree._num_entries = num_entries
        tree._height = height
        tree._root_page_id = root_page_id
        return tree

    @property
    def height(self) -> int:
        """Number of levels (pages read per lookup)."""
        return self._height

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def root_page_id(self) -> int | None:
        return self._root_page_id

    def page_count(self) -> int:
        """Number of pages the tree occupies."""
        return self._disk.pages_of_kind(self._kind)

    def _flush_leaf(self, keys: list[int], values: list[object]) -> tuple[int, int]:
        page = self._disk.allocate(self._kind)
        page.records.append(_LeafRecord(keys=tuple(keys), values=tuple(values)))
        page.used_bytes = len(keys) * RecordSizes().index_entry()
        return keys[0], page.page_id

    def _bulk_load(self, sorted_entries) -> int | None:
        # Leaf level, streamed: entries are consumed in key order and each
        # full fanout-chunk becomes one leaf page immediately.
        level: list[tuple[int, int]] = []  # (smallest key, page id)
        chunk_keys: list[int] = []
        chunk_values: list[object] = []
        previous_key: int | None = None
        for key, value in sorted_entries:
            if previous_key is not None and key <= previous_key:
                raise StorageError("B+ tree keys must be unique and in increasing order")
            previous_key = key
            chunk_keys.append(key)
            chunk_values.append(value)
            self._num_entries += 1
            if len(chunk_keys) == self._fanout:
                level.append(self._flush_leaf(chunk_keys, chunk_values))
                chunk_keys = []
                chunk_values = []
        if chunk_keys:
            level.append(self._flush_leaf(chunk_keys, chunk_values))
        if not level:
            return None
        self._height = 1
        # Internal levels.
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            for start in range(0, len(level), self._fanout):
                chunk = level[start : start + self._fanout]
                page = self._disk.allocate(self._kind)
                record = _InternalRecord(
                    separators=tuple(key for key, _ in chunk[1:]),
                    children=tuple(page_id for _, page_id in chunk),
                )
                page.records.append(record)
                page.used_bytes = len(chunk) * RecordSizes().index_entry()
                next_level.append((chunk[0][0], page.page_id))
            level = next_level
            self._height += 1
        return level[0][1]

    def _traverse(self, key: int, read) -> tuple[list[int], object]:
        """Root-to-leaf descent for ``key``: the visited page ids and the value.

        ``read`` supplies each page — the buffered (counted) reader for live
        lookups, :meth:`SimulatedDisk.peek` for plan extraction — so both
        callers share one descent and can never diverge.  Raises
        :class:`StorageError` when the key is absent.
        """
        if self._root_page_id is None:
            raise StorageError(f"key {key} not found in empty index")
        path: list[int] = []
        page_id = self._root_page_id
        while True:
            path.append(page_id)
            record = read(page_id).records[0]
            if isinstance(record, _LeafRecord):
                position = bisect.bisect_left(record.keys, key)
                if position < len(record.keys) and record.keys[position] == key:
                    return path, record.values[position]
                raise StorageError(f"key {key} not found in index")
            child_index = bisect.bisect_right(record.separators, key)
            page_id = record.children[child_index]

    def lookup(self, key: int, buffer: LRUBufferPool) -> object:
        """Return the value stored under ``key``; every page visited is a buffered read.

        Raises :class:`StorageError` when the key is absent.
        """
        return self._traverse(key, buffer.read)[1]

    def path_pages(self, key: int) -> tuple[int, ...]:
        """The root-to-leaf page ids a :meth:`lookup` of ``key`` would read.

        The tree is static, so the path is fixed at build time; the compiled
        graph precomputes it per key and replays it through a buffer pool to
        charge exactly the page reads a live traversal would cost.  Reads go
        through :meth:`SimulatedDisk.peek`, so no counter moves here.
        """
        return tuple(self._traverse(key, self._disk.peek)[0])
