"""Dataset catalogs and the packed (file-backed) storage accessor.

The :class:`DatasetCatalog` is the metadata record embedded in every dataset
pack: page geometry, per-kind page counts, B+-tree shapes and the binary
section directory.  :func:`open_dataset` maps a pack and returns a
:class:`PackedDataset`, from which :meth:`~PackedDataset.storage` builds a
:class:`PackedNetworkStorage` — an accessor with the exact read behaviour
(same pages, same order, same counters) as the in-RAM
:class:`~repro.storage.scheme.NetworkStorage` the pack was derived from.

A pack can be opened in two modes:

* **standalone** — queries run against :class:`PackedGraphView` /
  :class:`PackedFacilityView`, thin read-only views that answer the graph
  protocol (``has_node``/``has_edge``/``edge``/...) by bisecting the pack's
  binary sections in place; nothing graph-sized is materialised in RAM;
* **attached** — the original ``MultiCostGraph``/``FacilitySet`` are passed
  in, which additionally enables the compiled fast path and lets the same
  session compare simulated and file-backed residencies side by side.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import GraphError, PackFormatError, StorageError
from repro.network.accessor import AccessStatistics, AdjacencyRecord, FacilityRecord
from repro.network.costs import CostVector
from repro.network.graph import Edge, EdgeId, Node, NodeId
from repro.storage.btree import StaticBPlusTree
from repro.storage.buffer import LRUBufferPool
from repro.storage.layout import StoredAdjacencyEntry
from repro.storage.pages import PageKind
from repro.storage.persist import FileDisk, PackWriter
from repro.storage.scheme import StorageSnapshotView

__all__ = [
    "TreeShape",
    "DatasetCatalog",
    "PackedGraphView",
    "PackedFacilityView",
    "PackedNetworkStorage",
    "PackedDataset",
    "open_dataset",
    "pack_network_storage",
]

_I64 = struct.Struct("<q")
_U64 = struct.Struct("<Q")

SECTION_NODE_IDS = "node_ids"
SECTION_EDGE_TABLE = "edge_table"
SECTION_FACILITY_EDGE_IDS = "facility_edge_ids"
SECTION_FACILITY_EDGE_OFFSETS = "facility_edge_offsets"
SECTION_FACILITY_EDGE_PAGES = "facility_edge_pages"


@dataclass(frozen=True)
class TreeShape:
    """Shape metadata of one bulk-loaded B+-tree inside a pack."""

    root_page_id: int | None
    height: int
    num_entries: int

    def to_payload(self) -> dict:
        return {
            "root_page_id": self.root_page_id,
            "height": self.height,
            "num_entries": self.num_entries,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TreeShape":
        root = payload.get("root_page_id")
        return cls(
            root_page_id=None if root is None else int(root),
            height=int(payload.get("height", 0)),
            num_entries=int(payload.get("num_entries", 0)),
        )


@dataclass(frozen=True)
class DatasetCatalog:
    """Everything a reader needs to interpret a dataset pack."""

    format_version: int
    page_size: int
    slot_size: int
    num_pages: int
    num_cost_types: int
    directed: bool
    num_nodes: int
    num_edges: int
    num_facilities: int
    page_kind_counts: dict[str, int]
    adjacency_tree: TreeShape
    facility_tree: TreeShape
    sections: dict[str, tuple[int, int]]
    checksum: str
    extras: dict = field(default_factory=dict)

    @property
    def mcn_page_count(self) -> int:
        """Pages of the MCN information (adjacency file + adjacency tree)."""
        return self.page_kind_counts.get(
            PageKind.ADJACENCY.value, 0
        ) + self.page_kind_counts.get(PageKind.ADJACENCY_INDEX.value, 0)

    @classmethod
    def from_payload(cls, payload: dict, *, checksum: str = "") -> "DatasetCatalog":
        try:
            return cls(
                format_version=int(payload["format_version"]),
                page_size=int(payload["page_size"]),
                slot_size=int(payload["slot_size"]),
                num_pages=int(payload["num_pages"]),
                num_cost_types=int(payload["num_cost_types"]),
                directed=bool(payload["directed"]),
                num_nodes=int(payload["num_nodes"]),
                num_edges=int(payload["num_edges"]),
                num_facilities=int(payload["num_facilities"]),
                page_kind_counts={
                    str(kind): int(count)
                    for kind, count in payload["page_kind_counts"].items()
                },
                adjacency_tree=TreeShape.from_payload(payload["adjacency_tree"]),
                facility_tree=TreeShape.from_payload(payload["facility_tree"]),
                sections={
                    str(name): (int(bounds[0]), int(bounds[1]))
                    for name, bounds in payload["sections"].items()
                },
                checksum=str(payload.get("checksum", checksum)),
                extras=dict(payload.get("extras", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PackFormatError(f"incomplete pack catalog: {exc}") from None

    def describe(self) -> dict:
        """Flat summary used by ``inspect-dataset`` and tests."""
        return {
            "format_version": self.format_version,
            "page_size": self.page_size,
            "slot_size": self.slot_size,
            "num_pages": self.num_pages,
            "num_cost_types": self.num_cost_types,
            "directed": self.directed,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_facilities": self.num_facilities,
            "mcn_pages": self.mcn_page_count,
            "page_kind_counts": dict(self.page_kind_counts),
            "adjacency_tree_height": self.adjacency_tree.height,
            "facility_tree_height": self.facility_tree.height,
            "checksum": self.checksum,
        }


def _bisect_section(mm, base: int, count: int, key: int) -> int:
    """Index of ``key`` in a sorted i64 array at ``base`` (or -1)."""
    lo, hi = 0, count
    while lo < hi:
        mid = (lo + hi) // 2
        (value,) = _I64.unpack_from(mm, base + mid * _I64.size)
        if value < key:
            lo = mid + 1
        else:
            hi = mid
    if lo < count:
        (value,) = _I64.unpack_from(mm, base + lo * _I64.size)
        if value == key:
            return lo
    return -1


class PackedGraphView:
    """Graph protocol over a pack's binary sections (zero-copy bisect reads).

    Provides exactly the surface query validation and seed computation need
    — ``has_node``/``has_edge``/``node``/``edge``/``num_cost_types``/
    ``directed`` — without materialising any node or edge objects beyond the
    ones a call returns.  Node coordinates are not stored in packs, so
    :meth:`node` returns origin-coordinate nodes.
    """

    def __init__(self, disk: FileDisk, catalog: DatasetCatalog):
        self._disk = disk
        self._catalog = catalog
        self._node_base, node_bytes = disk.section_bounds(SECTION_NODE_IDS)
        self._num_nodes = node_bytes // _I64.size
        self._edge_base, edge_bytes = disk.section_bounds(SECTION_EDGE_TABLE)
        # edge row: edge_id, u, v (i64) + length + d costs (f64)
        self._edge_stride = 3 * 8 + 8 + catalog.num_cost_types * 8
        self._num_edges = edge_bytes // self._edge_stride if self._edge_stride else 0
        self._edge_row = struct.Struct(f"<qqqd{catalog.num_cost_types}d")

    @property
    def num_cost_types(self) -> int:
        return self._catalog.num_cost_types

    @property
    def directed(self) -> bool:
        return self._catalog.directed

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def _edge_index(self, edge_id: EdgeId) -> int:
        mm = self._disk.buffer
        lo, hi = 0, self._num_edges
        while lo < hi:
            mid = (lo + hi) // 2
            (value,) = _I64.unpack_from(mm, self._edge_base + mid * self._edge_stride)
            if value < edge_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < self._num_edges:
            (value,) = _I64.unpack_from(mm, self._edge_base + lo * self._edge_stride)
            if value == edge_id:
                return lo
        return -1

    def has_node(self, node_id: NodeId) -> bool:
        return _bisect_section(self._disk.buffer, self._node_base, self._num_nodes, node_id) >= 0

    def has_edge(self, edge_id: EdgeId) -> bool:
        return self._edge_index(edge_id) >= 0

    def node(self, node_id: NodeId) -> Node:
        if not self.has_node(node_id):
            raise GraphError(f"unknown node {node_id}")
        return Node(node_id)

    def _edge_at(self, index: int) -> Edge:
        row = self._edge_row.unpack_from(
            self._disk.buffer, self._edge_base + index * self._edge_stride
        )
        edge_id, u, v, length = row[0], row[1], row[2], row[3]
        costs = row[4:]
        return Edge(edge_id, u, v, CostVector(costs), length)

    def edge(self, edge_id: EdgeId) -> Edge:
        index = self._edge_index(edge_id)
        if index < 0:
            raise GraphError(f"unknown edge {edge_id}")
        return self._edge_at(index)

    def node_ids(self):
        """Iterate all node ids in ascending order (streamed off the pack)."""
        mm = self._disk.buffer
        for index in range(self._num_nodes):
            (node_id,) = _I64.unpack_from(mm, self._node_base + index * _I64.size)
            yield node_id

    def edges(self):
        """Iterate all edges in ascending edge-id order (streamed off the pack)."""
        for index in range(self._num_edges):
            yield self._edge_at(index)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"PackedGraphView({kind}, d={self.num_cost_types}, "
            f"nodes={self._num_nodes}, edges={self._num_edges})"
        )


class PackedFacilityView:
    """Facility metadata of a packed dataset (ids and edges, no objects).

    Satisfies the little that engine and session construction need from a
    facility set — ``len``, ``graph`` identity and a frozen ``revision`` —
    while facility *content* is always read through the storage accessor
    (facility file + facility tree), as on the simulated disk.
    """

    def __init__(self, graph: PackedGraphView, catalog: DatasetCatalog):
        self._graph = graph
        self._catalog = catalog

    @property
    def graph(self) -> PackedGraphView:
        return self._graph

    @property
    def revision(self) -> int:
        """Packs are immutable; the revision never moves."""
        return 0

    def __len__(self) -> int:
        return self._catalog.num_facilities

    def density(self) -> float:
        if self._catalog.num_edges == 0:
            return 0.0
        return self._catalog.num_facilities / self._catalog.num_edges


class PackedNetworkStorage:
    """File-backed counterpart of :class:`~repro.storage.scheme.NetworkStorage`.

    Reads the same page sequences through the same LRU buffer pool — the
    adjacency tree resolves a node to its adjacency-file pages, the
    adjacency entries carry facility-file pointers, the facility tree
    resolves facility ids — so page-read/buffer-hit accounting is
    bit-identical to the simulated disk for the same dataset and buffer
    configuration.  Implements the accessor protocol plus the page-plan
    surface the compiled fast path binds to.
    """

    def __init__(
        self,
        disk: FileDisk,
        catalog: DatasetCatalog,
        *,
        buffer_fraction: float = 0.01,
        buffer_capacity: int | None = None,
        graph=None,
        facilities=None,
    ):
        if buffer_fraction < 0:
            raise StorageError("buffer fraction cannot be negative")
        self._disk = disk
        self._catalog = catalog
        self._buffer_fraction = buffer_fraction
        self._adjacency_tree = StaticBPlusTree.from_built(
            disk,
            PageKind.ADJACENCY_INDEX,
            root_page_id=catalog.adjacency_tree.root_page_id,
            height=catalog.adjacency_tree.height,
            num_entries=catalog.adjacency_tree.num_entries,
        )
        self._facility_tree = StaticBPlusTree.from_built(
            disk,
            PageKind.FACILITY_INDEX,
            root_page_id=catalog.facility_tree.root_page_id,
            height=catalog.facility_tree.height,
            num_entries=catalog.facility_tree.num_entries,
        )
        if buffer_capacity is None:
            buffer_capacity = max(int(round(self.mcn_page_count * buffer_fraction)), 0)
            if buffer_fraction > 0:
                buffer_capacity = max(buffer_capacity, 1)
        self._buffer = LRUBufferPool(disk, buffer_capacity)
        self._stats = AccessStatistics()
        if graph is None:
            graph = PackedGraphView(disk, catalog)
        if facilities is None and isinstance(graph, PackedGraphView):
            facilities = PackedFacilityView(graph, catalog)
        self._graph = graph
        self._facilities = facilities
        # Facility-page index sections: sorted facility-bearing edge ids, the
        # per-edge [start, end) offsets, and the flat page-id blob.
        self._fac_ids_base, fac_ids_bytes = disk.section_bounds(SECTION_FACILITY_EDGE_IDS)
        self._num_facility_edges = fac_ids_bytes // _I64.size
        self._fac_offsets_base, _ = disk.section_bounds(SECTION_FACILITY_EDGE_OFFSETS)
        self._fac_pages_base, _ = disk.section_bounds(SECTION_FACILITY_EDGE_PAGES)

    # ------------------------------------------------------------------ #
    # Sizing / introspection (NetworkStorage parity)
    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        return self._graph

    @property
    def facilities(self):
        return self._facilities

    @property
    def catalog(self) -> DatasetCatalog:
        return self._catalog

    @property
    def disk(self) -> FileDisk:
        return self._disk

    @property
    def buffer(self) -> LRUBufferPool:
        return self._buffer

    @property
    def num_cost_types(self) -> int:
        return self._catalog.num_cost_types

    @property
    def mcn_page_count(self) -> int:
        return self._catalog.mcn_page_count

    @property
    def total_page_count(self) -> int:
        return self._catalog.num_pages

    @property
    def statistics(self) -> AccessStatistics:
        stats = self._stats
        stats.page_reads = self._buffer.statistics.misses
        stats.buffer_hits = self._buffer.statistics.hits
        return stats

    def reset_statistics(self, *, clear_buffer: bool = False) -> None:
        self._stats.reset()
        self._buffer.statistics.reset()
        self._disk.statistics.reset()
        if clear_buffer:
            self._buffer.clear()

    # ------------------------------------------------------------------ #
    # Accessor protocol
    # ------------------------------------------------------------------ #
    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        self._stats.adjacency_requests += 1
        return self._read_adjacency(node_id, self._buffer)

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        self._stats.facility_requests += 1
        return self._read_edge_facilities(edge_id, self._buffer)

    def facility_edge(self, facility_id: int) -> EdgeId:
        self._stats.facility_tree_requests += 1
        return self._read_facility_edge(facility_id, self._buffer)

    # Shared with StorageSnapshotView, exactly as on NetworkStorage.
    def _read_adjacency(self, node_id: NodeId, buffer: LRUBufferPool) -> list[AdjacencyRecord]:
        try:
            pages = self._adjacency_tree.lookup(node_id, buffer)
        except StorageError:
            raise StorageError(f"node {node_id} not present in the adjacency tree") from None
        records: list[AdjacencyRecord] = []
        for page_id in pages:  # type: ignore[union-attr]
            page = buffer.read(page_id)
            for stored in page.records:
                if isinstance(stored, StoredAdjacencyEntry) and stored.node == node_id:
                    records.append(stored.record)
        return records

    def _read_edge_facilities(self, edge_id: EdgeId, buffer: LRUBufferPool) -> list[FacilityRecord]:
        records: list[FacilityRecord] = []
        for page_id in self._facility_pages_of(edge_id):
            page = buffer.read(page_id)
            for stored in page.records:
                if isinstance(stored, FacilityRecord) and stored.edge_id == edge_id:
                    records.append(stored)
        return records

    def _read_facility_edge(self, facility_id: int, buffer: LRUBufferPool) -> EdgeId:
        try:
            edge_id, _pages = self._facility_tree.lookup(facility_id, buffer)
        except StorageError:
            raise StorageError(
                f"facility {facility_id} not present in the facility tree"
            ) from None
        return edge_id

    def _facility_pages_of(self, edge_id: EdgeId) -> tuple[int, ...]:
        """The facility-file pages of ``edge_id`` (empty when it hosts none)."""
        mm = self._disk.buffer
        index = _bisect_section(mm, self._fac_ids_base, self._num_facility_edges, edge_id)
        if index < 0:
            return ()
        start, end = struct.unpack_from(
            "<QQ", mm, self._fac_offsets_base + index * _U64.size
        )
        return struct.unpack_from(
            f"<{end - start}q", mm, self._fac_pages_base + start * _I64.size
        )

    # ------------------------------------------------------------------ #
    # Page plans (compiled fast path)
    # ------------------------------------------------------------------ #
    def adjacency_page_plan(self, node_id: NodeId) -> tuple[int, ...]:
        path, pages = self._adjacency_tree._traverse(node_id, self._disk.peek)
        return tuple(path) + tuple(pages)

    def facility_page_plan(self, edge_id: EdgeId) -> tuple[int, ...]:
        return self._facility_pages_of(edge_id)

    def facility_tree_page_plan(self, facility_id: int) -> tuple[int, ...]:
        return self._facility_tree.path_pages(facility_id)

    def snapshot_view(self, *, buffer_capacity: int | None = None) -> StorageSnapshotView:
        """A read-only sibling view with a private buffer (shard workers)."""
        if buffer_capacity is None:
            buffer_capacity = self._buffer.capacity
        return StorageSnapshotView(self, buffer_capacity)

    def describe(self) -> dict[str, int]:
        counts = self._catalog.page_kind_counts
        return {
            "adjacency_file_pages": counts.get(PageKind.ADJACENCY.value, 0),
            "adjacency_tree_pages": counts.get(PageKind.ADJACENCY_INDEX.value, 0),
            "facility_file_pages": counts.get(PageKind.FACILITY.value, 0),
            "facility_tree_pages": counts.get(PageKind.FACILITY_INDEX.value, 0),
            "mcn_pages": self.mcn_page_count,
            "total_pages": self.total_page_count,
            "buffer_capacity": self._buffer.capacity,
        }


class PackedDataset:
    """An opened dataset pack: the mapped disk plus its catalog."""

    def __init__(self, disk: FileDisk, catalog: DatasetCatalog):
        self._disk = disk
        self._catalog = catalog

    @property
    def disk(self) -> FileDisk:
        return self._disk

    @property
    def catalog(self) -> DatasetCatalog:
        return self._catalog

    @property
    def path(self) -> str:
        return self._disk.path

    def storage(
        self,
        *,
        buffer_fraction: float = 0.01,
        buffer_capacity: int | None = None,
        graph=None,
        facilities=None,
    ) -> PackedNetworkStorage:
        """A fresh accessor over this pack (each gets its own LRU buffer)."""
        return PackedNetworkStorage(
            self._disk,
            self._catalog,
            buffer_fraction=buffer_fraction,
            buffer_capacity=buffer_capacity,
            graph=graph,
            facilities=facilities,
        )

    def graph_view(self) -> PackedGraphView:
        return PackedGraphView(self._disk, self._catalog)

    def close(self) -> None:
        self._disk.close()

    def __enter__(self) -> "PackedDataset":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_dataset(path: str, *, verify_checksum: bool = True) -> PackedDataset:
    """Map a dataset pack, optionally verifying its SHA-256 first.

    Raises the typed pack errors (:class:`~repro.errors.PackFormatError`,
    :class:`~repro.errors.PackVersionError`,
    :class:`~repro.errors.PackChecksumError`) on malformed or corrupt files.
    """
    disk = FileDisk(path, verify_checksum=verify_checksum)
    try:
        catalog = DatasetCatalog.from_payload(
            disk.catalog_payload, checksum=disk.checksum.hex()
        )
    except Exception:
        disk.close()
        raise
    return PackedDataset(disk, catalog)


# --------------------------------------------------------------------- #
# Building packs from a built NetworkStorage
# --------------------------------------------------------------------- #
def _write_facility_index(writer: PackWriter, edge_pages: dict[EdgeId, tuple[int, ...]]) -> None:
    ids = writer.section(SECTION_FACILITY_EDGE_IDS)
    offsets = writer.section(SECTION_FACILITY_EDGE_OFFSETS)
    pages_blob = writer.section(SECTION_FACILITY_EDGE_PAGES)
    position = 0
    sorted_ids = sorted(edge_pages)
    for edge_id in sorted_ids:
        ids.write(_I64.pack(edge_id))
        offsets.write(_U64.pack(position))
        for page_id in edge_pages[edge_id]:
            pages_blob.write(_I64.pack(page_id))
        position += len(edge_pages[edge_id])
    offsets.write(_U64.pack(position))


def _tree_shape(tree: StaticBPlusTree) -> TreeShape:
    return TreeShape(
        root_page_id=tree.root_page_id,
        height=tree.height,
        num_entries=tree.num_entries,
    )


def pack_network_storage(storage, path: str, *, extras: dict | None = None) -> DatasetCatalog:
    """Serialise a built :class:`NetworkStorage` into a dataset pack.

    Every simulated page is written to its slot unchanged, so a
    :class:`PackedNetworkStorage` over the result reads bit-identical pages
    (and therefore produces bit-identical answers and I/O counters) to the
    source storage.
    """
    graph = storage.graph
    writer = PackWriter(
        path, page_size=storage.config.page_size, num_cost_types=graph.num_cost_types
    )
    disk = storage.disk
    for page_id in range(disk.num_pages):
        writer.add_page(disk.peek(page_id))

    node_section = writer.section(SECTION_NODE_IDS)
    for node_id in sorted(graph.node_ids()):
        node_section.write(_I64.pack(node_id))
    edge_section = writer.section(SECTION_EDGE_TABLE)
    for edge in sorted(graph.edges(), key=lambda e: e.edge_id):
        edge_section.write(
            struct.pack(
                f"<qqqd{graph.num_cost_types}d",
                edge.edge_id,
                edge.u,
                edge.v,
                edge.length,
                *edge.costs.values,
            )
        )
    _write_facility_index(writer, storage._facility_layout.edge_pages)

    payload = {
        "directed": graph.directed,
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_facilities": len(storage.facilities),
        "page_kind_counts": {
            kind.value: disk.pages_of_kind(kind) for kind in PageKind
        },
        "adjacency_tree": _tree_shape(storage._adjacency_tree).to_payload(),
        "facility_tree": _tree_shape(storage._facility_tree).to_payload(),
        "extras": dict(extras or {}),
    }
    final = writer.finalize(payload)
    return DatasetCatalog.from_payload(final)
