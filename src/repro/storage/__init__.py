"""Simulated disk-resident storage: pages, LRU buffer, Figure-2 layout."""

from repro.storage.buffer import BufferStatistics, LRUBufferPool
from repro.storage.btree import StaticBPlusTree
from repro.storage.disk import DiskStatistics, SimulatedDisk
from repro.storage.layout import (
    AdjacencyLayout,
    FacilityLayout,
    build_adjacency_file,
    build_facility_file,
)
from repro.storage.pages import DEFAULT_PAGE_SIZE, Page, PageKind, RecordSizes
from repro.storage.scheme import NetworkStorage, StorageConfig, StorageSnapshotView

__all__ = [
    "AdjacencyLayout",
    "BufferStatistics",
    "DEFAULT_PAGE_SIZE",
    "DiskStatistics",
    "FacilityLayout",
    "LRUBufferPool",
    "NetworkStorage",
    "Page",
    "PageKind",
    "RecordSizes",
    "SimulatedDisk",
    "StaticBPlusTree",
    "StorageConfig",
    "StorageSnapshotView",
    "build_adjacency_file",
    "build_facility_file",
]
