"""Disk-resident storage: simulated pages, LRU buffer, Figure-2 layout,
and the file-backed dataset packs served through ``mmap``."""

from repro.storage.buffer import BufferStatistics, LRUBufferPool
from repro.storage.btree import StaticBPlusTree
from repro.storage.catalog import (
    DatasetCatalog,
    PackedDataset,
    PackedGraphView,
    PackedNetworkStorage,
    TreeShape,
    open_dataset,
    pack_network_storage,
)
from repro.storage.disk import DiskStatistics, SimulatedDisk
from repro.storage.layout import (
    AdjacencyLayout,
    FacilityLayout,
    build_adjacency_file,
    build_facility_file,
)
from repro.storage.pages import DEFAULT_PAGE_SIZE, Page, PageKind, RecordSizes
from repro.storage.persist import FileDisk, PackWriter, SpoolingDisk
from repro.storage.scheme import NetworkStorage, StorageConfig, StorageSnapshotView

__all__ = [
    "AdjacencyLayout",
    "BufferStatistics",
    "DEFAULT_PAGE_SIZE",
    "DatasetCatalog",
    "DiskStatistics",
    "FacilityLayout",
    "FileDisk",
    "LRUBufferPool",
    "NetworkStorage",
    "PackWriter",
    "PackedDataset",
    "PackedGraphView",
    "PackedNetworkStorage",
    "Page",
    "PageKind",
    "RecordSizes",
    "SimulatedDisk",
    "SpoolingDisk",
    "StaticBPlusTree",
    "StorageConfig",
    "StorageSnapshotView",
    "TreeShape",
    "build_adjacency_file",
    "build_facility_file",
    "open_dataset",
    "pack_network_storage",
]
