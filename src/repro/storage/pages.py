"""Disk pages and record-size accounting for the simulated storage layer.

The simulator does not serialise real bytes; instead every record type has a
declared byte footprint, and pages accumulate records until the configured
page size is exhausted.  This reproduces the I/O behaviour (how many pages a
structure occupies, how many page reads a traversal needs) without paying
for actual byte packing in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import StorageError

__all__ = ["PageKind", "Page", "RecordSizes", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096


class PageKind(Enum):
    """What a page stores; used only for reporting and sanity checks."""

    ADJACENCY = "adjacency"
    FACILITY = "facility"
    ADJACENCY_INDEX = "adjacency-index"
    FACILITY_INDEX = "facility-index"


@dataclass
class Page:
    """A disk page holding a list of opaque records and their byte footprint."""

    page_id: int
    kind: PageKind
    records: list[object] = field(default_factory=list)
    used_bytes: int = 0

    def add(self, record: object, size: int, capacity: int) -> bool:
        """Append ``record`` if ``size`` more bytes fit within ``capacity``.

        Returns False (and leaves the page untouched) when the record does
        not fit; the caller then opens a fresh page.
        """
        if size > capacity:
            raise StorageError(
                f"record of {size} bytes cannot fit in a page of {capacity} bytes"
            )
        if self.used_bytes + size > capacity:
            return False
        self.records.append(record)
        self.used_bytes += size
        return True


@dataclass(frozen=True)
class RecordSizes:
    """Byte footprints of the record types of the Figure-2 storage scheme.

    The defaults model 32-bit identifiers and 32-bit floats:

    * an adjacency entry stores the neighbour id, the d edge costs, the edge
      length, a pointer into the facility file and a facility count;
    * a facility entry stores the facility id and its offset from the edge's
      first end-node;
    * an index entry stores a key and a child/record pointer.
    """

    id_bytes: int = 4
    float_bytes: int = 4
    pointer_bytes: int = 4
    count_bytes: int = 2

    def adjacency_entry(self, num_cost_types: int) -> int:
        return (
            self.id_bytes  # neighbour id
            + self.id_bytes  # edge id
            + num_cost_types * self.float_bytes  # cost vector
            + self.float_bytes  # edge length
            + self.pointer_bytes  # facility-file pointer
            + self.count_bytes  # facility count
        )

    def adjacency_header(self) -> int:
        """Per-node header inside the adjacency file (node id + entry count)."""
        return self.id_bytes + self.count_bytes

    def facility_entry(self) -> int:
        return self.id_bytes + self.float_bytes

    def facility_header(self) -> int:
        """Per-edge header inside the facility file (edge id + entry count)."""
        return self.id_bytes + self.count_bytes

    def index_entry(self) -> int:
        return self.id_bytes + self.pointer_bytes
