"""Packing of the adjacency file and the facility file onto simulated pages.

The layout follows Figure 2 of the paper:

* The **adjacency file** is a flat file holding, for every node, its
  adjacency list: one entry per incident edge with the neighbour id, the
  d-dimensional cost vector, and a pointer into the facility file for the
  facilities lying on that edge.
* The **facility file** is a flat file holding, for every edge with at least
  one facility, the facilities on it together with their distance from the
  edge's first end-node.

Both files are bulk-loaded page by page; the builders return per-node
(respectively per-edge) pointers, i.e. the lists of page ids to read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.network.accessor import AdjacencyRecord, FacilityRecord
from repro.network.facilities import FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph, NodeId
from repro.storage.disk import SimulatedDisk
from repro.storage.pages import PageKind, RecordSizes

__all__ = [
    "StoredAdjacencyEntry",
    "AdjacencyLayout",
    "FacilityLayout",
    "build_facility_file",
    "build_adjacency_file",
]


class StoredAdjacencyEntry(NamedTuple):
    """An adjacency entry as stored on disk (including its facility-file pointer)."""

    node: NodeId
    record: AdjacencyRecord
    facility_pages: tuple[int, ...]


@dataclass(frozen=True)
class AdjacencyLayout:
    """Result of packing the adjacency file: per-node page pointers."""

    node_pages: dict[NodeId, tuple[int, ...]]
    page_count: int


@dataclass(frozen=True)
class FacilityLayout:
    """Result of packing the facility file: per-edge page pointers."""

    edge_pages: dict[EdgeId, tuple[int, ...]]
    page_count: int


def build_facility_file(
    disk: SimulatedDisk,
    facilities: FacilitySet,
    *,
    record_sizes: RecordSizes | None = None,
) -> FacilityLayout:
    """Pack all facilities into facility-file pages, grouped by edge."""
    sizes = record_sizes or RecordSizes()
    edge_pages: dict[EdgeId, tuple[int, ...]] = {}
    current = disk.allocate(PageKind.FACILITY)
    page_count = 1
    for edge_id in sorted(facilities.edges_with_facilities()):
        records = [
            FacilityRecord(facility.facility_id, facility.edge_id, facility.offset)
            for facility in facilities.on_edge(edge_id)
        ]
        pages_for_edge: list[int] = []
        header_size = sizes.facility_header()
        pending_header = True
        for record in records:
            size = sizes.facility_entry() + (header_size if pending_header else 0)
            if not current.add(record, size, disk.page_size):
                current = disk.allocate(PageKind.FACILITY)
                page_count += 1
                size = sizes.facility_entry() + header_size
                current.add(record, size, disk.page_size)
                pages_for_edge.append(current.page_id)
                pending_header = False
                continue
            pending_header = False
            if current.page_id not in pages_for_edge:
                pages_for_edge.append(current.page_id)
        edge_pages[edge_id] = tuple(pages_for_edge)
    return FacilityLayout(edge_pages=edge_pages, page_count=page_count)


def build_adjacency_file(
    disk: SimulatedDisk,
    graph: MultiCostGraph,
    facilities: FacilitySet,
    facility_layout: FacilityLayout,
    *,
    record_sizes: RecordSizes | None = None,
) -> AdjacencyLayout:
    """Pack every node's adjacency list into adjacency-file pages."""
    sizes = record_sizes or RecordSizes()
    node_pages: dict[NodeId, tuple[int, ...]] = {}
    current = disk.allocate(PageKind.ADJACENCY)
    page_count = 1
    entry_size = sizes.adjacency_entry(graph.num_cost_types)
    header_size = sizes.adjacency_header()
    for node_id in sorted(node.node_id for node in graph.nodes()):
        pages_for_node: list[int] = []
        pending_header = True
        neighbors = graph.neighbors(node_id)
        if not neighbors:
            node_pages[node_id] = ()
            continue
        for neighbor, edge in neighbors:
            facility_count = len(facilities.on_edge(edge.edge_id))
            record = StoredAdjacencyEntry(
                node=node_id,
                record=AdjacencyRecord(
                    neighbor=neighbor,
                    edge_id=edge.edge_id,
                    costs=edge.costs.values,
                    length=edge.length,
                    first_node=edge.u,
                    facility_count=facility_count,
                ),
                facility_pages=facility_layout.edge_pages.get(edge.edge_id, ()),
            )
            size = entry_size + (header_size if pending_header else 0)
            if not current.add(record, size, disk.page_size):
                current = disk.allocate(PageKind.ADJACENCY)
                page_count += 1
                size = entry_size + header_size
                current.add(record, size, disk.page_size)
                pages_for_node.append(current.page_id)
                pending_header = False
                continue
            pending_header = False
            if current.page_id not in pages_for_node:
                pages_for_node.append(current.page_id)
        node_pages[node_id] = tuple(pages_for_node)
    return AdjacencyLayout(node_pages=node_pages, page_count=page_count)
