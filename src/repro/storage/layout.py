"""Packing of the adjacency file and the facility file onto simulated pages.

The layout follows Figure 2 of the paper:

* The **adjacency file** is a flat file holding, for every node, its
  adjacency list: one entry per incident edge with the neighbour id, the
  d-dimensional cost vector, and a pointer into the facility file for the
  facilities lying on that edge.
* The **facility file** is a flat file holding, for every edge with at least
  one facility, the facilities on it together with their distance from the
  edge's first end-node.

Both files are bulk-loaded page by page; the builders return per-node
(respectively per-edge) pointers, i.e. the lists of page ids to read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.network.accessor import AdjacencyRecord, FacilityRecord
from repro.network.facilities import FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph, NodeId
from repro.storage.disk import SimulatedDisk
from repro.storage.pages import PageKind, RecordSizes

__all__ = [
    "StoredAdjacencyEntry",
    "AdjacencyLayout",
    "FacilityLayout",
    "build_facility_file",
    "build_adjacency_file",
    "pack_record_groups",
]


class StoredAdjacencyEntry(NamedTuple):
    """An adjacency entry as stored on disk (including its facility-file pointer)."""

    node: NodeId
    record: AdjacencyRecord
    facility_pages: tuple[int, ...]


@dataclass(frozen=True)
class AdjacencyLayout:
    """Result of packing the adjacency file: per-node page pointers."""

    node_pages: dict[NodeId, tuple[int, ...]]
    page_count: int


@dataclass(frozen=True)
class FacilityLayout:
    """Result of packing the facility file: per-edge page pointers."""

    edge_pages: dict[EdgeId, tuple[int, ...]]
    page_count: int


def pack_record_groups(
    disk,
    kind: PageKind,
    groups,
    sink,
    *,
    entry_size: int,
    header_size: int,
) -> int:
    """Pack fixed-size record groups onto pages of ``kind``; returns the page count.

    ``groups`` yields ``(key, records)`` pairs; every group's first record on
    a page also pays the per-group header.  ``sink(key, pages)`` is called
    once per group with the tuple of page ids the group landed on.  This is
    the single packing core behind both flat files — the in-memory builders
    below and the streaming pack builder consume it with different group
    sources, so the resulting page layout can never diverge between them.
    """
    current = disk.allocate(kind)
    page_count = 1
    for key, records in groups:
        pages_for_key: list[int] = []
        pending_header = True
        for record in records:
            size = entry_size + (header_size if pending_header else 0)
            if not current.add(record, size, disk.page_size):
                current = disk.allocate(kind)
                page_count += 1
                size = entry_size + header_size
                current.add(record, size, disk.page_size)
                pages_for_key.append(current.page_id)
                pending_header = False
                continue
            pending_header = False
            if current.page_id not in pages_for_key:
                pages_for_key.append(current.page_id)
        sink(key, tuple(pages_for_key))
    return page_count


def build_facility_file(
    disk: SimulatedDisk,
    facilities: FacilitySet,
    *,
    record_sizes: RecordSizes | None = None,
) -> FacilityLayout:
    """Pack all facilities into facility-file pages, grouped by edge."""
    sizes = record_sizes or RecordSizes()
    edge_pages: dict[EdgeId, tuple[int, ...]] = {}
    groups = (
        (
            edge_id,
            [
                FacilityRecord(facility.facility_id, facility.edge_id, facility.offset)
                for facility in facilities.on_edge(edge_id)
            ],
        )
        for edge_id in sorted(facilities.edges_with_facilities())
    )
    page_count = pack_record_groups(
        disk,
        PageKind.FACILITY,
        groups,
        edge_pages.__setitem__,
        entry_size=sizes.facility_entry(),
        header_size=sizes.facility_header(),
    )
    return FacilityLayout(edge_pages=edge_pages, page_count=page_count)


def build_adjacency_file(
    disk: SimulatedDisk,
    graph: MultiCostGraph,
    facilities: FacilitySet,
    facility_layout: FacilityLayout,
    *,
    record_sizes: RecordSizes | None = None,
) -> AdjacencyLayout:
    """Pack every node's adjacency list into adjacency-file pages."""
    sizes = record_sizes or RecordSizes()
    node_pages: dict[NodeId, tuple[int, ...]] = {}

    def groups():
        for node_id in sorted(node.node_id for node in graph.nodes()):
            records = []
            for neighbor, edge in graph.neighbors(node_id):
                records.append(
                    StoredAdjacencyEntry(
                        node=node_id,
                        record=AdjacencyRecord(
                            neighbor=neighbor,
                            edge_id=edge.edge_id,
                            costs=edge.costs.values,
                            length=edge.length,
                            first_node=edge.u,
                            facility_count=len(facilities.on_edge(edge.edge_id)),
                        ),
                        facility_pages=facility_layout.edge_pages.get(edge.edge_id, ()),
                    )
                )
            yield node_id, records

    page_count = pack_record_groups(
        disk,
        PageKind.ADJACENCY,
        groups(),
        node_pages.__setitem__,
        entry_size=sizes.adjacency_entry(graph.num_cost_types),
        header_size=sizes.adjacency_header(),
    )
    return AdjacencyLayout(node_pages=node_pages, page_count=page_count)
