"""The batch query service: many queries, one engine, shared expansion state.

:class:`QueryService` sits on top of a :class:`~repro.MCNQueryEngine` and
executes *batches* of mixed skyline / top-k requests.  Two interfaces are
offered:

* **batch** — :meth:`QueryService.run_batch` takes a sequence of requests and
  returns a :class:`~repro.service.requests.BatchReport`;
* **streaming** — :meth:`QueryService.submit` enqueues requests one at a time
  (returning a ticket), :meth:`QueryService.drain` executes everything queued
  and returns the outcomes in submission order.

All queries run through one :class:`CrossQueryExpansionCache`, so adjacency
and facility records fetched for an early query are reused by every later
one — the CEA information-sharing idea lifted from a single query to a whole
workload.  Repeat requests are answered straight from a result memo without
touching the engine.  Because the cache only short-circuits *reads* of
immutable records, batched results are always identical to what one-shot
engine calls would return; only the I/O differs.

Example
-------
>>> from repro import MCNQueryEngine, QueryService, SkylineRequest, TopKRequest
>>> from repro.datagen import WorkloadSpec, make_workload
>>> w = make_workload(WorkloadSpec(num_nodes=150, num_facilities=60, num_queries=2, seed=5))
>>> engine = MCNQueryEngine(w.graph, w.facilities, use_disk=True, page_size=1024)
>>> service = QueryService(engine)
>>> report = service.run_batch(
...     [SkylineRequest(w.queries[0]), TopKRequest(w.queries[1], k=3)]
... )
>>> len(report.outcomes)
2
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.api.policy import DEFAULT_POLICY, ExecutionPolicy, legacy_kwargs_warning
from repro.core.baseline import baseline_skyline, baseline_top_k
from repro.core.engine import MCNQueryEngine
from repro.core.results import SkylineResult, TopKResult
from repro.errors import PolicyError, QueryError
from repro.network.accessor import AccessStatistics
from repro.service.cache import CacheStatistics, CrossQueryExpansionCache
from repro.service.requests import (
    BatchReport,
    QueryOutcome,
    QueryRequest,
    SkylineRequest,
    TopKRequest,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.parallel import ParallelExecution

__all__ = ["QueryService", "validate_request"]


def validate_request(engine: MCNQueryEngine, request: QueryRequest) -> None:
    """Reject a request the engine could never answer (type, location, aggregate).

    Shared by :class:`QueryService` and the sharded parallel service, both of
    which validate at submission time so a bad request can never abort a
    batch that already did work for earlier ones.
    """
    if not isinstance(request, (SkylineRequest, TopKRequest)):
        raise QueryError(
            f"expected a SkylineRequest or TopKRequest, got {type(request).__name__}"
        )
    request.location.validate(engine.graph)
    if isinstance(request, TopKRequest):
        engine.resolve_aggregate(request.aggregate, request.weights)


class QueryService:
    """Executes batches of preference queries against one shared engine.

    Parameters
    ----------
    engine:
        The engine to serve queries from.  Its accessor (in-memory or
        disk-resident) is the base data layer whose I/O counters are diffed
        per query.
    cache:
        Optional pre-built :class:`CrossQueryExpansionCache`; it must wrap
        the engine's own accessor.  By default a fresh cache is created.
    policy:
        An :class:`~repro.api.ExecutionPolicy` supplying the caching knobs
        (``memoize_results`` / ``harvest_settled`` / ``max_cached_entries``).
        This is the constructor the :class:`repro.api.Session` facade uses;
        the policy's parallelism fields are ignored here (sharding is the
        caller's concern — see :meth:`run_batch`).
    memoize_results / harvest_settled / max_cached_entries:
        **Deprecated** keyword equivalents of the policy's caching fields,
        kept working for pre-policy call sites (a :class:`DeprecationWarning`
        is emitted).  ``memoize_results`` answers identical repeat requests
        from a result memo; ``harvest_settled`` keeps finished queries'
        settled node distances in the cache; ``max_cached_entries`` bounds
        the default cache (LRU, ``None`` = unbounded) and is mutually
        exclusive with ``cache``.
    """

    _UNSET = object()

    def __init__(
        self,
        engine: MCNQueryEngine,
        *,
        cache: CrossQueryExpansionCache | None = None,
        memoize_results: bool = _UNSET,  # type: ignore[assignment]
        harvest_settled: bool = _UNSET,  # type: ignore[assignment]
        max_cached_entries: int | None = _UNSET,  # type: ignore[assignment]
        policy: ExecutionPolicy | None = None,
    ):
        legacy = {
            name: value
            for name, value in (
                ("memoize_results", memoize_results),
                ("harvest_settled", harvest_settled),
                ("max_cached_entries", max_cached_entries),
            )
            if value is not QueryService._UNSET
        }
        if policy is not None:
            if legacy:
                raise PolicyError(
                    f"pass either policy= or the legacy knobs {sorted(legacy)}, "
                    "not both"
                )
            if not isinstance(policy, ExecutionPolicy):
                raise PolicyError(
                    f"expected an ExecutionPolicy, got {type(policy).__name__}"
                )
        else:
            if legacy:
                legacy_kwargs_warning(
                    "QueryService",
                    legacy,
                    "memoize_results=..., harvest_settled=..., max_cached_entries=...",
                )
            policy = DEFAULT_POLICY.replace(**legacy) if legacy else DEFAULT_POLICY
        if cache is not None:
            if cache.base_accessor is not engine.accessor:
                raise QueryError("the cache must wrap the engine's own accessor")
            if policy.max_cached_entries is not None:
                raise QueryError(
                    "pass either a pre-built cache or max_cached_entries, not both"
                )
        self._engine = engine
        self._policy = policy
        self._cache = cache or CrossQueryExpansionCache(
            engine.accessor, max_entries=policy.max_cached_entries
        )
        self._memoize_results = policy.memoize_results
        self._harvest_settled = policy.harvest_settled
        self._memo: dict[QueryRequest, SkylineResult | TopKResult] = {}
        self._pending: list[tuple[int, QueryRequest]] = []
        self._next_ticket = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> MCNQueryEngine:
        """The engine queries are executed against."""
        return self._engine

    @property
    def policy(self) -> ExecutionPolicy:
        """The execution policy supplying this service's caching knobs."""
        return self._policy

    @property
    def cache(self) -> CrossQueryExpansionCache:
        """The cross-query expansion cache shared by every request."""
        return self._cache

    @property
    def cache_statistics(self) -> CacheStatistics:
        """Cumulative hit/miss counters of the shared cache (plus memo hits)."""
        return self._cache.cache_statistics

    @property
    def pending_count(self) -> int:
        """Number of submitted requests not yet drained."""
        return len(self._pending)

    @property
    def memoize_results(self) -> bool:
        """Whether identical repeat requests are answered from the result memo."""
        return self._memoize_results

    @property
    def harvest_settled(self) -> bool:
        """Whether settled node costs of finished queries are kept in the cache."""
        return self._harvest_settled

    def reset_cache(self) -> None:
        """Drop all shared expansion state and the result memo (cold restart)."""
        self._cache.clear()
        self._memo.clear()

    # ------------------------------------------------------------------ #
    # Streaming interface
    # ------------------------------------------------------------------ #
    def submit(self, request: QueryRequest) -> int:
        """Enqueue one request and return its ticket.

        Tickets increase monotonically across the service's lifetime and
        identify the request's outcome in the list returned by
        :meth:`drain`.

        Example
        -------
        >>> ticket = service.submit(SkylineRequest(location))  # doctest: +SKIP
        """
        self._check_request(request)
        ticket = self._next_ticket
        self._next_ticket += 1
        self._pending.append((ticket, request))
        return ticket

    def drain(self) -> list[QueryOutcome]:
        """Execute every pending request and return outcomes in submission order.

        Returns an empty list when nothing is pending.  Requests are fully
        validated at submission time (type, algorithm, ``k``, location,
        aggregate arity/monotonicity), so a drain does not abort halfway
        through; if a query nevertheless raises, the queue has already been
        cleared and the service stays usable.

        Example
        -------
        >>> outcomes = service.drain()  # doctest: +SKIP
        """
        pending, self._pending = self._pending, []
        return [self._execute(ticket, request) for ticket, request in pending]

    # ------------------------------------------------------------------ #
    # Batch interface
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        parallel: "ParallelExecution | None" = None,
        policy: ExecutionPolicy | None = None,
    ) -> BatchReport:
        """Execute ``requests`` in order and return a :class:`BatchReport`.

        The report carries each request's :class:`QueryOutcome` plus the
        batch totals: wall-clock time and the per-batch deltas of the
        base-accessor I/O counters and the cache counters.

        A ``policy`` override with ``workers > 1`` delegates to a
        :class:`~repro.parallel.ShardedQueryService` over this service's
        engine: the batch is partitioned into shards executed concurrently
        (each worker with its own data layer, cross-query cache — *not* this
        service's cache — and the *override's* caching knobs), and the
        returned report is the merged per-shard report with outcomes in
        submission order, exactly as a sequential run would order them.
        With ``workers == 1`` (or no override) the batch runs sequentially
        through this service's own cache.

        ``parallel=`` is the **deprecated** pre-policy spelling of the same
        delegation; the shard workers then inherit this service's caching
        knobs.

        Example
        -------
        >>> report = service.run_batch([SkylineRequest(q) for q in queries])  # doctest: +SKIP
        >>> report.page_reads  # doctest: +SKIP
        """
        if parallel is not None:
            if policy is not None:
                raise PolicyError("pass either parallel= or policy=, not both")
            legacy_kwargs_warning(
                "QueryService.run_batch", ("parallel",), "workers=..., routing=..., executor=..."
            )
            if parallel.workers > 1:
                # Imported lazily: repro.parallel depends on this module.
                from repro.parallel import ShardedQueryService

                return ShardedQueryService.from_service(self, parallel).run_batch(requests)
        elif policy is not None:
            if policy.workers > 1:
                from repro.parallel import ShardedQueryService

                return ShardedQueryService(self._engine, policy=policy).run_batch(requests)
            caching = (
                policy.memoize_results,
                policy.harvest_settled,
                policy.max_cached_entries,
            )
            if caching != (
                self._policy.memoize_results,
                self._policy.harvest_settled,
                self._policy.max_cached_entries,
            ):
                # A sequential batch runs through THIS service's cache and
                # memo, which were fixed at construction — silently ignoring
                # the override's caching knobs would be worse than refusing.
                raise PolicyError(
                    "a workers=1 policy override cannot change this service's "
                    "caching knobs (memoize_results / harvest_settled / "
                    "max_cached_entries are fixed at construction); build a "
                    "QueryService with the desired policy, or go through "
                    "repro.api.Session, which caches one service per "
                    "configuration"
                )
        start = time.perf_counter()
        io_before = self._engine.accessor.statistics.snapshot()
        cache_before = self._cache.cache_statistics.snapshot()
        outcomes = [self.execute(request) for request in requests]
        return BatchReport(
            outcomes=outcomes,
            elapsed_seconds=time.perf_counter() - start,
            io=self._engine.accessor.statistics.since(io_before),
            cache=self._cache.cache_statistics.since(cache_before),
        )

    def execute(self, request: QueryRequest) -> QueryOutcome:
        """Execute one request immediately (through the shared cache).

        Equivalent to ``submit`` + ``drain`` for a single request; pending
        submissions are left untouched.
        """
        self._check_request(request)
        ticket = self._next_ticket
        self._next_ticket += 1
        return self._execute(ticket, request)

    # ------------------------------------------------------------------ #
    # Execution internals
    # ------------------------------------------------------------------ #
    def _execute(self, ticket: int, request: QueryRequest) -> QueryOutcome:
        memo_key = self._memo_key(request)
        start = time.perf_counter()
        if memo_key is not None and memo_key in self._memo:
            self._cache.cache_statistics.result_hits += 1
            return QueryOutcome(
                ticket=ticket,
                request=request,
                result=self._memo[memo_key],
                io=AccessStatistics(),
                elapsed_seconds=time.perf_counter() - start,
                served_from_memo=True,
            )
        self._cache.cache_statistics.result_misses += 1
        io_before = self._engine.accessor.statistics.snapshot()
        result = self._run(request)
        outcome = QueryOutcome(
            ticket=ticket,
            request=request,
            result=result,
            io=self._engine.accessor.statistics.since(io_before),
            elapsed_seconds=time.perf_counter() - start,
        )
        if memo_key is not None:
            self._memo[memo_key] = result
        return outcome

    def _run(self, request: QueryRequest) -> SkylineResult | TopKResult:
        graph = self._engine.graph
        seeds = self._cache.seeds_for(graph, request.location)
        if isinstance(request, SkylineRequest):
            if request.algorithm == "baseline":
                return baseline_skyline(self._cache, graph, request.location)
            search = self._engine.skyline_search(
                request.location,
                algorithm=request.algorithm,
                probing=request.probing,
                first_nn_shortcut=request.first_nn_shortcut,
                data_layer=self._cache,
                seeds=seeds,
            )
        else:
            if request.algorithm == "baseline":
                function = self._engine.resolve_aggregate(request.aggregate, request.weights)
                return baseline_top_k(self._cache, graph, request.location, function, request.k)
            search = self._engine.top_k_search(
                request.location,
                request.k,
                aggregate=request.aggregate,
                weights=request.weights,
                algorithm=request.algorithm,
                data_layer=self._cache,
                seeds=seeds,
            )
        result = search.run()
        if self._harvest_settled:
            for expansion in search.expansions:
                self._cache.record_settled(seeds, expansion.cost_index, expansion.settled_costs)
        return result

    def _memo_key(self, request: QueryRequest) -> QueryRequest | None:
        if not self._memoize_results:
            return None
        try:
            hash(request)
        except TypeError:
            # e.g. a TopKRequest carrying an unhashable aggregate callable.
            return None
        return request

    def _check_request(self, request: QueryRequest) -> None:
        # Reject unanswerable requests at submission time, so a bad request
        # can never abort a drain() that already did work for earlier ones.
        validate_request(self._engine, request)
