"""Request and outcome types of the batch query service.

A request is a small frozen description of one query — what the engine needs
to execute it, nothing more.  Frozen (and therefore hashable) requests are
what make the service's result memoisation possible: two equal requests are
guaranteed to produce equal results against the same engine, so the second
one can be answered without touching the data layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.aggregates import AggregateFunction
from repro.core.results import SkylineResult, TopKResult
from repro.core.skyline import ProbingPolicy
from repro.errors import QueryError
from repro.network.accessor import AccessStatistics
from repro.network.location import NetworkLocation
from repro.service.cache import CacheStatistics

__all__ = [
    "SkylineRequest",
    "TopKRequest",
    "QueryRequest",
    "QueryOutcome",
    "BatchReport",
]

_ALGORITHMS = ("cea", "lsa", "baseline")


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in _ALGORITHMS:
        raise QueryError(f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}")


@dataclass(frozen=True)
class SkylineRequest:
    """One MCN skyline query to be executed by the service.

    ``algorithm`` accepts ``"cea"``, ``"lsa"`` or ``"baseline"``; note that
    inside the service LSA and CEA share the batch-wide cache either way, so
    they return identical results with identical I/O (the flag is kept for
    parity with :meth:`repro.MCNQueryEngine.skyline`).
    """

    location: NetworkLocation
    algorithm: str = "cea"
    probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN
    first_nn_shortcut: bool = True

    def __post_init__(self) -> None:
        _check_algorithm(self.algorithm)


@dataclass(frozen=True)
class TopKRequest:
    """One MCN top-k query to be executed by the service.

    Exactly one of ``weights`` (coefficients of a weighted sum) or
    ``aggregate`` (any increasingly monotone function) may be given; with
    neither, a uniform weighted sum is used.  A non-hashable ``aggregate``
    simply disables result memoisation for this request.
    """

    location: NetworkLocation
    k: int
    weights: tuple[float, ...] | None = None
    aggregate: AggregateFunction | None = None
    algorithm: str = "cea"

    def __post_init__(self) -> None:
        _check_algorithm(self.algorithm)
        if self.k < 1:
            raise QueryError("k must be a positive integer")
        if self.weights is not None and self.aggregate is not None:
            raise QueryError("pass either weights or an aggregate function, not both")
        if self.weights is not None and not isinstance(self.weights, tuple):
            object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))


QueryRequest = Union[SkylineRequest, TopKRequest]


@dataclass
class QueryOutcome:
    """The answer to one request, with its per-query cost accounting.

    ``io`` is the delta of the *base* accessor's counters for this query —
    zero page reads when the whole answer came out of the cross-query cache.
    ``served_from_memo`` marks answers returned from the result memo without
    running any algorithm.
    """

    ticket: int
    request: QueryRequest
    result: SkylineResult | TopKResult
    io: AccessStatistics
    elapsed_seconds: float
    served_from_memo: bool = False


@dataclass
class BatchReport:
    """Aggregate accounting of one :meth:`QueryService.run_batch` call."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    io: AccessStatistics = field(default_factory=AccessStatistics)
    cache: CacheStatistics = field(default_factory=CacheStatistics)

    @property
    def page_reads(self) -> int:
        return self.io.page_reads

    @property
    def memo_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.served_from_memo)

    def throughput_qps(self) -> float:
        """Queries answered per wall-clock second (0.0 for an empty batch)."""
        if not self.outcomes or self.elapsed_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed_seconds

    def describe(self) -> dict[str, object]:
        """Summary dictionary used by the CLI and the replay driver."""
        return {
            "queries": len(self.outcomes),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_qps": round(self.throughput_qps(), 1),
            "page_reads": self.io.page_reads,
            "buffer_hits": self.io.buffer_hits,
            "memo_hits": self.memo_hits,
            "cache_hit_rate": round(self.cache.hit_rate(), 4),
        }

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)
