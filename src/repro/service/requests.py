"""Request and outcome types of the batch query service.

A request is a small frozen description of one query — what the engine needs
to execute it, nothing more.  Frozen (and therefore hashable) requests are
what make the service's result memoisation possible: two equal requests are
guaranteed to produce equal results against the same engine, so the second
one can be answered without touching the data layer at all.

Requests are also *portable*: they pickle (so the sharded service can ship
them to pool workers) and they round-trip through plain-JSON payloads via
:func:`request_to_payload` / :func:`request_from_payload` (so workload traces
can be checked in as golden regression fixtures).  The only exception is a
:class:`TopKRequest` carrying an arbitrary aggregate callable — the built-in
aggregates serialize by name, anything else is rejected with a clear error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Union

from repro.core.aggregates import AggregateFunction, MaxCost, WeightedLpNorm, WeightedSum
from repro.core.results import SkylineResult, TopKResult
from repro.core.skyline import ProbingPolicy
from repro.errors import QueryError
from repro.network.accessor import AccessStatistics
from repro.network.location import NetworkLocation
from repro.service.cache import CacheStatistics

__all__ = [
    "SkylineRequest",
    "TopKRequest",
    "QueryRequest",
    "QueryOutcome",
    "BatchReport",
    "request_to_payload",
    "request_from_payload",
    "encode_requests",
    "decode_requests",
    "location_to_payload",
    "location_from_payload",
]

_ALGORITHMS = ("cea", "lsa", "baseline")


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in _ALGORITHMS:
        raise QueryError(f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}")


def _check_departure_time(departure_time: object) -> float | None:
    """Normalise a request's departure time (``None`` means "static graph")."""
    if departure_time is None:
        return None
    try:
        value = float(departure_time)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise QueryError(
            f"departure_time must be a number, got {departure_time!r}"
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise QueryError("departure_time must be finite")
    if value < 0:
        raise QueryError(f"departure_time must be non-negative, got {value}")
    return value


@dataclass(frozen=True)
class SkylineRequest:
    """One MCN skyline query to be executed by the service.

    ``algorithm`` accepts ``"cea"``, ``"lsa"`` or ``"baseline"``; note that
    inside the service LSA and CEA share the batch-wide cache either way, so
    they return identical results with identical I/O (the flag is kept for
    parity with :meth:`repro.MCNQueryEngine.skyline`).

    ``departure_time`` parameterises the query on the temporal axis: a
    session whose policy enables ``temporal="profiles"`` answers it over the
    profile-evaluated snapshot at that time.  ``None`` (the default) keeps
    the classic static-graph semantics; a static session rejects any other
    value at submission.
    """

    location: NetworkLocation
    algorithm: str = "cea"
    probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN
    first_nn_shortcut: bool = True
    departure_time: float | None = None

    def __post_init__(self) -> None:
        _check_algorithm(self.algorithm)
        object.__setattr__(self, "departure_time", _check_departure_time(self.departure_time))


@dataclass(frozen=True)
class TopKRequest:
    """One MCN top-k query to be executed by the service.

    Exactly one of ``weights`` (coefficients of a weighted sum) or
    ``aggregate`` (any increasingly monotone function) may be given; with
    neither, a uniform weighted sum is used.  A non-hashable ``aggregate``
    simply disables result memoisation for this request.
    ``departure_time`` behaves as on :class:`SkylineRequest`.
    """

    location: NetworkLocation
    k: int
    weights: tuple[float, ...] | None = None
    aggregate: AggregateFunction | None = None
    algorithm: str = "cea"
    departure_time: float | None = None

    def __post_init__(self) -> None:
        _check_algorithm(self.algorithm)
        if self.k < 1:
            raise QueryError("k must be a positive integer")
        if self.weights is not None and self.aggregate is not None:
            raise QueryError("pass either weights or an aggregate function, not both")
        if self.weights is not None and not isinstance(self.weights, tuple):
            object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        object.__setattr__(self, "departure_time", _check_departure_time(self.departure_time))


QueryRequest = Union[SkylineRequest, TopKRequest]


# --------------------------------------------------------------------- #
# JSON-payload serialization (golden fixtures, cross-process traces)
# --------------------------------------------------------------------- #
_AGGREGATE_KINDS = {"weighted-sum": WeightedSum, "lp-norm": WeightedLpNorm, "max-cost": MaxCost}


def location_to_payload(location: NetworkLocation) -> dict[str, object]:
    """A plain-JSON dictionary describing a network location.

    Shared by the request codecs here and the update-stream codecs of
    :mod:`repro.monitor` so every serialized location looks the same.
    """
    if location.node_id is not None:
        return {"node": location.node_id}
    return {"edge": location.edge_id, "offset": location.offset}


def location_from_payload(payload: dict[str, object]) -> NetworkLocation:
    """Rebuild a :class:`NetworkLocation` from a :func:`location_to_payload` dictionary."""
    if "node" in payload:
        return NetworkLocation.at_node(int(payload["node"]))  # type: ignore[arg-type]
    try:
        return NetworkLocation.on_edge(int(payload["edge"]), float(payload["offset"]))  # type: ignore[arg-type]
    except KeyError as missing:
        raise QueryError(f"location payload missing {missing}") from None


_location_to_payload = location_to_payload
_location_from_payload = location_from_payload


def _aggregate_to_payload(aggregate: AggregateFunction) -> dict[str, object]:
    if isinstance(aggregate, WeightedSum):
        return {"kind": "weighted-sum", "weights": list(aggregate.weights)}
    if isinstance(aggregate, WeightedLpNorm):
        return {"kind": "lp-norm", "weights": list(aggregate.weights), "p": aggregate.p}
    if isinstance(aggregate, MaxCost):
        return {"kind": "max-cost", "weights": list(aggregate.weights)}
    raise QueryError(
        f"aggregate {aggregate!r} is not serializable; use WeightedSum, "
        "WeightedLpNorm or MaxCost (or pass weights instead)"
    )


def _aggregate_from_payload(payload: dict[str, object]) -> AggregateFunction:
    kind = payload.get("kind")
    if kind not in _AGGREGATE_KINDS:
        raise QueryError(f"unknown aggregate kind {kind!r}; expected one of {sorted(_AGGREGATE_KINDS)}")
    weights = tuple(float(w) for w in payload["weights"])  # type: ignore[union-attr]
    if kind == "lp-norm":
        return WeightedLpNorm(weights, p=float(payload.get("p", 2.0)))  # type: ignore[arg-type]
    return _AGGREGATE_KINDS[kind](weights)  # type: ignore[operator,arg-type]


def request_to_payload(request: QueryRequest) -> dict[str, object]:
    """A plain-JSON dictionary describing ``request`` (see :func:`request_from_payload`)."""
    if isinstance(request, SkylineRequest):
        payload = {
            "type": "skyline",
            "location": _location_to_payload(request.location),
            "algorithm": request.algorithm,
            "probing": request.probing.value,
            "first_nn_shortcut": request.first_nn_shortcut,
        }
        if request.departure_time is not None:
            payload["departure_time"] = request.departure_time
        return payload
    if isinstance(request, TopKRequest):
        payload = {
            "type": "topk",
            "location": _location_to_payload(request.location),
            "algorithm": request.algorithm,
            "k": request.k,
        }
        if request.weights is not None:
            payload["weights"] = list(request.weights)
        if request.aggregate is not None:
            payload["aggregate"] = _aggregate_to_payload(request.aggregate)
        if request.departure_time is not None:
            payload["departure_time"] = request.departure_time
        return payload
    raise QueryError(f"expected a SkylineRequest or TopKRequest, got {type(request).__name__}")


def request_from_payload(payload: dict[str, object]) -> QueryRequest:
    """Rebuild a request from a :func:`request_to_payload` dictionary."""
    kind = payload.get("type")
    try:
        if kind == "skyline":
            return SkylineRequest(
                location=_location_from_payload(payload["location"]),  # type: ignore[arg-type]
                algorithm=str(payload.get("algorithm", "cea")),
                probing=ProbingPolicy(payload.get("probing", ProbingPolicy.ROUND_ROBIN.value)),
                first_nn_shortcut=bool(payload.get("first_nn_shortcut", True)),
                departure_time=payload.get("departure_time"),  # type: ignore[arg-type]
            )
        if kind == "topk":
            weights = payload.get("weights")
            aggregate = payload.get("aggregate")
            return TopKRequest(
                location=_location_from_payload(payload["location"]),  # type: ignore[arg-type]
                k=int(payload["k"]),  # type: ignore[arg-type]
                weights=tuple(float(w) for w in weights) if weights is not None else None,  # type: ignore[union-attr]
                aggregate=_aggregate_from_payload(aggregate) if aggregate is not None else None,  # type: ignore[arg-type]
                algorithm=str(payload.get("algorithm", "cea")),
                departure_time=payload.get("departure_time"),  # type: ignore[arg-type]
            )
    except KeyError as missing:
        raise QueryError(f"{kind} request payload missing {missing}") from None
    raise QueryError(f"unknown request type {kind!r}; expected 'skyline' or 'topk'")


def encode_requests(requests: Iterable[QueryRequest]) -> list[dict[str, object]]:
    """Payloads of a whole trace, in order."""
    return [request_to_payload(request) for request in requests]


def decode_requests(payloads: Sequence[dict[str, object]]) -> list[QueryRequest]:
    """Rebuild a whole trace from its payloads, in order."""
    return [request_from_payload(payload) for payload in payloads]


@dataclass
class QueryOutcome:
    """The answer to one request, with its per-query cost accounting.

    ``io`` is the delta of the *base* accessor's counters for this query —
    zero page reads when the whole answer came out of the cross-query cache.
    ``served_from_memo`` marks answers returned from the result memo without
    running any algorithm.
    """

    ticket: int
    request: QueryRequest
    result: SkylineResult | TopKResult
    io: AccessStatistics
    elapsed_seconds: float
    served_from_memo: bool = False


@dataclass
class BatchReport:
    """Aggregate accounting of one :meth:`QueryService.run_batch` call."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    io: AccessStatistics = field(default_factory=AccessStatistics)
    cache: CacheStatistics = field(default_factory=CacheStatistics)

    @property
    def page_reads(self) -> int:
        return self.io.page_reads

    @property
    def memo_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.served_from_memo)

    def throughput_qps(self) -> float:
        """Queries answered per wall-clock second (0.0 for an empty batch)."""
        if not self.outcomes or self.elapsed_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed_seconds

    def describe(self) -> dict[str, object]:
        """Summary dictionary used by the CLI and the replay driver."""
        return {
            "queries": len(self.outcomes),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_qps": round(self.throughput_qps(), 1),
            "page_reads": self.io.page_reads,
            "buffer_hits": self.io.buffer_hits,
            "memo_hits": self.memo_hits,
            "cache_hit_rate": round(self.cache.hit_rate(), 4),
        }

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)
