"""Batch query service: throughput-oriented execution of many MCN queries.

The paper evaluates LSA/CEA one query at a time; this package is the layer
that serves *workloads*.  :class:`QueryService` executes batches (or a
submit/drain stream) of mixed skyline and top-k requests against one shared
:class:`~repro.MCNQueryEngine`, routing every query through a
:class:`CrossQueryExpansionCache` so fetched adjacency/facility records,
expansion seeds and node settle-costs are reused across queries instead of
being rebuilt per query.
"""

from repro.service.cache import (
    CacheStatistics,
    CrossQueryExpansionCache,
    SharedCacheChargeLayer,
)
from repro.service.requests import (
    BatchReport,
    QueryOutcome,
    QueryRequest,
    SkylineRequest,
    TopKRequest,
)
from repro.service.service import QueryService

__all__ = [
    "BatchReport",
    "CacheStatistics",
    "CrossQueryExpansionCache",
    "QueryOutcome",
    "QueryRequest",
    "QueryService",
    "SharedCacheChargeLayer",
    "SkylineRequest",
    "TopKRequest",
]
