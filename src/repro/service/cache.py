"""Cross-query expansion-state cache: the data-layer half of the batch service.

The paper's CEA shares fetched information *within* one query through a
:class:`~repro.network.accessor.FetchOnceCache`.  The batch service
generalises the same idea *across* queries: one
:class:`CrossQueryExpansionCache` outlives every query of a batch, so

* the adjacency list of a node and the facility list of an edge reach the
  underlying accessor (and therefore the simulated disk) at most once per
  batch, no matter how many queries traverse them;
* :class:`~repro.core.expansion.ExpansionSeeds` are memoised per query
  location, so repeated or co-located queries skip re-deriving their anchor
  costs;
* node settle-costs harvested from finished expansions are kept per
  (seeds, cost type), exposing exact network distances for regions the
  batch has already explored to callers (diagnostics, warm-start
  heuristics); exact repeat *requests* are answered by the service's
  result memo — see ``QueryService``.

The cache implements the :class:`~repro.network.accessor.GraphAccessor`
protocol, so every algorithm of :mod:`repro.core` can run through it
unchanged; record lists handed out are the same immutable tuples the base
accessor produced, which is why a warm cache can never change query results,
only the I/O needed to obtain them.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.expansion import ExpansionSeeds
from repro.core.kernel import DirectChargeLayer, KernelDataLayer
from repro.errors import QueryError
from repro.network.accessor import (
    AccessStatistics,
    AdjacencyRecord,
    FacilityRecord,
    GraphAccessor,
)
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilityId
from repro.network.graph import EdgeId, MultiCostGraph, NodeId
from repro.network.location import NetworkLocation

__all__ = ["CacheStatistics", "CrossQueryExpansionCache", "SharedCacheChargeLayer"]


@dataclass
class CacheStatistics:
    """Hit/miss counters of the cross-query cache (all cumulative)."""

    adjacency_hits: int = 0
    adjacency_misses: int = 0
    facility_hits: int = 0
    facility_misses: int = 0
    facility_edge_hits: int = 0
    facility_edge_misses: int = 0
    seed_hits: int = 0
    seed_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    settled_nodes_recorded: int = 0
    evictions: int = 0

    @property
    def record_hits(self) -> int:
        """Data-record requests answered without touching the base accessor."""
        return self.adjacency_hits + self.facility_hits + self.facility_edge_hits

    @property
    def record_misses(self) -> int:
        return self.adjacency_misses + self.facility_misses + self.facility_edge_misses

    def hit_rate(self) -> float:
        """Fraction of record requests served from the cache (0.0 when idle)."""
        total = self.record_hits + self.record_misses
        return self.record_hits / total if total else 0.0

    def snapshot(self) -> "CacheStatistics":
        return CacheStatistics(**vars(self))

    def since(self, earlier: "CacheStatistics") -> "CacheStatistics":
        """The counter deltas accumulated since ``earlier`` was snapshotted."""
        return CacheStatistics(
            **{name: value - getattr(earlier, name) for name, value in vars(self).items()}
        )

    def accumulate(self, other: "CacheStatistics") -> None:
        """Add ``other``'s counters into this one (merging per-shard reports)."""
        for name, value in vars(other).items():
            setattr(self, name, getattr(self, name) + value)


class CrossQueryExpansionCache:
    """Expansion state shared by every query of a batch.

    Parameters
    ----------
    accessor:
        The base data layer (typically the engine's
        :class:`~repro.storage.NetworkStorage`).  All misses are forwarded
        here, so its I/O counters keep measuring the physical work.
    max_entries:
        Optional bound on the number of entries in each cached store —
        adjacency lists, edge facility lists, memoised seeds and settled
        cost maps (each map bounded independently, LRU eviction).
        ``None`` (default) caches without bound — appropriate for batches
        over the moderate networks of the experiments.
    """

    def __init__(self, accessor: GraphAccessor, *, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise QueryError("max_entries must be positive (or None for unbounded)")
        self._accessor = accessor
        self._max_entries = max_entries
        self._adjacency: dict[NodeId, list[AdjacencyRecord]] = {}
        self._edge_facilities: dict[EdgeId, list[FacilityRecord]] = {}
        self._facility_edges: dict[FacilityId, EdgeId] = {}
        self._seeds: dict[NetworkLocation, ExpansionSeeds] = {}
        self._settled: dict[tuple[ExpansionSeeds, int], dict[NodeId, float]] = {}
        self._stats = CacheStatistics()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def base_accessor(self) -> GraphAccessor:
        """The accessor misses are forwarded to."""
        return self._accessor

    @property
    def num_cost_types(self) -> int:
        return self._accessor.num_cost_types

    @property
    def statistics(self) -> AccessStatistics:
        """The *base* accessor's I/O counters (the accessor-protocol view)."""
        return self._accessor.statistics

    @property
    def cache_statistics(self) -> CacheStatistics:
        """Hit/miss counters of this cache layer."""
        return self._stats

    @property
    def cached_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def cached_edges(self) -> int:
        return len(self._edge_facilities)

    @property
    def max_entries(self) -> int | None:
        return self._max_entries

    def describe(self) -> dict[str, object]:
        """Summary used by the CLI and the replay driver."""
        return {
            "cached_nodes": self.cached_nodes,
            "cached_edges": self.cached_edges,
            "cached_seeds": len(self._seeds),
            "settled_entries": len(self._settled),
            "hit_rate": round(self._stats.hit_rate(), 4),
            "evictions": self._stats.evictions,
        }

    def clear(self) -> None:
        """Drop every cached record, seed and settle-cost (counters survive)."""
        self._adjacency.clear()
        self._edge_facilities.clear()
        self._facility_edges.clear()
        self._seeds.clear()
        self._settled.clear()

    # ------------------------------------------------------------------ #
    # GraphAccessor protocol
    # ------------------------------------------------------------------ #
    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        cached = self._adjacency.get(node_id)
        if cached is not None:
            self._stats.adjacency_hits += 1
            self._touch(self._adjacency, node_id)
            return cached
        self._stats.adjacency_misses += 1
        records = self._accessor.adjacency(node_id)
        self._insert(self._adjacency, node_id, records)
        return records

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        cached = self._edge_facilities.get(edge_id)
        if cached is not None:
            self._stats.facility_hits += 1
            self._touch(self._edge_facilities, edge_id)
            return cached
        self._stats.facility_misses += 1
        records = self._accessor.edge_facilities(edge_id)
        self._insert(self._edge_facilities, edge_id, records)
        return records

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        cached = self._facility_edges.get(facility_id)
        if cached is not None:
            self._stats.facility_edge_hits += 1
            return cached
        self._stats.facility_edge_misses += 1
        edge_id = self._accessor.facility_edge(facility_id)
        self._facility_edges[facility_id] = edge_id
        return edge_id

    # ------------------------------------------------------------------ #
    # Expansion-seed memoisation
    # ------------------------------------------------------------------ #
    def seeds_for(self, graph: MultiCostGraph, query: NetworkLocation) -> ExpansionSeeds:
        """The (memoised) expansion seeds of a query location."""
        seeds = self._seeds.get(query)
        if seeds is not None:
            self._stats.seed_hits += 1
            self._touch(self._seeds, query)
            return seeds
        self._stats.seed_misses += 1
        seeds = ExpansionSeeds.from_query(graph, query)
        self._insert(self._seeds, query, seeds)
        return seeds

    # ------------------------------------------------------------------ #
    # Settle-cost store
    # ------------------------------------------------------------------ #
    def record_settled(
        self, seeds: ExpansionSeeds, cost_index: int, costs: Mapping[NodeId, float]
    ) -> None:
        """Merge the settled node costs of a finished expansion into the store.

        Settled distances are final (the Dijkstra invariant), so two
        expansions with identical seeds and cost type can only ever agree on
        a node's distance — merging is therefore a plain union.
        """
        if not costs:
            return
        key = (seeds, cost_index)
        store = self._settled.get(key)
        if store is None:
            store = {}
            self._insert(self._settled, key, store)
        else:
            self._touch(self._settled, key)
        before = len(store)
        store.update(costs)
        self._stats.settled_nodes_recorded += len(store) - before

    def settled_costs(self, seeds: ExpansionSeeds, cost_index: int) -> dict[NodeId, float]:
        """Known settled distances for (seeds, cost type); empty if never explored."""
        return dict(self._settled.get((seeds, cost_index), {}))

    def known_node_cost(
        self, seeds: ExpansionSeeds, cost_index: int, node_id: NodeId
    ) -> float | None:
        """The exact network distance of ``node_id`` under one cost type, if settled."""
        return self._settled.get((seeds, cost_index), {}).get(node_id)

    # ------------------------------------------------------------------ #
    # Kernel fast path
    # ------------------------------------------------------------------ #
    def kernel_charge_layer(self, compiled: CompiledGraph) -> KernelDataLayer | None:
        """A charge layer the kernel factory may use instead of forwarding.

        Returns a :class:`SharedCacheChargeLayer` bound to this cache, or
        ``None`` when the base accessor cannot be charged through page plans
        (an exotic accessor type, or plans compiled over a different
        storage) — the factory then falls back to a
        :class:`~repro.core.kernel.ForwardingLayer`, which is always
        correct.
        """
        try:
            return SharedCacheChargeLayer(compiled, self)
        except QueryError:
            return None

    # ------------------------------------------------------------------ #
    # LRU plumbing
    # ------------------------------------------------------------------ #
    def _touch(self, store: dict, key) -> None:
        if self._max_entries is None:
            return
        store[key] = store.pop(key)

    def _insert(self, store: dict, key, value) -> None:
        store[key] = value
        if self._max_entries is not None and len(store) > self._max_entries:
            store.pop(next(iter(store)))
            self._stats.evictions += 1


class SharedCacheChargeLayer(DirectChargeLayer):
    """Charge a :class:`CrossQueryExpansionCache` without routing reads through it.

    The forwarding path re-enacts every kernel request as a real accessor
    call so the cache's counters, LRU order and the base accessor's I/O stay
    exactly what the legacy expansions would have produced — at the price of
    materialising records the kernel never looks at.  This layer produces
    the *same observable state* directly: a hit is a dict probe plus a hit
    counter (and the LRU touch a bounded cache would have performed); a miss
    charges the base accessor through :class:`~repro.core.kernel.
    DirectChargeLayer` (counter increment, page-plan replay through the
    storage buffer) and then populates the cache with records rebuilt from
    the compiled columns — value-identical to what the base accessor would
    have returned, so later queries (including legacy-path ones sharing the
    cache) read the very same data.  Nothing about cache contents, hit/miss
    statistics, eviction counts or base-accessor I/O differs from the
    forwarding path; only the per-request Python overhead does.
    """

    __slots__ = (
        "_cache",
        "_cache_stats",
        "_adj_store",
        "_fac_store",
        "_edge_store",
        "_bounded",
        "_node_id_of",
        "_edge_id_of",
    )

    def __init__(self, compiled: CompiledGraph, cache: CrossQueryExpansionCache):
        super().__init__(compiled, cache.base_accessor)
        self._cache = cache
        self._cache_stats = cache._stats
        self._adj_store = cache._adjacency
        self._fac_store = cache._edge_facilities
        self._edge_store = cache._facility_edges
        # An unbounded cache's LRU touch is a no-op; hits are the hot path,
        # so skip the move-to-back entirely instead of re-deciding per
        # request (the touch is inlined below for the same reason).
        self._bounded = cache._max_entries is not None
        self._node_id_of = compiled.node_ids
        self._edge_id_of = compiled.edge_ids

    def note_adjacency(self, node_idx: int) -> None:
        key = self._node_id_of[node_idx]
        store = self._adj_store
        if key in store:
            self._cache_stats.adjacency_hits += 1
            if self._bounded:
                store[key] = store.pop(key)
            return
        self._cache_stats.adjacency_misses += 1
        DirectChargeLayer.note_adjacency(self, node_idx)
        self._cache._insert(store, key, self.compiled.adjacency_records(node_idx))

    def note_edge_facilities(self, edge_idx: int) -> None:
        key = self._edge_id_of[edge_idx]
        store = self._fac_store
        if key in store:
            self._cache_stats.facility_hits += 1
            if self._bounded:
                store[key] = store.pop(key)
            return
        self._cache_stats.facility_misses += 1
        DirectChargeLayer.note_edge_facilities(self, edge_idx)
        self._cache._insert(
            store, key, list(self.compiled.edge_facility_records(edge_idx))
        )

    def note_seed_edge(self, edge_id: EdgeId) -> None:
        self.note_edge_facilities(self.compiled.edge_index[edge_id])

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        cached = self._edge_store.get(facility_id)
        if cached is not None:
            self._cache_stats.facility_edge_hits += 1
            return cached
        self._cache_stats.facility_edge_misses += 1
        edge_id = DirectChargeLayer.facility_edge(self, facility_id)
        self._edge_store[facility_id] = edge_id
        return edge_id

    def batch_charges(self) -> tuple[str, object]:
        # Every request flips cache state (counters, LRU order), so charges
        # must stay synchronous per request even over in-memory accessors.
        return ("generic", None)
