"""A dependency-free asyncio HTTP/1.1 listener for :class:`ServeApp`.

The container this project targets has no web framework baked in, so the
network transport is ~150 lines of asyncio streams: one connection per
request (``Connection: close``), a request line, headers, an optional
``Content-Length`` body, and either a JSON answer or a ``text/event-stream``
response that stays open while the delta stream lives.  Everything
interesting (routing, limits, envelopes) happens in the transport-agnostic
:class:`~repro.serve.ServeApp`, which is also exercised through the
in-process transport by the differential harness — the listener only
translates bytes.

Deliberate non-goals: keep-alive, chunked request bodies, TLS,
HTTP/2.  This is the reproduction's front door, not a general web server;
a production deployment would mount :func:`repro.serve.create_asgi_app`
under a real ASGI server instead.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ServeError
from repro.serve.app import ServeApp, ServeRequest, ServeResponse, StreamResponse
from repro.serve.streaming import sse_encode

__all__ = ["HttpServer", "REASONS"]

#: Status -> reason phrase for every code the app can emit.
REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_BYTES = 32 * 1024


class _BadRequest(Exception):
    """A connection-level protocol violation (answered 400, then closed)."""


class HttpServer:
    """Serve one :class:`ServeApp` over plain HTTP/1.1.

    ``port=0`` binds an ephemeral port (the tests' mode); :attr:`port`
    reports the bound one after :meth:`start`.  The server does not own the
    app — closing the listener leaves the app (and its session) running, so
    one app can be drained and re-exposed.
    """

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0, *, fault_plane=None
    ):
        if not isinstance(app, ServeApp):
            raise ServeError(f"expected a ServeApp, got {type(app).__name__}")
        self._app = app
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self.connections = 0
        #: Optional :class:`~repro.serve.FaultPlane`; a scheduled
        #: ``connection.send`` aborts the connection *after* dispatch and
        #: before the body is written — the computed-but-undelivered case.
        self.fault_plane = fault_plane

    @property
    def app(self) -> ServeApp:
        return self._app

    @property
    def port(self) -> int:
        if self._server is None:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self.port}"

    async def start(self) -> "HttpServer":
        if self._server is not None:
            raise ServeError("this HttpServer is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self

    async def aclose(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "HttpServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            try:
                request = await self._read_request(reader)
            except _BadRequest as error:
                await self._write_json(
                    writer,
                    ServeResponse(
                        400,
                        {"error": {"code": "invalid-request", "message": str(error)}},
                    ),
                )
                return
            response = await self._app.dispatch(request)
            if isinstance(response, StreamResponse):
                await self._write_stream(writer, response)
            else:
                await self._write_json(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            # The client went away (IncompleteReadError: mid-body, before
            # dispatch — no admission slot was ever held); nothing to answer.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> ServeRequest:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as error:
            raise _BadRequest(f"unreadable request line: {error}") from None
        if not request_line:
            raise _BadRequest("empty request")
        if len(request_line) > _MAX_REQUEST_LINE:
            raise _BadRequest("request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise _BadRequest("headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: bytes | None = None
        raw_length = headers.get("content-length")
        if raw_length is not None:
            try:
                length = int(raw_length)
            except ValueError:
                raise _BadRequest(f"bad Content-Length {raw_length!r}") from None
            if length < 0:
                raise _BadRequest(f"bad Content-Length {raw_length!r}")
            # Read at most one byte past the app's cap: an oversized body is
            # answered 413 without ever being buffered in full.
            limit = min(length, self._app.config.max_body_bytes + 1)
            body = await reader.readexactly(limit) if limit else b""
        return ServeRequest(method=method, path=path, body=body, headers=headers)

    async def _write_json(
        self, writer: asyncio.StreamWriter, response: ServeResponse
    ) -> None:
        if self.fault_plane is not None and self.fault_plane.should_fire(
            "connection.send"
        ):
            # Injected sever: the work is done, the answer never leaves.
            self._app.note_severed(ok=response.ok)
            writer.transport.abort()
            return
        body = json.dumps(response.payload, sort_keys=True).encode("utf-8")
        try:
            writer.write(
                self._head(response.status, "application/json", len(body), response)
            )
            writer.write(body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            # A real sever: same accounting, then swallow — there is no one
            # left to answer.
            self._app.note_severed(ok=response.ok)

    async def _write_stream(
        self, writer: asyncio.StreamWriter, response: StreamResponse
    ) -> None:
        stream = response.stream
        writer.write(self._head(response.status, "text/event-stream", None, response))
        try:
            await writer.drain()
            async for event in stream.events():
                writer.write(sse_encode(event))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            # slow or vanished consumer; the broker forgets the stream
            self._app.note_severed(ok=False)
        finally:
            stream.close()
            response.broker.discard(stream)

    @staticmethod
    def _head(
        status: int, content_type: str, length: int | None, response=None
    ) -> bytes:
        reason = REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        retry_after = _retry_after_of(response)
        if retry_after is not None:
            # Whole seconds, rounded up — the header grammar wants an integer.
            lines.append(f"Retry-After: {max(1, int(-(-retry_after // 1)))}")
        if content_type == "text/event-stream":
            lines.append("Cache-Control: no-store")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def _retry_after_of(response) -> float | None:
    """The ``retry_after`` hint of an error envelope, if the answer has one."""
    payload = getattr(response, "payload", None)
    if not isinstance(payload, dict):
        return None
    error = payload.get("error")
    if not isinstance(error, dict):
        return None
    value = error.get("retry_after")
    return float(value) if isinstance(value, (int, float)) else None
