"""The transport-agnostic serving application: routes, handlers, limits.

:class:`ServeApp` is the front door over one :class:`~repro.api.Session`.
It is **transport-agnostic**: a request is a plain
:class:`ServeRequest` (method, path, raw body) and the answer is either a
:class:`ServeResponse` (status + JSON payload) or a
:class:`StreamResponse` (an SSE delta feed).  The pure-asyncio HTTP/1.1
listener (:mod:`repro.serve.http`) and the in-process test transport
(:mod:`repro.serve.testing`) both speak exactly this interface, so every
conformance and fault-injection test of the app covers the network path's
behaviour too.

Endpoints (all JSON)::

    GET    /v1/health                      liveness + version
    GET    /v1/metrics                     rolling latency percentiles, limits
    POST   /v1/query                       one skyline / top-k request
    POST   /v1/batch                       submit a batch job (202 + job id)
    GET    /v1/batch/{job}                 poll a batch job
    PATCH  /v1/facilities                  apply one facility tick (insert /
                                           delete / relocate) + invalidate
    PATCH  /v1/edges                       apply one edge-cost tick
                                           (re-profiled edge vectors)
    POST   /v1/subscriptions               register a long-lived subscription
    DELETE /v1/subscriptions/{sid}         drop a subscription
    GET    /v1/subscriptions/{sid}/stream  live DeltaReports over SSE

Execution model — correctness first: every session call runs on **one**
worker thread (the session executor), so concurrent clients are admitted
concurrently but execute in a single serialised order.  Each unit of work
is stamped with a monotonically increasing ``seq`` *inside* that thread;
replaying the same operations against a direct :class:`~repro.api.Session`
in ``seq`` order must reproduce every payload bit-identically — which is
precisely what the async load-replay differential harness asserts.

Robustness is part of the contract, not an afterthought: bounded
in-flight admission with instant ``saturated`` rejection, per-request
deadlines with clean cancellation (an expired request frees the
connection; the orphaned engine call finishes and is discarded without
wedging the executor), bounded per-subscriber stream buffers (slow
consumers are lagged out, the tick path never blocks), a body-size cap,
and structured error envelopes for every failure — a client never sees a
traceback.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import re
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

from repro import __version__
from repro.api.policy import ExecutionPolicy, policy_from_payload
from repro.api.session import Session
from repro.api.stats import LatencyRecorder
from repro.errors import (
    FacilityError,
    PolicyError,
    QueryError,
    ReproError,
    ServeError,
    StorageError,
)
from repro.monitor.stream import EdgeCostUpdate, tick_from_payload
from repro.serve.journal import JobJournal
from repro.serve.lifecycle import DrainReport, ServerLifecycle
from repro.serve.limits import AdmissionController, IdempotencyCache, ServeConfig
from repro.serve.payloads import (
    batch_response_to_payload,
    query_response_to_payload,
    tick_response_to_payload,
)
from repro.serve.streaming import DeltaBroker, DeltaStream, StreamEvent
from repro.service.requests import SkylineRequest, request_from_payload

__all__ = [
    "ServeApp",
    "ServeRequest",
    "ServeResponse",
    "StreamResponse",
    "error_envelope",
]

#: Every error code a client can receive, pinned by the surface fixture.
ERROR_CODES = (
    "closed",
    "conflict",
    "dataset-unavailable",
    "draining",
    "internal",
    "invalid-policy",
    "invalid-request",
    "invalid-update",
    "method-not-allowed",
    "not-found",
    "payload-too-large",
    "saturated",
    "timeout",
)

#: Routes whose answers may be deduplicated via the ``Idempotency-Key``
#: header (the mutating / work-submitting endpoints).
IDEMPOTENT_ROUTES = frozenset({"query", "batch-submit", "patch", "patch-edges"})

#: Routes still answered while the server drains: health and metrics (so
#: orchestrators can watch the drain) and batch polling (so clients can
#: collect results the server is finishing on their behalf).
DRAIN_ALLOWED_ROUTES = frozenset({"health", "metrics", "batch-poll"})

#: Request-body shapes per endpoint (``?`` marks an optional key) and the
#: top-level response keys — the serving tier's wire schema, pinned by the
#: golden surface fixture so accidental drift fails CI.
SURFACE_SCHEMAS: dict[str, dict[str, object]] = {
    "POST /v1/query": {
        "request": {"request": "<query payload>", "policy?": "<policy payload>"},
        "response": [
            "seq", "kind", "ticket", "served_from_memo", "result", "io",
            "elapsed_seconds",
        ],
    },
    "POST /v1/batch": {
        "request": {"requests": "[<query payload>...]", "policy?": "<policy payload>"},
        "response": ["job", "state"],
    },
    "GET /v1/batch/{job}": {
        "request": None,
        "response": ["job", "state", "result?", "error?"],
    },
    "PATCH /v1/facilities": {
        "request": {"updates": "[<facility update payload>...]"},
        "response": [
            "seq", "index", "updates", "deltas", "counters",
            "fallback_subscriptions", "sharded", "io", "elapsed_seconds",
            "invalidated_services",
        ],
    },
    "PATCH /v1/edges": {
        "request": {"updates": "[<edge-cost update payload>...]"},
        "response": [
            "seq", "index", "updates", "deltas", "counters",
            "fallback_subscriptions", "sharded", "io", "elapsed_seconds",
            "invalidated_services",
        ],
    },
    "POST /v1/subscriptions": {
        "request": {"request": "<query payload>"},
        "response": ["seq", "subscription", "kind", "size", "result"],
    },
    "DELETE /v1/subscriptions/{sid}": {
        "request": None,
        "response": ["subscription", "unsubscribed", "streams_closed"],
    },
    "GET /v1/subscriptions/{sid}/stream": {
        "request": None,
        "response": ["<SSE: init, delta..., lagged|unsubscribed|closed>"],
    },
    "GET /v1/health": {
        "request": None,
        "response": ["status", "state", "version"],
    },
    "GET /v1/metrics": {
        "request": None,
        "response": ["requests", "errors", "timeouts", "severed", "served",
                     "admission", "jobs", "streams", "endpoints", "session",
                     "lifecycle", "idempotency", "journal"],
    },
}


@dataclass(frozen=True)
class ServeRequest:
    """One transport-level request: method, path, raw (undecoded) body.

    ``headers`` carries the transport's request headers (names
    case-insensitive; the HTTP listener lowercases them).  The app only
    reads ``Idempotency-Key`` — everything else about a request lives in
    the method, path and body.
    """

    method: str
    path: str
    body: bytes | str | None = None
    headers: dict | None = None

    def header(self, name: str) -> str | None:
        """One header value, case-insensitively (``None`` when absent)."""
        if not self.headers:
            return None
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return None


@dataclass
class ServeResponse:
    """One JSON answer: status code plus the payload to serialise."""

    status: int
    payload: dict[str, object]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def body_bytes(self) -> bytes:
        return json.dumps(self.payload, sort_keys=True).encode("utf-8")


@dataclass
class StreamResponse:
    """One SSE answer: the stream to drain plus its broker (for cleanup)."""

    stream: DeltaStream
    broker: DeltaBroker
    status: int = 200


def error_envelope(
    code: str, message: str, *, retry_after: float | None = None
) -> dict[str, object]:
    """The uniform error body: ``{"error": {"code": ..., "message": ...}}``.

    ``retry_after`` adds the optional backoff hint transient refusals
    (``draining`` / ``conflict`` / ``dataset-unavailable``) carry; the
    HTTP transport mirrors it into a ``Retry-After`` header.
    """
    if code not in ERROR_CODES:
        raise ServeError(f"unknown error code {code!r}; expected one of {ERROR_CODES}")
    error: dict[str, object] = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"error": error}


def _request_fingerprint(route_name: str, body: object) -> str:
    """A stable digest of (route, canonical body) binding an Idempotency-Key."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(f"{route_name}\n{canonical}".encode("utf-8")).hexdigest()


@dataclass
class _RequestContext:
    """Per-dispatch idempotency state threaded into the handlers."""

    key: str | None = None
    fingerprint: str | None = None


class _HandlerError(Exception):
    """Internal: a handler-raised structured refusal (already enveloped)."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.response = ServeResponse(status, error_envelope(code, message))


class _AdmissionSlot:
    """Ownership token for one admission slot.

    Dispatch acquires the slot; :meth:`ServeApp._execute` *takes* it when
    the work is handed to the executor (the done-callback releases it when
    the work finishes, even after a timeout).  If a handler fails before
    reaching the executor, dispatch still holds the slot and releases it —
    no path leaks capacity.
    """

    __slots__ = ("_admission", "held")

    def __init__(self, admission: AdmissionController | None = None):
        self._admission = admission
        self.held = admission is not None

    def take(self) -> AdmissionController | None:
        """Transfer ownership to the caller; returns the controller to release."""
        if not self.held:
            return None
        self.held = False
        return self._admission

    def release(self) -> None:
        controller = self.take()
        if controller is not None:
            controller.release()


@dataclass
class _Job:
    """One asynchronous batch job."""

    job_id: str
    state: str = "queued"  # queued -> running -> done | failed
    result: dict[str, object] | None = None
    error: dict[str, object] | None = None
    task: asyncio.Task | None = field(default=None, repr=False)

    @property
    def active(self) -> bool:
        return self.state in ("queued", "running")


@dataclass(frozen=True)
class _Route:
    method: str
    template: str
    name: str
    admission: bool
    kind: str  # "json" | "stream"
    pattern: re.Pattern = field(compare=False, hash=False)

    @staticmethod
    def compile(method: str, template: str, name: str, *, admission: bool, kind: str = "json") -> "_Route":
        regex = "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template) + "$"
        return _Route(method, template, name, admission, kind, re.compile(regex))


class ServeApp:
    """The asyncio serving tier over one :class:`~repro.api.Session`.

    Parameters
    ----------
    session:
        The session to serve.  The app owns it: :meth:`aclose` closes it.
    config:
        The :class:`~repro.serve.ServeConfig` limits (admission bound,
        request deadline, stream buffers, body cap, drain deadline,
        idempotency capacity).
    journal:
        An optional :class:`~repro.serve.JobJournal` making batch-job
        acknowledgements and applied ticks crash-safe.  Call
        :meth:`recover` (or enter the app as an async context manager)
        before serving so the previous process's promises are replayed.

    Notes
    -----
    ``before_execute`` is a deliberate fault-injection seam: when set, it
    is invoked on the session executor thread with the endpoint label
    *before* the session call.  The robustness suite uses it to hold the
    executor mid-request (timeouts, saturation) without monkey-patching
    engine internals; :func:`repro.serve.execute_fault_hook` schedules
    failures through it.
    """

    def __init__(
        self,
        session: Session,
        *,
        config: ServeConfig | None = None,
        journal: JobJournal | None = None,
    ):
        if not isinstance(session, Session):
            raise ServeError(
                f"expected a repro.api.Session, got {type(session).__name__}"
            )
        self._session = session
        self._config = config if config is not None else ServeConfig()
        if not isinstance(self._config, ServeConfig):
            raise ServeError(
                f"expected a ServeConfig, got {type(self._config).__name__}"
            )
        if journal is not None and not isinstance(journal, JobJournal):
            raise ServeError(
                f"expected a JobJournal, got {type(journal).__name__}"
            )
        self._admission = AdmissionController(self._config.max_in_flight)
        self._broker = DeltaBroker(self._config.stream_buffer)
        self._latency = LatencyRecorder(window=self._config.latency_window)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._jobs: dict[str, _Job] = {}
        self._journal = journal
        next_job = 1 if journal is None else journal.recovery.max_job_number + 1
        self._job_ids = itertools.count(next_job)
        self._next_seq = 0  # incremented only on the executor thread
        self._requests = 0
        self._errors = 0
        self._timeouts = 0
        self._severed = 0
        self._severed_ok = 0
        self._closed = False
        self._lifecycle = ServerLifecycle()
        self._idempotency = IdempotencyCache(self._config.idempotency_capacity)
        self._pending_keys: dict[str, str] = {}
        self._recovered = False
        #: Summary of the last :meth:`recover` replay (``None`` until one ran).
        self.last_recovery: dict[str, object] | None = None
        self._monitor_base = None  # lazily: session.monitor(())
        self.before_execute: Callable[[str], None] | None = None
        self._routes = (
            _Route.compile("GET", "/v1/health", "health", admission=False),
            _Route.compile("GET", "/v1/metrics", "metrics", admission=False),
            _Route.compile("POST", "/v1/query", "query", admission=True),
            _Route.compile("POST", "/v1/batch", "batch-submit", admission=False),
            _Route.compile("GET", "/v1/batch/{job}", "batch-poll", admission=False),
            _Route.compile("PATCH", "/v1/facilities", "patch", admission=True),
            _Route.compile("PATCH", "/v1/edges", "patch-edges", admission=True),
            _Route.compile("POST", "/v1/subscriptions", "subscribe", admission=True),
            _Route.compile(
                "DELETE", "/v1/subscriptions/{sid}", "unsubscribe", admission=False
            ),
            _Route.compile(
                "GET",
                "/v1/subscriptions/{sid}/stream",
                "stream",
                admission=False,
                kind="stream",
            ),
        )
        self._handlers = {
            "health": self._handle_health,
            "metrics": self._handle_metrics,
            "query": self._handle_query,
            "batch-submit": self._handle_batch_submit,
            "batch-poll": self._handle_batch_poll,
            "patch": self._handle_patch,
            "patch-edges": self._handle_patch_edges,
            "subscribe": self._handle_subscribe,
            "unsubscribe": self._handle_unsubscribe,
            "stream": self._handle_stream,
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def session(self) -> Session:
        return self._session

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    @property
    def broker(self) -> DeltaBroker:
        return self._broker

    @property
    def latency(self) -> LatencyRecorder:
        """Per-endpoint rolling latency percentiles (``/v1/metrics`` view)."""
        return self._latency

    @property
    def lifecycle(self) -> ServerLifecycle:
        """The server's lifecycle state machine."""
        return self._lifecycle

    @property
    def journal(self) -> JobJournal | None:
        """The batch-job journal (``None`` when durability is off)."""
        return self._journal

    @property
    def idempotency(self) -> IdempotencyCache:
        """The ``Idempotency-Key`` dedup cache."""
        return self._idempotency

    def note_severed(self, *, ok: bool = True) -> None:
        """Record a response that was computed but never delivered.

        Transports call this when the client vanished before the body was
        written; ``ok`` says whether the undelivered answer was a success
        (those are subtracted from the ``served`` metric — a severed ack
        was *not* served, even though the work happened)."""
        self._severed += 1
        if ok:
            self._severed_ok += 1

    def describe_surface(self) -> dict[str, object]:
        """The wire surface as data: routes, schemas, error envelope.

        Golden-pinned by ``tests/fixtures/serve_surface.json`` — a route or
        schema change must update the fixture in the same commit, visibly.
        """
        return {
            "routes": [
                {
                    "method": route.method,
                    "path": route.template,
                    "name": route.name,
                    "admission": route.admission,
                    "kind": route.kind,
                }
                for route in self._routes
            ],
            "error_codes": list(ERROR_CODES),
            "error_envelope": error_envelope("invalid-request", "<message>"),
            "schemas": SURFACE_SCHEMAS,
        }

    def metrics(self) -> dict[str, object]:
        """The ``/v1/metrics`` payload (also reachable without a transport)."""
        jobs = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for job in self._jobs.values():
            jobs[job.state] += 1
        return {
            "requests": self._requests,
            "errors": self._errors,
            "timeouts": self._timeouts,
            "severed": self._severed,
            "served": max(0, self._requests - self._errors - self._severed_ok),
            "admission": self._admission.snapshot(),
            "jobs": jobs,
            "streams": self._broker.snapshot(),
            "endpoints": self._latency.summary(),
            "session": self._session.latency.summary(),
            "lifecycle": self._lifecycle.snapshot(),
            "idempotency": self._idempotency.snapshot(),
            "journal": self._journal.snapshot() if self._journal is not None else None,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def aclose(self) -> None:
        """Deterministic shutdown: jobs, streams, executor, session (idempotent).

        This is the *hard* stop — in-flight jobs are cancelled, streams get
        a terminal ``closed`` event, and no clean-close journal record is
        written (so a restart re-executes whatever was still running).  A
        graceful shutdown goes through :meth:`drain` instead.
        """
        if self._closed:
            return
        self._closed = True
        self._lifecycle.mark_closed()
        for job in self._jobs.values():
            if job.task is not None and not job.task.done():
                job.task.cancel()
        self._broker.close_all()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, partial(self._executor.shutdown, wait=True))
        if self._journal is not None:
            self._journal.close()
        self._session.close()

    async def recover(self) -> dict[str, object] | None:
        """Replay the journal's promises, then mark the server serving.

        Idempotent; a no-op (beyond the serving transition) without a
        journal.  Three passes, in causal order:

        1. finished jobs are re-registered with their journaled result or
           error, so polls answer from the journal instead of recomputing;
        2. acknowledged ticks are re-applied to the fresh session *in
           order* (directly on the executor — no new ``seq`` is consumed)
           and their journaled responses re-seed the idempotency cache, so
           a client retrying a tick it never saw acknowledged gets the
           original answer instead of double-applying the update;
        3. acknowledged-but-unfinished jobs are re-executed.
        """
        if self._closed or self._journal is None or self._recovered:
            if not self._closed:
                self._lifecycle.mark_serving()
            return None
        self._recovered = True
        recovery = self._journal.recovery
        for recovered in recovery.jobs.values():
            job = _Job(job_id=recovered.job_id)
            if recovered.state == "done":
                job.state, job.result = "done", recovered.result
            elif recovered.state == "failed":
                job.state, job.error = "failed", recovered.error
            self._jobs[job.job_id] = job
        loop = asyncio.get_running_loop()
        for record in recovery.ticks:
            body = record.get("body") or {}
            tick = tick_from_payload(body.get("updates", []))

            def reapply(tick=tick):
                self._monitor_handle().tick(tick)
                self._session.invalidate_result_caches()

            await loop.run_in_executor(self._executor, reapply)
            key, payload = record.get("key"), record.get("payload")
            if key and isinstance(payload, dict):
                route_name = record.get("route") or "patch"
                self._idempotency.store(
                    key, _request_fingerprint(route_name, body), 200, payload
                )
        reexecuted = 0
        for recovered in recovery.unfinished_jobs:
            job = self._jobs[recovered.job_id]
            try:
                requests = [
                    request_from_payload(entry) for entry in recovered.requests
                ]
                policy = (
                    policy_from_payload(recovered.policy)
                    if recovered.policy is not None
                    else None
                )
            except Exception as error:  # noqa: BLE001 - a bad record fails one job
                job.state = "failed"
                job.error = error_envelope(
                    "invalid-request", f"unrecoverable journaled job: {error}"
                )["error"]
                self._journal.record_job_failed(job.job_id, job.error)
                continue
            job.state = "queued"
            job.task = asyncio.create_task(self._run_job(job, requests, policy))
            reexecuted += 1
        self._lifecycle.mark_serving()
        self.last_recovery = {
            "jobs": len(recovery.jobs),
            "reexecuted_jobs": reexecuted,
            "ticks_reapplied": len(recovery.ticks),
            "truncated_bytes": recovery.truncated_bytes,
            "clean_close": recovery.clean_close,
        }
        return self.last_recovery

    async def drain(self, *, deadline: float | None = None) -> DrainReport:
        """Graceful drain-then-close; returns what happened.

        New work-class requests are refused with a ``draining`` envelope
        (plus a ``Retry-After`` hint) the moment this is called, while
        in-flight requests and active batch jobs run to completion.  When
        everything finishes inside the deadline (``config.drain_deadline_seconds``
        unless overridden) the drain is *clean*: open SSE streams get a
        terminal ``server-closing`` event and the journal receives its
        clean-close record.  Past the deadline the remaining jobs are
        cancelled and the journal is left open-ended so the next process
        re-executes them.
        """
        if self._closed:
            return DrainReport(
                clean=True, waited_seconds=0.0, jobs_cancelled=0,
                streams_closed=0, journal_closed=False,
            )
        if deadline is None:
            deadline = self._config.drain_deadline_seconds
        self._lifecycle.begin_drain()
        loop = asyncio.get_running_loop()
        started = loop.time()
        forced = False
        while True:
            active_jobs = any(job.active for job in self._jobs.values())
            if self._admission.in_flight == 0 and not active_jobs:
                break
            if deadline is not None and loop.time() - started >= deadline:
                forced = True
                break
            await asyncio.sleep(0.005)
        cancelled = 0
        if forced:
            for job in self._jobs.values():
                if job.task is not None and not job.task.done():
                    job.task.cancel()
                    cancelled += 1
        streams_closed = self._broker.close_all("server-closing")
        journal_closed = False
        if self._journal is not None and not forced:
            self._journal.record_close()
            journal_closed = True
        waited = loop.time() - started
        await self.aclose()
        return DrainReport(
            clean=not forced,
            waited_seconds=waited,
            jobs_cancelled=cancelled,
            streams_closed=streams_closed,
            journal_closed=journal_closed,
        )

    async def __aenter__(self) -> "ServeApp":
        await self.recover()
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def dispatch(self, request: ServeRequest) -> ServeResponse | StreamResponse:
        """Route one request; always answers, never raises to the transport."""
        self._requests += 1
        if self._closed:
            return self._error(503, "closed", "the server is shutting down")
        if self._lifecycle.state == "starting":
            self._lifecycle.mark_serving()
        route, params, seen_path = self._match(request)
        if route is None:
            if seen_path:
                return self._error(
                    405, "method-not-allowed",
                    f"{request.method} is not supported on {request.path}",
                )
            return self._error(404, "not-found", f"no route matches {request.path}")
        if self._lifecycle.draining and route.name not in DRAIN_ALLOWED_ROUTES:
            return self._error(
                503, "draining",
                "the server is draining for shutdown; retry against another "
                "replica or after the restart",
                retry_after=self._config.retry_after_seconds,
            )
        body, body_error = self._decode_body(request)
        if body_error is not None:
            return body_error
        ctx = _RequestContext()
        key = request.header("idempotency-key")
        if key is not None and route.name in IDEMPOTENT_ROUTES:
            fingerprint = _request_fingerprint(route.name, body)
            entry = self._idempotency.lookup(key)
            if entry is not None:
                if entry.fingerprint != fingerprint:
                    self._idempotency.conflicts += 1
                    return self._error(
                        409, "conflict",
                        f"Idempotency-Key {key!r} was already used for a "
                        "different request; keys must be unique per logical "
                        "operation",
                    )
                return ServeResponse(entry.status, entry.payload)
            pending = self._pending_keys.get(key)
            if pending is not None:
                self._idempotency.conflicts += 1
                if pending != fingerprint:
                    return self._error(
                        409, "conflict",
                        f"Idempotency-Key {key!r} is in flight for a "
                        "different request; keys must be unique per logical "
                        "operation",
                    )
                return self._error(
                    409, "conflict",
                    f"a request with Idempotency-Key {key!r} is still in "
                    "flight; retry after it completes",
                    retry_after=self._config.retry_after_seconds,
                )
            self._pending_keys[key] = fingerprint
            ctx = _RequestContext(key=key, fingerprint=fingerprint)
        slot = _AdmissionSlot()
        if route.admission:
            if not self._admission.try_acquire():
                if ctx.key is not None:
                    self._pending_keys.pop(ctx.key, None)
                return self._error(
                    429, "saturated",
                    f"{self._admission.capacity} requests already in flight; "
                    "retry with backoff",
                )
            slot = _AdmissionSlot(self._admission)
        started = time.perf_counter()
        try:
            handler = self._handlers[route.name]
            response = await handler(params, body, slot, ctx)
            if isinstance(response, ServeResponse) and response.ok:
                if route.admission and self._lifecycle.state == "degraded":
                    self._lifecycle.recover()
                if ctx.key is not None:
                    self._idempotency.store(
                        ctx.key, ctx.fingerprint, response.status, response.payload
                    )
            return response
        except _HandlerError as refusal:
            self._errors += 1
            return refusal.response
        except asyncio.TimeoutError:
            self._timeouts += 1
            timeout = self._config.request_timeout_seconds
            return self._error(
                504, "timeout",
                f"request exceeded the {timeout:g}s deadline; the engine call "
                "was abandoned cleanly",
            )
        except PolicyError as error:
            return self._error(400, "invalid-policy", str(error))
        except FacilityError as error:
            return self._error(400, "invalid-update", str(error))
        except StorageError as error:
            # The dataset behind the session failed a read (torn pack,
            # checksum mismatch, lost mmap): transient from the client's
            # point of view, structural from the operator's — 503 plus a
            # degraded health state, never a generic 500.
            self._lifecycle.degrade(f"{type(error).__name__}: {error}")
            return self._error(
                503, "dataset-unavailable",
                f"the dataset backing this server failed a read: {error}",
                retry_after=self._config.retry_after_seconds,
            )
        except ReproError as error:
            return self._error(400, "invalid-request", str(error))
        except Exception as error:  # noqa: BLE001 - the envelope IS the contract
            return self._error(
                500, "internal", f"{type(error).__name__}: {error}"
            )
        finally:
            if ctx.key is not None:
                self._pending_keys.pop(ctx.key, None)
            slot.release()  # no-op when the executor callback owns it
            if route.kind == "json":
                self._latency.observe(route.name, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    async def _handle_health(self, params, body, slot, ctx) -> ServeResponse:
        state = self._lifecycle.state
        status = "ok" if state in ("starting", "serving") else state
        return ServeResponse(
            200, {"status": status, "state": state, "version": __version__}
        )

    async def _handle_metrics(self, params, body, slot, ctx) -> ServeResponse:
        return ServeResponse(200, self.metrics())

    async def _handle_query(self, params, body, slot, ctx) -> ServeResponse:
        payload = self._require_object(body)
        request = self._decode(
            "invalid-request", request_from_payload, self._require_key(payload, "request")
        )
        policy = self._decode_policy(payload)
        seq, response = await self._execute(
            "query", lambda: self._session.query(request, policy=policy), slot
        )
        return ServeResponse(200, {"seq": seq, **query_response_to_payload(response)})

    async def _handle_batch_submit(self, params, body, slot, ctx) -> ServeResponse:
        payload = self._require_object(body)
        raw_requests = self._require_key(payload, "requests")
        if not isinstance(raw_requests, list) or not raw_requests:
            raise _HandlerError(
                400, "invalid-request",
                "'requests' must be a non-empty list of query payloads",
            )
        requests = [
            self._decode("invalid-request", request_from_payload, entry)
            for entry in raw_requests
        ]
        policy = self._decode_policy(payload)
        active = sum(1 for job in self._jobs.values() if job.active)
        if active >= self._config.max_queued_jobs:
            raise _HandlerError(
                429, "saturated",
                f"{active} batch jobs already queued or running "
                f"(max_queued_jobs={self._config.max_queued_jobs}); poll and retry",
            )
        job = _Job(job_id=f"job-{next(self._job_ids)}")
        self._jobs[job.job_id] = job
        if self._journal is not None:
            # Journal the promise *before* acknowledging it: once the 202
            # leaves this process, a crash must not lose the job.
            self._journal.record_job_submitted(
                job.job_id, raw_requests, payload.get("policy")
            )
        job.task = asyncio.create_task(self._run_job(job, requests, policy))
        return ServeResponse(202, {"job": job.job_id, "state": job.state})

    async def _run_job(
        self,
        job: _Job,
        requests: list,
        policy: ExecutionPolicy | None,
    ) -> None:
        def work():
            job.state = "running"
            return self._session.run_batch(requests, policy=policy)

        try:
            seq, batch = await self._execute("batch", work, _AdmissionSlot())
            job.result = {"seq": seq, **batch_response_to_payload(batch)}
            job.state = "done"
            self._journal_job(job)
        except asyncio.CancelledError:
            # Shutdown/forced-drain cancellation: deliberately NOT journaled
            # as failed, so a restarted process re-executes the job.
            job.state = "failed"
            job.error = error_envelope("closed", "job cancelled at shutdown")["error"]
            raise
        except asyncio.TimeoutError:
            self._timeouts += 1
            job.state = "failed"
            job.error = error_envelope(
                "timeout", "batch exceeded the per-request deadline"
            )["error"]
            self._journal_job(job)
        except PolicyError as error:
            job.state = "failed"
            job.error = error_envelope("invalid-policy", str(error))["error"]
            self._journal_job(job)
        except StorageError as error:
            self._lifecycle.degrade(f"{type(error).__name__}: {error}")
            job.state = "failed"
            job.error = error_envelope(
                "dataset-unavailable",
                f"the dataset backing this server failed a read: {error}",
            )["error"]
            self._journal_job(job)
        except ReproError as error:
            job.state = "failed"
            job.error = error_envelope("invalid-request", str(error))["error"]
            self._journal_job(job)
        except Exception as error:  # noqa: BLE001 - jobs must never crash the loop
            job.state = "failed"
            job.error = error_envelope(
                "internal", f"{type(error).__name__}: {error}"
            )["error"]
            self._journal_job(job)

    def _journal_job(self, job: _Job) -> None:
        """Journal a job's terminal state (no-op without an open journal)."""
        if self._journal is None or self._journal.closed:
            return
        if job.state == "done":
            self._journal.record_job_done(job.job_id, job.result)
        elif job.state == "failed":
            self._journal.record_job_failed(job.job_id, job.error)

    async def _handle_batch_poll(self, params, body, slot, ctx) -> ServeResponse:
        job = self._jobs.get(params["job"])
        if job is None:
            raise _HandlerError(404, "not-found", f"unknown job {params['job']!r}")
        payload: dict[str, object] = {"job": job.job_id, "state": job.state}
        if job.result is not None:
            payload["result"] = job.result
        if job.error is not None:
            payload["error"] = job.error
        return ServeResponse(200, payload)

    async def _handle_patch(self, params, body, slot, ctx) -> ServeResponse:
        return await self._apply_tick("patch", body, slot, ctx)

    async def _handle_patch_edges(self, params, body, slot, ctx) -> ServeResponse:
        return await self._apply_tick("patch-edges", body, slot, ctx)

    async def _apply_tick(self, route: str, body, slot, ctx) -> ServeResponse:
        """The shared tick path behind both PATCH routes.

        ``PATCH /v1/facilities`` carries facility kinds only and
        ``PATCH /v1/edges`` edge-cost kinds only — the split keeps each
        route's name honest and lets a recovered journal re-seed the exact
        idempotency fingerprint a retrying client will present.
        """
        payload = self._require_object(body)
        updates = self._require_key(payload, "updates")
        if not isinstance(updates, list):
            raise _HandlerError(
                400, "invalid-update", "'updates' must be a list of update payloads"
            )
        tick = self._decode("invalid-update", tick_from_payload, updates)
        for position, update in enumerate(tick.updates):
            is_edge = isinstance(update, EdgeCostUpdate)
            if route == "patch" and is_edge:
                raise _HandlerError(
                    400, "invalid-update",
                    f"update {position}: edge-cost updates go through "
                    "PATCH /v1/edges",
                )
            if route == "patch-edges" and not is_edge:
                raise _HandlerError(
                    400, "invalid-update",
                    f"update {position}: facility updates go through "
                    "PATCH /v1/facilities",
                )

        def apply():
            handle = self._monitor_handle()
            response = handle.tick(tick)
            invalidated = self._session.invalidate_result_caches()
            return response, invalidated

        seq, (tick_response, invalidated) = await self._execute(route, apply, slot)
        payload_out = tick_response_to_payload(tick_response)
        answer = {"seq": seq, "invalidated_services": invalidated, **payload_out}
        if self._journal is not None and not self._journal.closed:
            # The tick is applied and about to be acknowledged: journal it
            # (with its idempotency key) so a restarted process re-applies
            # it exactly once and a retrying client replays this answer.
            self._journal.record_tick(ctx.key, payload, answer, route=route)
        self._broker.publish(payload_out["index"], payload_out["deltas"])
        return ServeResponse(200, answer)

    async def _handle_subscribe(self, params, body, slot, ctx) -> ServeResponse:
        payload = self._require_object(body)
        request = self._decode(
            "invalid-request", request_from_payload, self._require_key(payload, "request")
        )

        def subscribe():
            handle = self._session.monitor([request])
            sid = handle.subscription_ids[0]
            return sid, self._signature_payload(sid)

        seq, (sid, signature) = await self._execute("subscribe", subscribe, slot)
        return ServeResponse(
            201,
            {
                "seq": seq,
                "subscription": sid,
                "kind": signature["kind"],
                "size": signature["size"],
                "result": signature["facilities"],
            },
        )

    async def _handle_unsubscribe(self, params, body, slot, ctx) -> ServeResponse:
        sid = self._subscription_id(params)

        def drop():
            service = self._monitor_handle().service
            if sid not in service.subscription_ids:
                raise _HandlerError(404, "not-found", f"unknown subscription {sid}")
            service.unsubscribe(sid)

        await self._execute("unsubscribe", drop, slot)
        closed = self._broker.close_subscription(sid)
        return ServeResponse(
            200, {"subscription": sid, "unsubscribed": True, "streams_closed": closed}
        )

    async def _handle_stream(self, params, body, slot, ctx) -> StreamResponse:
        sid = self._subscription_id(params)

        def snapshot():
            service = self._monitor_handle().service
            if sid not in service.subscription_ids:
                raise _HandlerError(404, "not-found", f"unknown subscription {sid}")
            return self._signature_payload(sid)

        _seq, signature = await self._execute("stream", snapshot, slot)
        stream = self._broker.open(sid)
        stream.offer(StreamEvent("init", {"subscription": sid, **signature}))
        return StreamResponse(stream=stream, broker=self._broker)

    # ------------------------------------------------------------------ #
    # Execution internals
    # ------------------------------------------------------------------ #
    async def _execute(self, label: str, fn, slot: _AdmissionSlot):
        """Run ``fn`` on the session executor with seq stamping and deadline.

        Returns ``(seq, result)``.  The admission slot (when held) is
        released only when the underlying work *finishes* — a timed-out
        request therefore keeps its slot until the orphaned engine call
        completes, so saturation accounting never lies about a busy
        executor.
        """
        loop = asyncio.get_running_loop()
        done: asyncio.Future = loop.create_future()
        admission = slot.take()

        def work():
            if self.before_execute is not None:
                self.before_execute(label)
            seq = self._next_seq
            self._next_seq += 1
            return seq, fn()

        def finish(cf_future):
            if admission is not None:
                admission.release()
            if cf_future.cancelled():
                return
            if done.cancelled():
                cf_future.exception()  # retrieve, the client is long gone
                return
            error = cf_future.exception()
            if error is not None:
                done.set_exception(error)
            else:
                done.set_result(cf_future.result())

        def schedule_finish(f):
            try:
                loop.call_soon_threadsafe(finish, f)
            except RuntimeError:  # loop already closed at interpreter shutdown
                if admission is not None:
                    admission.release()

        cf_future = self._executor.submit(work)
        cf_future.add_done_callback(schedule_finish)
        timeout = self._config.request_timeout_seconds
        if timeout is None:
            return await done
        try:
            return await asyncio.wait_for(done, timeout)
        except asyncio.TimeoutError:
            cf_future.cancel()  # a queued (unstarted) orphan never runs at all
            raise

    def _monitor_handle(self):
        """The app's base monitor handle (created lazily, executor thread)."""
        if self._monitor_base is None:
            self._monitor_base = self._session.monitor(())
        return self._monitor_base

    def _signature_payload(self, sid: int) -> dict[str, object]:
        service = self._monitor_handle().service
        signature = service.result_signature(sid)
        kind = (
            "skyline"
            if isinstance(service.request_of(sid), SkylineRequest)
            else "topk"
        )
        facilities = [
            [fid, list(value) if isinstance(value, tuple) else value]
            for fid, value in sorted(signature.items())
        ]
        return {"kind": kind, "size": len(facilities), "facilities": facilities}

    # ------------------------------------------------------------------ #
    # Decoding helpers
    # ------------------------------------------------------------------ #
    def _match(self, request: ServeRequest):
        seen_path = False
        for route in self._routes:
            match = route.pattern.match(request.path)
            if match is None:
                continue
            seen_path = True
            if route.method == request.method.upper():
                return route, match.groupdict(), True
        return None, {}, seen_path

    def _decode_body(self, request: ServeRequest):
        body = request.body
        if body is None or body == b"" or body == "":
            return None, None
        if isinstance(body, str):
            body = body.encode("utf-8")
        if len(body) > self._config.max_body_bytes:
            return None, self._error(
                413, "payload-too-large",
                f"body of {len(body)} bytes exceeds the "
                f"{self._config.max_body_bytes}-byte cap",
            )
        try:
            return json.loads(body.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return None, self._error(
                400, "invalid-request", f"body is not valid JSON: {error}"
            )

    def _decode_policy(self, payload: dict) -> ExecutionPolicy | None:
        raw = payload.get("policy")
        if raw is None:
            return None
        return self._decode("invalid-policy", policy_from_payload, raw)

    @staticmethod
    def _decode(code: str, fn, *args):
        """Run a payload codec; shape errors become 400s, never tracebacks.

        The codecs raise :class:`~repro.errors.QueryError` for semantic
        problems (dispatch maps those), but a structurally absurd payload
        (``"edge": null``, a list where an object belongs) surfaces as
        ``TypeError``/``KeyError`` — equally the client's fault, equally 400.
        """
        try:
            return fn(*args)
        except ReproError:
            raise
        except (TypeError, ValueError, KeyError, AttributeError) as error:
            raise _HandlerError(
                400, code, f"malformed payload: {type(error).__name__}: {error}"
            ) from None

    @staticmethod
    def _require_object(body) -> dict:
        if not isinstance(body, dict):
            raise _HandlerError(
                400, "invalid-request",
                f"expected a JSON object body, got {type(body).__name__}",
            )
        return body

    @staticmethod
    def _require_key(payload: dict, key: str):
        try:
            return payload[key]
        except KeyError:
            raise _HandlerError(
                400, "invalid-request", f"body is missing the {key!r} key"
            ) from None

    @staticmethod
    def _subscription_id(params: dict) -> int:
        try:
            return int(params["sid"])
        except (TypeError, ValueError):
            raise _HandlerError(
                400, "invalid-request",
                f"subscription id must be an integer, got {params['sid']!r}",
            ) from None

    def _error(
        self, status: int, code: str, message: str, *, retry_after: float | None = None
    ) -> ServeResponse:
        """One counted error answer; every refusal path funnels through here."""
        self._errors += 1
        return ServeResponse(
            status, error_envelope(code, message, retry_after=retry_after)
        )
