"""The serving tier's lifecycle state machine and drain reporting.

A server that can only be *on* or *off* loses work at every restart.
:class:`ServerLifecycle` names the states in between and polices the legal
transitions::

    starting ──▶ serving ◀──▶ degraded
                    │             │
                    ▼             ▼
                 draining ──▶  closed

* ``starting`` — constructed, journal recovery may still be replaying;
  the first successful dispatch (or an explicit :meth:`mark_serving`)
  advances it.
* ``serving`` — the steady state.
* ``degraded`` — still answering, but a dependency is failing (e.g. the
  dataset pack returned a checksum error); ``/v1/health`` reports it and
  the next successful work-class request recovers back to ``serving``.
* ``draining`` — shutdown has begun: new work-class requests are refused
  with a ``draining`` envelope and a ``Retry-After`` hint while in-flight
  requests and queued batch jobs run to completion under a deadline.
* ``closed`` — terminal.

The machine lives on the event loop thread (like the admission
controller), so plain attributes are all the synchronisation it needs.
Illegal transitions raise :class:`~repro.errors.ServeError` — a lifecycle
bug should fail loudly in tests, never silently skip a state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["DrainReport", "ServerLifecycle", "STATES"]

#: Every lifecycle state, in canonical progression order.
STATES = ("starting", "serving", "degraded", "draining", "closed")

_TRANSITIONS: dict[str, frozenset[str]] = {
    "starting": frozenset({"serving", "draining", "closed"}),
    "serving": frozenset({"degraded", "draining", "closed"}),
    "degraded": frozenset({"serving", "draining", "closed"}),
    "draining": frozenset({"closed"}),
    "closed": frozenset(),
}


@dataclass(frozen=True)
class DrainReport:
    """What one :meth:`~repro.serve.ServeApp.drain` call accomplished.

    ``clean`` means every in-flight request and active batch job finished
    before the deadline; ``forced`` means the deadline expired and the
    remaining jobs were cancelled.  ``journal_closed`` records whether a
    clean-close record was written (only on a clean drain — a forced close
    leaves the journal open-ended so the next start re-executes the
    survivors).
    """

    clean: bool
    waited_seconds: float
    jobs_cancelled: int
    streams_closed: int
    journal_closed: bool

    @property
    def forced(self) -> bool:
        return not self.clean

    def to_payload(self) -> dict[str, object]:
        return {
            "clean": self.clean,
            "waited_seconds": round(self.waited_seconds, 6),
            "jobs_cancelled": self.jobs_cancelled,
            "streams_closed": self.streams_closed,
            "journal_closed": self.journal_closed,
        }


class ServerLifecycle:
    """The five-state lifecycle of one serving process.

    Tracks the current state, the reason for a degradation, and a
    transition count for the ``/v1/metrics`` payload.
    """

    def __init__(self) -> None:
        self._state = "starting"
        self._degraded_reason: str | None = None
        self._transitions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        return self._state

    @property
    def degraded_reason(self) -> str | None:
        """Why the server degraded (``None`` outside ``degraded``)."""
        return self._degraded_reason

    @property
    def accepting(self) -> bool:
        """Whether new work-class requests are admitted at all."""
        return self._state in ("starting", "serving", "degraded")

    @property
    def draining(self) -> bool:
        return self._state == "draining"

    @property
    def closed(self) -> bool:
        return self._state == "closed"

    def snapshot(self) -> dict[str, object]:
        """The lifecycle view the ``/v1/metrics`` endpoint reports."""
        return {
            "state": self._state,
            "degraded_reason": self._degraded_reason,
            "transitions": self._transitions,
        }

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def advance(self, state: str, *, reason: str | None = None) -> None:
        """Move to ``state``; an illegal transition raises :class:`ServeError`."""
        if state not in _TRANSITIONS:
            raise ServeError(f"unknown lifecycle state {state!r}; expected one of {STATES}")
        if state == self._state:
            return  # idempotent self-transition (e.g. repeated degrade)
        if state not in _TRANSITIONS[self._state]:
            raise ServeError(
                f"illegal lifecycle transition {self._state!r} -> {state!r}"
            )
        self._state = state
        self._degraded_reason = reason if state == "degraded" else None
        self._transitions += 1

    def mark_serving(self) -> None:
        """``starting``/``degraded`` -> ``serving`` (no-op when already serving)."""
        if self._state in ("starting", "degraded"):
            self.advance("serving")

    def degrade(self, reason: str) -> None:
        """``serving`` -> ``degraded`` with a reason (refreshes the reason
        when already degraded; ignored once draining or closed)."""
        if self._state == "degraded":
            self._degraded_reason = reason
            return
        if self._state == "starting":
            self.advance("serving")
        if self._state == "serving":
            self.advance("degraded", reason=reason)

    def recover(self) -> None:
        """``degraded`` -> ``serving`` (no-op otherwise)."""
        if self._state == "degraded":
            self.advance("serving")

    def begin_drain(self) -> None:
        """Enter ``draining`` from any pre-drain state (idempotent)."""
        if self._state in ("starting", "serving", "degraded"):
            self.advance("draining")

    def mark_closed(self) -> None:
        """Terminal transition (legal from every state, idempotent)."""
        if self._state != "closed":
            self._state = "closed"
            self._degraded_reason = None
            self._transitions += 1
