"""An optional ASGI 3 adapter over :class:`ServeApp` — zero dependencies.

The container this reproduction targets ships no web framework, so the
default transports are the pure-asyncio HTTP listener and the in-process
test client.  For deployments that *do* have an ASGI server (uvicorn,
hypercorn) or want to mount the tier inside a FastAPI/Starlette project,
:func:`create_asgi_app` wraps the app as a plain ASGI 3 callable: no
import of any framework is needed here, and any framework can mount a raw
ASGI callable.

The adapter is also exercised in-process by the test suite (an ASGI app
is just an async callable taking ``scope``/``receive``/``send``), so this
path is covered even though no ASGI server is installed in CI.
"""

from __future__ import annotations

import json

from repro.errors import ServeError
from repro.serve.app import ServeApp, ServeRequest, StreamResponse
from repro.serve.http import REASONS
from repro.serve.streaming import sse_encode

__all__ = ["create_asgi_app"]


def create_asgi_app(app: ServeApp):
    """Wrap ``app`` as an ASGI 3 callable (``scope, receive, send``)."""
    if not isinstance(app, ServeApp):
        raise ServeError(f"expected a ServeApp, got {type(app).__name__}")

    async def asgi(scope, receive, send):
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await app.aclose()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":
            raise ServeError(f"unsupported ASGI scope type {scope['type']!r}")
        body = b""
        while True:
            message = await receive()
            if message["type"] != "http.request":
                continue
            body += message.get("body", b"")
            if not message.get("more_body", False):
                break
            if len(body) > app.config.max_body_bytes:
                break  # the app answers 413; stop buffering
        request = ServeRequest(
            method=scope["method"], path=scope["path"], body=body or None
        )
        response = await app.dispatch(request)
        if isinstance(response, StreamResponse):
            await _send_stream(send, response)
        else:
            payload = json.dumps(response.payload, sort_keys=True).encode("utf-8")
            await send(
                {
                    "type": "http.response.start",
                    "status": response.status,
                    "headers": [
                        (b"content-type", b"application/json"),
                        (b"content-length", str(len(payload)).encode("latin-1")),
                    ],
                }
            )
            await send(
                {"type": "http.response.body", "body": payload, "more_body": False}
            )

    async def _send_stream(send, response: StreamResponse):
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": [
                    (b"content-type", b"text/event-stream"),
                    (b"cache-control", b"no-store"),
                ],
            }
        )
        stream = response.stream
        try:
            async for event in stream.events():
                await send(
                    {
                        "type": "http.response.body",
                        "body": sse_encode(event),
                        "more_body": True,
                    }
                )
        finally:
            stream.close()
            response.broker.discard(stream)
            await send({"type": "http.response.body", "body": b"", "more_body": False})

    asgi.reasons = REASONS  # handy for servers that want the phrase table
    return asgi
