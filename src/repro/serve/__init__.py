"""The asyncio serving tier — the front door over :class:`repro.api.Session`.

Layered as::

    transports    repro.serve.http  (pure-asyncio HTTP/1.1, SSE)
                  repro.serve.asgi  (optional ASGI 3 adapter)
                  repro.serve.testing  (in-process client, no sockets)
                        |
    application   repro.serve.app   (routes, envelopes, seq stamping,
                                     admission, deadlines, batch jobs)
                        |
    plumbing      repro.serve.limits     (ServeConfig, AdmissionController)
                  repro.serve.streaming  (DeltaBroker, SSE backpressure)
                  repro.serve.payloads   (response JSON codecs)
                        |
    engine        repro.api.Session  /  repro.monitor.MonitoringService

Every transport funnels into :meth:`ServeApp.dispatch`, and every session
call runs serialised on one executor thread with a ``seq`` stamp — the
property the async load-replay differential harness uses to prove the
tier returns **bit-identical** payloads to direct library calls under
concurrency.
"""

from repro.serve.app import (
    ERROR_CODES,
    ServeApp,
    ServeRequest,
    ServeResponse,
    StreamResponse,
    error_envelope,
)
from repro.serve.asgi import create_asgi_app
from repro.serve.http import HttpServer
from repro.serve.limits import AdmissionController, ServeConfig
from repro.serve.payloads import (
    batch_response_to_payload,
    cache_to_payload,
    io_to_payload,
    query_response_to_payload,
    result_to_payload,
    tick_response_to_payload,
)
from repro.serve.streaming import DeltaBroker, DeltaStream, StreamEvent, sse_encode
from repro.serve.testing import InProcessClient, collect_events

__all__ = [
    "AdmissionController",
    "DeltaBroker",
    "DeltaStream",
    "ERROR_CODES",
    "HttpServer",
    "InProcessClient",
    "ServeApp",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "StreamEvent",
    "StreamResponse",
    "batch_response_to_payload",
    "cache_to_payload",
    "collect_events",
    "create_asgi_app",
    "error_envelope",
    "io_to_payload",
    "query_response_to_payload",
    "result_to_payload",
    "sse_encode",
    "tick_response_to_payload",
]
