"""The asyncio serving tier — the front door over :class:`repro.api.Session`.

Layered as::

    transports    repro.serve.http  (pure-asyncio HTTP/1.1, SSE)
                  repro.serve.asgi  (optional ASGI 3 adapter)
                  repro.serve.testing  (in-process client, no sockets)
                        |
    application   repro.serve.app   (routes, envelopes, seq stamping,
                                     admission, deadlines, batch jobs)
                        |
    resilience    repro.serve.lifecycle  (drain state machine)
                  repro.serve.journal    (crash-safe batch-job journal)
                  repro.serve.retry      (client backoff + idempotency keys)
                  repro.serve.faults     (seeded fault-injection plane)
                        |
    plumbing      repro.serve.limits     (ServeConfig, AdmissionController,
                                          IdempotencyCache)
                  repro.serve.streaming  (DeltaBroker, SSE backpressure)
                  repro.serve.payloads   (response JSON codecs)
                        |
    engine        repro.api.Session  /  repro.monitor.MonitoringService

Every transport funnels into :meth:`ServeApp.dispatch`, and every session
call runs serialised on one executor thread with a ``seq`` stamp — the
property the async load-replay differential harness uses to prove the
tier returns **bit-identical** payloads to direct library calls under
concurrency.  The resilience layer extends that guarantee across
failures: a drain finishes acknowledged work before closing, the journal
makes batch acks and applied ticks survive a crash, idempotency keys make
retries safe, and the fault plane proves all of it under seeded chaos.
"""

from repro.serve.app import (
    ERROR_CODES,
    ServeApp,
    ServeRequest,
    ServeResponse,
    StreamResponse,
    error_envelope,
)
from repro.serve.asgi import create_asgi_app
from repro.serve.faults import (
    FaultPlane,
    InjectedFault,
    execute_fault_hook,
    faulty_disk,
    session_fault_hook,
    worker_fault_hook,
)
from repro.serve.http import HttpServer
from repro.serve.journal import JobJournal, JournalRecovery, RecoveredJob
from repro.serve.lifecycle import DrainReport, ServerLifecycle
from repro.serve.limits import AdmissionController, IdempotencyCache, ServeConfig
from repro.serve.payloads import (
    batch_response_to_payload,
    cache_to_payload,
    io_to_payload,
    query_response_to_payload,
    result_to_payload,
    tick_response_to_payload,
)
from repro.serve.retry import RetryPolicy, RetryingClient, send_with_retry
from repro.serve.streaming import DeltaBroker, DeltaStream, StreamEvent, sse_encode
from repro.serve.testing import InProcessClient, collect_events

__all__ = [
    "AdmissionController",
    "DeltaBroker",
    "DeltaStream",
    "DrainReport",
    "ERROR_CODES",
    "FaultPlane",
    "HttpServer",
    "IdempotencyCache",
    "InProcessClient",
    "InjectedFault",
    "JobJournal",
    "JournalRecovery",
    "RecoveredJob",
    "RetryPolicy",
    "RetryingClient",
    "ServeApp",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "ServerLifecycle",
    "StreamEvent",
    "StreamResponse",
    "batch_response_to_payload",
    "cache_to_payload",
    "collect_events",
    "create_asgi_app",
    "error_envelope",
    "execute_fault_hook",
    "faulty_disk",
    "io_to_payload",
    "query_response_to_payload",
    "result_to_payload",
    "send_with_retry",
    "session_fault_hook",
    "sse_encode",
    "tick_response_to_payload",
    "worker_fault_hook",
]
