"""JSON payload codecs of the serving tier's response bodies.

The request side already round-trips through plain JSON
(:func:`repro.service.requests.request_from_payload`,
:func:`repro.api.policy.policy_from_payload`,
:func:`repro.monitor.stream.tick_from_payload`); this module adds the
*response* direction: results, I/O counters, cache counters and the
session envelopes, all as flat JSON-ready dictionaries.

Fidelity matters more than prettiness here: the async load-replay
differential harness asserts that a payload served over the wire is
**bit-identical** to one built from a direct :class:`~repro.api.Session`
call, so floats are passed through untouched (Python's JSON round-trips
them exactly) and nothing is rounded.
"""

from __future__ import annotations

from repro.api.session import BatchResponse, Response, TickResponse
from repro.core.results import SkylineResult, TopKResult
from repro.errors import QueryError
from repro.monitor.service import tick_report_to_payload
from repro.network.accessor import AccessStatistics
from repro.service.cache import CacheStatistics

__all__ = [
    "batch_response_to_payload",
    "cache_to_payload",
    "io_to_payload",
    "query_response_to_payload",
    "result_to_payload",
    "tick_response_to_payload",
]


def io_to_payload(io: AccessStatistics) -> dict[str, int]:
    """The five accessor counters, JSON-ready."""
    return {
        "adjacency_requests": io.adjacency_requests,
        "facility_requests": io.facility_requests,
        "facility_tree_requests": io.facility_tree_requests,
        "page_reads": io.page_reads,
        "buffer_hits": io.buffer_hits,
    }


def cache_to_payload(cache: CacheStatistics) -> dict[str, int]:
    """The cross-query cache counters, JSON-ready."""
    return {name: value for name, value in sorted(vars(cache).items())}


def result_to_payload(result: SkylineResult | TopKResult) -> dict[str, object]:
    """One query answer as JSON: kind plus the facilities in report order.

    Skyline cost components the search never materialised are ``null``
    (the first-NN shortcut can report a facility before its full vector is
    known) — the client sees exactly what the engine knows.
    """
    if isinstance(result, SkylineResult):
        return {
            "type": "skyline",
            "facilities": [
                {
                    "facility": facility.facility_id,
                    "costs": list(facility.costs),
                    "pinned": facility.pinned,
                }
                for facility in result
            ],
        }
    if isinstance(result, TopKResult):
        return {
            "type": "topk",
            "ranking": [
                {"facility": item.facility_id, "score": item.score} for item in result
            ],
        }
    raise QueryError(
        f"expected a SkylineResult or TopKResult, got {type(result).__name__}"
    )


def query_response_to_payload(response: Response) -> dict[str, object]:
    """The body of one ``POST /v1/query`` answer (without the ``seq`` stamp)."""
    return {
        "kind": response.kind,
        "ticket": response.ticket,
        "served_from_memo": response.served_from_memo,
        "result": result_to_payload(response.result),
        "io": io_to_payload(response.io),
        "elapsed_seconds": response.elapsed_seconds,
    }


def batch_response_to_payload(batch: BatchResponse) -> dict[str, object]:
    """The terminal body of one batch job (without the ``seq`` stamp)."""
    payload: dict[str, object] = {
        "queries": len(batch),
        "responses": [query_response_to_payload(response) for response in batch],
        "io": io_to_payload(batch.io),
        "cache": cache_to_payload(batch.cache),
        "elapsed_seconds": batch.elapsed_seconds,
        "sharded": batch.sharded,
    }
    if batch.sharded:
        payload["shard_sizes"] = list(batch.shard_sizes)
    return payload


def tick_response_to_payload(response: TickResponse) -> dict[str, object]:
    """The body of one applied ``PATCH /v1/facilities`` tick.

    Reuses the golden-fixture tick-report payload (deltas + maintenance
    counters) and adds the serving-relevant I/O and latency fields.
    """
    payload = tick_report_to_payload(response)
    payload["io"] = io_to_payload(response.io)
    payload["elapsed_seconds"] = response.elapsed_seconds
    return payload
