"""A crash-safe, append-only journal for acknowledged serving-tier work.

The serving tier acknowledges two kinds of work before it is durable
anywhere: a ``POST /v1/batch`` answers ``202`` the moment the job is
queued, and a ``PATCH /v1/facilities`` tick mutates the live facility set
in a way a restarted process cannot reconstruct.  :class:`JobJournal`
makes both survive a crash: every acknowledgement appends one framed
record, and on reopen the journal replays what the previous process
promised — completed job results are served from the journal instead of
recomputed, acknowledged-but-unfinished jobs are re-executed, applied
ticks are re-applied (exactly once) and their responses re-seed the
idempotency cache so a retrying client never double-applies an update.

Record framing — one record per line::

    <length:08x><crc32:08x><canonical JSON>\\n

``length`` is the byte length of the JSON portion and ``crc32`` its
checksum, so a torn tail (the crash happened mid-append) is detected and
truncated on reopen, while corruption *before* the final record — which a
crash cannot produce on an append-only file — raises a typed
:class:`~repro.errors.JournalError` instead of being silently skipped.

Record types::

    {"type": "open",  "version": 1, "fingerprint": "<dataset sha>"}
    {"type": "job",        "job": "job-3", "requests": [...], "policy": ...}
    {"type": "job-done",   "job": "job-3", "result": {...}}
    {"type": "job-failed", "job": "job-3", "error": {...}}
    {"type": "tick", "key": "...", "body": {...}, "payload": {...},
     "route": "patch"|"patch-edges"}
    {"type": "close"}

The ``open`` header binds the journal to one dataset: reopening it
against a session whose :meth:`~repro.api.Session.dataset_fingerprint`
differs raises :class:`~repro.errors.JournalMismatchError` — replaying a
journal onto the wrong dataset would serve stale (wrong) results, which
is strictly worse than refusing to start.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field

from repro.errors import JournalError, JournalMismatchError

__all__ = ["JobJournal", "JournalRecovery", "RecoveredJob"]

_HEADER_LEN = 16  # 8 hex chars of length + 8 hex chars of crc32
FORMAT_VERSION = 1


@dataclass
class RecoveredJob:
    """One batch job reconstructed from the journal.

    ``state`` is ``"acknowledged"`` (submitted, never finished — must be
    re-executed), ``"done"`` (result replayable from the journal) or
    ``"failed"`` (error envelope replayable).
    """

    job_id: str
    requests: list
    policy: object | None
    state: str = "acknowledged"
    result: dict | None = None
    error: dict | None = None


@dataclass
class JournalRecovery:
    """Everything a reopened journal knows about the previous process."""

    jobs: dict[str, RecoveredJob] = field(default_factory=dict)
    ticks: list[dict] = field(default_factory=list)
    truncated_bytes: int = 0
    clean_close: bool = False
    max_job_number: int = 0
    records: int = 0

    @property
    def unfinished_jobs(self) -> list[RecoveredJob]:
        """Acknowledged jobs the previous process never finished."""
        return [job for job in self.jobs.values() if job.state == "acknowledged"]

    def to_payload(self) -> dict[str, object]:
        return {
            "records": self.records,
            "jobs": len(self.jobs),
            "unfinished_jobs": len(self.unfinished_jobs),
            "ticks": len(self.ticks),
            "truncated_bytes": self.truncated_bytes,
            "clean_close": self.clean_close,
        }


def _frame(record: dict) -> bytes:
    data = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = f"{len(data):08x}{zlib.crc32(data) & 0xFFFFFFFF:08x}".encode("ascii")
    return header + data + b"\n"


def _parse_line(line: bytes) -> dict | None:
    """One framed record, or ``None`` when the line fails validation."""
    if len(line) < _HEADER_LEN:
        return None
    try:
        length = int(line[:8], 16)
        crc = int(line[8:_HEADER_LEN], 16)
    except ValueError:
        return None
    data = line[_HEADER_LEN:]
    if len(data) != length or (zlib.crc32(data) & 0xFFFFFFFF) != crc:
        return None
    try:
        record = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


class JobJournal:
    """Append-only journal bound to one journal file and one dataset.

    Opening the journal *is* recovery: the constructor scans the file,
    truncates a torn tail, validates the dataset binding and exposes the
    reconstructed state as :attr:`recovery`.  The file is then held open
    in append mode until :meth:`close`.

    Parameters
    ----------
    path:
        The journal file; created (with its ``open`` header) when absent.
    fingerprint:
        The serving dataset's fingerprint
        (:meth:`repro.api.Session.dataset_fingerprint`).  A journal
        recorded under a different fingerprint refuses to open with
        :class:`~repro.errors.JournalMismatchError`.
    sync:
        Whether every append is ``fsync``\\ ed (default).  Tests that
        simulate crashes by reopening the file may disable it for speed.
    """

    def __init__(self, path: str, *, fingerprint: str, sync: bool = True):
        self._path = os.fspath(path)
        self._fingerprint = str(fingerprint)
        self._sync = bool(sync)
        self._appended = 0
        self._close_recorded = False
        self._closed = False
        self.recovery = self._load()
        fresh = self.recovery.records == 0
        self._file = open(self._path, "ab")
        if fresh:
            self._append({
                "type": "open",
                "version": FORMAT_VERSION,
                "fingerprint": self._fingerprint,
            })

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        return self._path

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def close_recorded(self) -> bool:
        """Whether this process wrote a clean-close record."""
        return self._close_recorded

    def snapshot(self) -> dict[str, object]:
        """The journal view the ``/v1/metrics`` endpoint reports."""
        return {
            "path": self._path,
            "recovered_records": self.recovery.records,
            "appended_records": self._appended,
            "clean_close_recorded": self._close_recorded,
        }

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def record_job_submitted(self, job_id: str, requests: list, policy: object | None) -> None:
        """One acknowledged ``POST /v1/batch`` (the 202 promise)."""
        self._append({"type": "job", "job": job_id, "requests": requests, "policy": policy})

    def record_job_done(self, job_id: str, result: dict) -> None:
        self._append({"type": "job-done", "job": job_id, "result": result})

    def record_job_failed(self, job_id: str, error: dict) -> None:
        self._append({"type": "job-failed", "job": job_id, "error": error})

    def record_tick(
        self, key: str | None, body: dict, payload: dict, *, route: str = "patch"
    ) -> None:
        """One applied update tick: the decoded request body plus the
        response payload (replayed into the idempotency cache on recovery).
        ``route`` names the serving route that acknowledged it (``"patch"``
        for facility ticks, ``"patch-edges"`` for edge-cost ticks) so the
        recovered idempotency fingerprint matches a client's retry."""
        self._append(
            {"type": "tick", "key": key, "body": body, "payload": payload, "route": route}
        )

    def record_close(self) -> None:
        """The clean-close marker a graceful drain writes last."""
        self._append({"type": "close"})
        self._close_recorded = True

    def close(self) -> None:
        """Release the file handle (no record written; idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._file.close()

    def _append(self, record: dict) -> None:
        if self._closed:
            raise JournalError(f"journal {self._path!r} is closed")
        try:
            frame = _frame(record)
        except (TypeError, ValueError) as error:
            raise JournalError(
                f"journal record is not JSON-serialisable: {error}"
            ) from None
        self._file.write(frame)
        self._file.flush()
        if self._sync:
            os.fsync(self._file.fileno())
        self._appended += 1

    # ------------------------------------------------------------------ #
    # Recovery scan
    # ------------------------------------------------------------------ #
    def _load(self) -> JournalRecovery:
        try:
            with open(self._path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return JournalRecovery()
        records, valid_length, truncated = self._scan(raw)
        recovery = self._replay(records)
        recovery.truncated_bytes = truncated
        if truncated:
            with open(self._path, "r+b") as handle:
                handle.truncate(valid_length)
        return recovery

    def _scan(self, raw: bytes) -> tuple[list[dict], int, int]:
        """All valid records, the valid prefix length, and the torn-tail size."""
        records: list[dict] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            line = raw[offset : newline if newline != -1 else len(raw)]
            record = _parse_line(line)
            if record is None:
                # A crash can only tear the *final* append on an append-only
                # file: tolerate (and truncate) an invalid region that runs
                # to EOF, refuse anything with further content behind it.
                if newline != -1 and newline + 1 < len(raw):
                    raise JournalError(
                        f"journal {self._path!r} is corrupt at byte {offset} "
                        "(invalid record before the final one); refusing to "
                        "recover from a journal with a damaged interior"
                    )
                return records, offset, len(raw) - offset
            records.append(record)
            if newline == -1:  # valid record but the trailing newline was torn
                return records[:-1], offset, len(raw) - offset
            offset = newline + 1
        return records, offset, 0

    def _replay(self, records: list[dict]) -> JournalRecovery:
        recovery = JournalRecovery(records=len(records))
        if not records:
            return recovery
        header = records[0]
        if header.get("type") != "open":
            raise JournalError(
                f"journal {self._path!r} does not start with an open header"
            )
        if header.get("version") != FORMAT_VERSION:
            raise JournalError(
                f"journal {self._path!r} was written by format version "
                f"{header.get('version')!r}; this build reads version {FORMAT_VERSION}"
            )
        recorded = header.get("fingerprint")
        if recorded != self._fingerprint:
            raise JournalMismatchError(
                f"journal {self._path!r} was recorded against dataset "
                f"fingerprint {recorded!r} but the session serves "
                f"{self._fingerprint!r}; replaying it would serve stale "
                "results — point the server at the original dataset or "
                "start a fresh journal"
            )
        for record in records[1:]:
            kind = record.get("type")
            if kind == "open":
                continue  # a reopened journal may carry repeated headers
            if kind == "close":
                recovery.clean_close = True
                continue
            recovery.clean_close = False
            if kind == "job":
                job_id = str(record.get("job"))
                # Duplicate submissions of one id (a re-executed recovery
                # that crashed again) collapse onto the newest record.
                recovery.jobs[job_id] = RecoveredJob(
                    job_id=job_id,
                    requests=list(record.get("requests") or []),
                    policy=record.get("policy"),
                )
                recovery.max_job_number = max(
                    recovery.max_job_number, _job_number(job_id)
                )
            elif kind == "job-done":
                job = recovery.jobs.get(str(record.get("job")))
                if job is not None:
                    job.state = "done"
                    job.result = record.get("result")
                    job.error = None
            elif kind == "job-failed":
                job = recovery.jobs.get(str(record.get("job")))
                if job is not None:
                    job.state = "failed"
                    job.error = record.get("error")
                    job.result = None
            elif kind == "tick":
                recovery.ticks.append(
                    {
                        "key": record.get("key"),
                        "body": record.get("body"),
                        "payload": record.get("payload"),
                        # Journals from before the edges route carry no
                        # route field; those ticks were all facility ticks.
                        "route": record.get("route") or "patch",
                    }
                )
            else:
                raise JournalError(
                    f"journal {self._path!r} holds an unknown record type {kind!r}"
                )
        return recovery


def _job_number(job_id: str) -> int:
    """The numeric suffix of ``job-<n>`` ids (0 for foreign id shapes)."""
    _prefix, _sep, suffix = job_id.rpartition("-")
    try:
        return int(suffix)
    except ValueError:
        return 0
