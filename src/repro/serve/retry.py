"""Client-side retry with capped exponential backoff and full jitter.

The serving tier refuses loudly — ``429 saturated``, ``503 draining``,
``503 dataset-unavailable``, ``504 timeout``, ``409 conflict`` — because
every one of those refusals is *transient* by design: capacity frees up,
a drain finishes on another replica, an in-flight duplicate completes.
:class:`RetryPolicy` is the sanctioned way to ride them out:

* **capped exponential backoff with full jitter** — attempt ``n`` sleeps
  ``uniform(0, min(max_delay, base * 2**n))``, the schedule that avoids
  the synchronized thundering herd a fixed backoff recreates;
* **Retry-After as a floor** — when the refusal carries a server hint
  (the ``retry_after`` field of the error envelope), the client never
  retries sooner than the server asked;
* **budget-bounded** — a wall-clock budget caps the total time spent
  retrying, so a dead server fails the call instead of hanging it.

Retrying a mutation is only safe when the server deduplicates it, which
is why :class:`RetryingClient` stamps every POST/PATCH with an
``Idempotency-Key`` header: a retried tick whose first attempt actually
applied (the ack was severed in flight) is answered from the server's
idempotency cache instead of being applied twice.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from dataclasses import dataclass
from typing import Awaitable, Callable

from repro.errors import RetryBudgetExceededError, ServeError

__all__ = ["RetryPolicy", "RetryingClient", "send_with_retry"]

#: Transport-level failures that mean "the answer never arrived" — safe to
#: retry when the request is idempotent or carries an Idempotency-Key.
_CONNECTION_ERRORS = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
    asyncio.IncompleteReadError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative retry behaviour for one client.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (so ``1`` disables retrying).
    base_delay_seconds / max_delay_seconds:
        The exponential schedule: attempt ``n`` (0-based) backs off by a
        uniform draw from ``[0, min(max_delay, base * 2**n)]``.
    budget_seconds:
        Wall-clock cap across all attempts and sleeps (``None`` = no cap).
    retryable_statuses:
        HTTP statuses worth retrying.  ``409`` (an in-flight duplicate of
        our own idempotent request) is included by default because the
        original attempt completing is exactly what a retry waits for.
    fatal_codes:
        Error-envelope codes that are *never* retried regardless of
        status — ``closed`` means the process is gone for good.
    """

    max_attempts: int = 5
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    budget_seconds: float | None = 30.0
    retryable_statuses: tuple[int, ...] = (409, 429, 503, 504)
    fatal_codes: tuple[str, ...] = ("closed",)

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or isinstance(self.max_attempts, bool) or self.max_attempts < 1:
            raise ServeError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        for name in ("base_delay_seconds", "max_delay_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ServeError(f"{name} must be a non-negative number, got {value!r}")
        if self.budget_seconds is not None and not self.budget_seconds > 0:
            raise ServeError(
                f"budget_seconds must be positive or None, got {self.budget_seconds!r}"
            )

    def delay_for(
        self,
        attempt: int,
        *,
        rng: random.Random,
        retry_after: float | None = None,
    ) -> float:
        """The sleep before retry number ``attempt`` (0-based), jittered."""
        cap = min(self.max_delay_seconds, self.base_delay_seconds * (2 ** attempt))
        delay = rng.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay

    def is_retryable(self, status: int, code: str | None) -> bool:
        if code is not None and code in self.fatal_codes:
            return False
        return status in self.retryable_statuses


def _classify(response) -> tuple[bool, str | None, float | None]:
    """``(is_json_error, code, retry_after)`` of one dispatch answer."""
    payload = getattr(response, "payload", None)
    if not isinstance(payload, dict):
        return False, None, None
    error = payload.get("error")
    if not isinstance(error, dict):
        return False, None, None
    retry_after = error.get("retry_after")
    return True, error.get("code"), (
        float(retry_after) if isinstance(retry_after, (int, float)) else None
    )


async def send_with_retry(
    send: Callable[[], Awaitable],
    *,
    policy: RetryPolicy | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], Awaitable] = asyncio.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[int, int | None, float], None] | None = None,
):
    """Run ``send()`` under ``policy``; returns the first conclusive answer.

    Conclusive means: any non-error answer, any error the policy does not
    retry, or a stream.  Severed connections (``ConnectionResetError`` and
    friends raised by ``send``) count as retryable attempts.  When the
    attempt or wall-clock budget runs out mid-retry, raises
    :class:`~repro.errors.RetryBudgetExceededError` carrying the last
    observed status.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else random.Random()
    start = clock()
    last_status: int | None = None
    last_error: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            response = await send()
        except _CONNECTION_ERRORS as error:
            last_status, last_error = None, error
            retry_after: float | None = None
        else:
            status = getattr(response, "status", 200)
            is_error, code, retry_after = _classify(response)
            if not is_error or not policy.is_retryable(status, code):
                return response
            last_status, last_error = status, None
        if attempt + 1 >= policy.max_attempts:
            break
        delay = policy.delay_for(attempt, rng=rng, retry_after=retry_after)
        if (
            policy.budget_seconds is not None
            and (clock() - start) + delay > policy.budget_seconds
        ):
            break
        if on_retry is not None:
            on_retry(attempt, last_status, delay)
        await sleep(delay)
    raise RetryBudgetExceededError(
        f"request still failing after {attempt + 1} attempts"
        + (f" (last status {last_status})" if last_status is not None else " (connection severed)"),
        status=last_status,
        attempts=attempt + 1,
    ) from last_error


class RetryingClient:
    """A retrying, idempotency-keyed wrapper over any serve client.

    ``client`` is anything with the :class:`~repro.serve.InProcessClient`
    ``request(method, path, payload, headers=...)`` signature.  Every
    POST/PATCH is stamped with a generated ``Idempotency-Key`` (stable
    across that call's retries), so retried mutations deduplicate
    server-side; GET/DELETE retries are naturally safe.

    The ``seed`` fixes the jitter schedule — chaos tests stay reproducible.
    """

    def __init__(
        self,
        client,
        *,
        policy: RetryPolicy | None = None,
        seed: int | None = None,
        key_prefix: str = "retry",
    ):
        self._client = client
        self._policy = policy if policy is not None else RetryPolicy()
        self._rng = random.Random(seed)
        self._key_prefix = key_prefix
        self._key_counter = itertools.count(1)
        self.attempts = 0
        self.retries = 0

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    def _next_key(self) -> str:
        return f"{self._key_prefix}-{next(self._key_counter)}"

    async def request(
        self,
        method: str,
        path: str,
        payload: object | None = None,
        *,
        idempotency_key: str | None = None,
        headers: dict | None = None,
    ):
        method = method.upper()
        merged = dict(headers or {})
        if method in ("POST", "PATCH") and "idempotency-key" not in merged:
            merged["idempotency-key"] = (
                idempotency_key if idempotency_key is not None else self._next_key()
            )
        self.attempts += 1

        async def send():
            return await self._client.request(method, path, payload, headers=merged)

        def note_retry(_attempt: int, _status: int | None, _delay: float) -> None:
            self.attempts += 1
            self.retries += 1

        return await send_with_retry(
            send, policy=self._policy, rng=self._rng, on_retry=note_retry
        )

    async def get(self, path: str):
        return await self.request("GET", path)

    async def post(self, path: str, payload: object, *, idempotency_key: str | None = None):
        return await self.request("POST", path, payload, idempotency_key=idempotency_key)

    async def patch(self, path: str, payload: object, *, idempotency_key: str | None = None):
        return await self.request("PATCH", path, payload, idempotency_key=idempotency_key)

    async def delete(self, path: str):
        return await self.request("DELETE", path)
