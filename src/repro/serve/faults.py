"""A seeded, schedulable fault-injection plane for the serving stack.

The robustness suite used to poke failures in ad hoc — a
``before_execute`` callback here, a monkey-patched method there.
:class:`FaultPlane` centralises the practice: one seeded object holds a
*schedule* (which invocation of which injection point fails), the stack
exposes named injection points, and adapters in this module wire the
plane into each layer.  Because the schedule is data and the randomness
is seeded, an entire chaos run — disk faults, worker kills, severed
connections, a mid-replay restart — replays bit-identically from one
integer seed.

Injection points (the convention, not a closed set)::

    disk.read           SimulatedDisk / FileDisk page reads -> StorageError
    session.<verb>      Session verb entry (query / batch / monitor)
    execute.<label>     ServeApp executor work (the before_execute seam)
    connection.send     transport response write -> severed connection
    worker.kill         sharded fork worker (by shard *index*) -> os._exit
    worker.hang         sharded fork worker (by shard *index*) -> sleep

``schedule(point, at=...)`` fires on exact invocation indices (0-based,
counted per point); ``schedule(point, probability=...)`` draws from the
plane's seeded RNG.  ``worker.*`` points are checked by shard index, not
invocation count, because fork children each inherit a copy-on-write
plane whose counters do not propagate back.
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable

from repro.errors import ServeError, StorageError

__all__ = [
    "FaultPlane",
    "InjectedFault",
    "execute_fault_hook",
    "faulty_disk",
    "session_fault_hook",
    "worker_fault_hook",
]


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never raised by real code paths).

    Deliberately *not* a :class:`~repro.errors.ReproError`: an injected
    crash must surface exactly like an unforeseen one (a 500 ``internal``
    envelope at the serving tier), otherwise the chaos tests would be
    exercising a gentler failure mode than production would see.
    """


class _Schedule:
    __slots__ = ("at", "probability", "remaining")

    def __init__(self, at: frozenset[int], probability: float | None, times: int | None):
        self.at = at
        self.probability = probability
        self.remaining = times


class FaultPlane:
    """One seeded fault schedule shared by every injection adapter.

    Parameters
    ----------
    seed:
        Fixes the RNG used by probabilistic schedules — the whole chaos
        run replays from this one integer.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._schedules: dict[str, _Schedule] = {}
        self._invocations: dict[str, int] = {}
        self.fired: dict[str, int] = {}

    def schedule(
        self,
        point: str,
        *,
        at: int | tuple | list | set | frozenset | None = None,
        probability: float | None = None,
        times: int | None = None,
    ) -> "FaultPlane":
        """Arm one injection point; returns ``self`` for chaining.

        ``at`` fires on those exact 0-based invocation indices (or shard
        indices for ``worker.*`` points); ``probability`` fires on a
        seeded coin flip per invocation, at most ``times`` times in total.
        """
        if (at is None) == (probability is None):
            raise ServeError("schedule one of at=... or probability=..., exactly")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ServeError(f"probability must be in [0, 1], got {probability!r}")
        indices: frozenset[int]
        if at is None:
            indices = frozenset()
        elif isinstance(at, int) and not isinstance(at, bool):
            indices = frozenset({at})
        else:
            indices = frozenset(int(index) for index in at)
        self._schedules[point] = _Schedule(indices, probability, times)
        return self

    def should_fire(self, point: str, *, index: int | None = None) -> bool:
        """Whether this invocation of ``point`` fails.

        Without ``index`` the plane counts invocations per point; with it
        (the fork-worker case) the explicit index is matched statelessly.
        """
        schedule = self._schedules.get(point)
        if index is None:
            index = self._invocations.get(point, 0)
            self._invocations[point] = index + 1
        if schedule is None:
            return False
        if schedule.probability is not None:
            if schedule.remaining is not None and schedule.remaining <= 0:
                return False
            fire = self._rng.random() < schedule.probability
        else:
            fire = index in schedule.at
        if fire:
            if schedule.remaining is not None:
                schedule.remaining -= 1
            self.fired[point] = self.fired.get(point, 0) + 1
        return fire

    def invocations(self, point: str) -> int:
        return self._invocations.get(point, 0)

    def snapshot(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "fired": dict(self.fired),
            "invocations": dict(self._invocations),
        }


# ---------------------------------------------------------------------- #
# Layer adapters
# ---------------------------------------------------------------------- #
class _FaultyDisk:
    """A delegating disk proxy whose ``read`` can fail on schedule.

    Wraps :class:`~repro.storage.SimulatedDisk` or
    :class:`~repro.storage.persist.FileDisk` — anything with a
    ``read(page_id)`` method — and raises :class:`StorageError` when the
    plane fires, which the serving tier surfaces as a 503
    ``dataset-unavailable`` envelope plus a ``degraded`` health state.
    """

    def __init__(self, disk, plane: FaultPlane, point: str):
        self._disk = disk
        self._plane = plane
        self._point = point

    def read(self, *args, **kwargs):
        if self._plane.should_fire(self._point):
            raise StorageError(
                f"injected disk fault at {self._point} "
                f"invocation {self._plane.invocations(self._point) - 1}"
            )
        return self._disk.read(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._disk, name)


def faulty_disk(disk, plane: FaultPlane, *, point: str = "disk.read"):
    """Wrap a disk so scheduled ``read`` calls raise :class:`StorageError`."""
    return _FaultyDisk(disk, plane, point)


def session_fault_hook(plane: FaultPlane, *, prefix: str = "session") -> Callable[[str], None]:
    """A :attr:`repro.api.Session.fault_hook` failing scheduled verb entries.

    Checks the verb-specific point (``session.query``) first, then the
    generic ``session`` point, so a schedule can target one verb or all.
    """

    def hook(verb: str) -> None:
        if plane.should_fire(f"{prefix}.{verb}") or plane.should_fire(prefix):
            raise InjectedFault(f"injected session fault at {prefix}.{verb}")

    return hook


def execute_fault_hook(plane: FaultPlane, *, prefix: str = "execute") -> Callable[[str], None]:
    """A :attr:`repro.serve.ServeApp.before_execute` seam on the plane."""

    def hook(label: str) -> None:
        if plane.should_fire(f"{prefix}.{label}") or plane.should_fire(prefix):
            raise InjectedFault(f"injected executor fault at {prefix}.{label}")

    return hook


def worker_fault_hook(
    plane: FaultPlane,
    *,
    kill_point: str = "worker.kill",
    hang_point: str = "worker.hang",
    hang_seconds: float = 30.0,
    exit_code: int = 17,
) -> Callable[[int], None]:
    """A :func:`repro.parallel.service.set_worker_fault_hook` hook.

    Runs inside forked shard workers with the shard *index*; a scheduled
    kill exits the child hard (``os._exit`` — no cleanup, exactly like an
    OOM kill), a scheduled hang sleeps past any reasonable deadline.  The
    parent detects the broken pool and re-runs the shard on a survivor.
    """

    def hook(shard_index: int) -> None:
        if plane.should_fire(kill_point, index=shard_index):
            os._exit(exit_code)
        if plane.should_fire(hang_point, index=shard_index):
            time.sleep(hang_seconds)

    return hook
