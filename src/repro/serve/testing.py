"""The in-process transport: drive a :class:`ServeApp` without sockets.

:class:`InProcessClient` speaks the exact transport interface
(:class:`~repro.serve.ServeRequest` in, :class:`~repro.serve.ServeResponse`
or :class:`~repro.serve.StreamResponse` out) that the HTTP listener
speaks, minus the byte framing.  The async load-replay differential
harness runs whole concurrent workloads through it: real event-loop
interleaving, real admission control, real executor serialisation — and
bit-comparable JSON payloads at the end, with no port allocation or
socket flakiness in CI.
"""

from __future__ import annotations

import json

from repro.errors import ServeError
from repro.serve.app import ServeApp, ServeRequest, ServeResponse, StreamResponse
from repro.serve.streaming import StreamEvent

__all__ = ["InProcessClient", "collect_events"]


class InProcessClient:
    """A tiny async client bound to one :class:`ServeApp`.

    ``fault_plane`` (a :class:`~repro.serve.FaultPlane`) makes the client
    a chaos transport: a scheduled ``connection.send`` raises
    :class:`ConnectionResetError` *after* the dispatch completed — the
    server did the work and the acknowledgement was lost in flight, which
    is exactly the case idempotency keys exist for.
    """

    def __init__(self, app: ServeApp, *, fault_plane=None):
        if not isinstance(app, ServeApp):
            raise ServeError(f"expected a ServeApp, got {type(app).__name__}")
        self._app = app
        self.fault_plane = fault_plane

    @property
    def app(self) -> ServeApp:
        return self._app

    async def request(
        self,
        method: str,
        path: str,
        payload: object | None = None,
        *,
        raw_body: bytes | str | None = None,
        headers: dict | None = None,
    ) -> ServeResponse | StreamResponse:
        """One request; ``payload`` is JSON-encoded, ``raw_body`` wins raw."""
        if raw_body is not None:
            body: bytes | str | None = raw_body
        elif payload is not None:
            body = json.dumps(payload).encode("utf-8")
        else:
            body = None
        response = await self._app.dispatch(ServeRequest(method, path, body, headers))
        if (
            self.fault_plane is not None
            and not isinstance(response, StreamResponse)
            and self.fault_plane.should_fire("connection.send")
        ):
            self._app.note_severed(ok=response.ok)
            raise ConnectionResetError(
                "injected connection sever: the answer was computed but never "
                "delivered"
            )
        return response

    async def get(self, path: str) -> ServeResponse | StreamResponse:
        return await self.request("GET", path)

    async def post(
        self, path: str, payload: object, *, headers: dict | None = None
    ) -> ServeResponse | StreamResponse:
        return await self.request("POST", path, payload, headers=headers)

    async def patch(
        self, path: str, payload: object, *, headers: dict | None = None
    ) -> ServeResponse | StreamResponse:
        return await self.request("PATCH", path, payload, headers=headers)

    async def delete(self, path: str) -> ServeResponse | StreamResponse:
        return await self.request("DELETE", path)

    async def stream(self, subscription_id: int) -> StreamResponse:
        """Open one SSE delta stream (raises on an error answer)."""
        response = await self.get(f"/v1/subscriptions/{subscription_id}/stream")
        if not isinstance(response, StreamResponse):
            raise ServeError(
                f"expected a StreamResponse, got status {response.status}: "
                f"{response.payload}"
            )
        return response


async def collect_events(
    response: StreamResponse, *, limit: int | None = None
) -> list[StreamEvent]:
    """Drain a stream into a list (up to ``limit`` events), then detach it.

    With ``limit`` the stream is closed after the limit is hit — the
    terminal event, if one is already pending, is *not* awaited, so tests
    never hang on a stream that stays open.
    """
    events: list[StreamEvent] = []
    stream = response.stream
    async for event in stream.events():
        events.append(event)
        if limit is not None and len(events) >= limit:
            break
    stream.close()
    response.broker.discard(stream)
    return events
