"""Per-subscription delta streaming with slow-consumer backpressure.

Every applied ``PATCH /v1/facilities`` tick emits one
:class:`~repro.monitor.DeltaReport` per subscription; subscribers follow
them live over Server-Sent Events.  The broker fans each tick out to the
open streams **without ever blocking the tick path**: events are enqueued
with ``put_nowait`` into one bounded queue per stream, and a consumer
whose queue is full is marked *lagged* — it drains what it already
buffered, receives one terminal ``lagged`` event and is disconnected.
Reconnecting (and re-reading the subscription's current state) is the
client's recovery path; silently dropping intermediate deltas is not
offered, because a delta stream with holes is worse than a closed one.

The broker lives on the event loop thread; only ``publish``/``open``/
``close`` touch its state, so no locks are needed.
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import AsyncIterator

from repro.errors import ServeError

__all__ = ["DeltaBroker", "DeltaStream", "StreamEvent", "sse_encode"]


class StreamEvent:
    """One server-sent event: a name plus a JSON-serialisable payload."""

    __slots__ = ("event", "data")

    def __init__(self, event: str, data: object):
        self.event = event
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamEvent({self.event!r}, {self.data!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StreamEvent)
            and other.event == self.event
            and other.data == self.data
        )


def sse_encode(event: StreamEvent) -> bytes:
    """One event in ``text/event-stream`` wire format (sorted keys, one line)."""
    data = json.dumps(event.data, sort_keys=True, separators=(",", ":"))
    return f"event: {event.event}\ndata: {data}\n\n".encode("utf-8")


class DeltaStream:
    """One subscriber's bounded view of a subscription's delta feed.

    ``events()`` yields :class:`StreamEvent` objects until the stream is
    closed; a terminal event (``lagged`` / ``closed`` / ``unsubscribed``)
    is always delivered last, *outside* the bounded queue, so it cannot
    itself be dropped by backpressure.
    """

    def __init__(self, subscription_id: int, buffer: int):
        self.subscription_id = subscription_id
        self._queue: asyncio.Queue[StreamEvent] = asyncio.Queue(maxsize=buffer)
        self._closed = asyncio.Event()
        self._terminal: StreamEvent | None = None
        self.delivered = 0

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def lagged(self) -> bool:
        return self._terminal is not None and self._terminal.event == "lagged"

    @property
    def buffered(self) -> int:
        return self._queue.qsize()

    def offer(self, event: StreamEvent) -> bool:
        """Enqueue without blocking; a full queue lags the stream out."""
        if self.closed:
            return False
        try:
            self._queue.put_nowait(event)
            return True
        except asyncio.QueueFull:
            self.close(
                StreamEvent(
                    "lagged",
                    {
                        "subscription": self.subscription_id,
                        "buffered": self._queue.qsize(),
                        "message": "consumer fell behind; resubscribe to resync",
                    },
                )
            )
            return False

    def close(self, terminal: StreamEvent | None = None) -> None:
        """Close the stream (idempotent); ``terminal`` is delivered last."""
        if self.closed:
            return
        self._terminal = terminal
        self._closed.set()

    async def events(self) -> AsyncIterator[StreamEvent]:
        """Buffered events in order, then the terminal event, then stop."""
        closed_wait: asyncio.Task | None = None
        try:
            while True:
                if not self._queue.empty():
                    event = self._queue.get_nowait()
                elif self.closed:
                    break
                else:
                    getter = asyncio.ensure_future(self._queue.get())
                    closed_wait = asyncio.ensure_future(self._closed.wait())
                    done, _pending = await asyncio.wait(
                        (getter, closed_wait), return_when=asyncio.FIRST_COMPLETED
                    )
                    closed_wait.cancel()
                    if getter in done:
                        event = getter.result()
                    else:
                        getter.cancel()
                        continue  # drain whatever arrived before the close
                self.delivered += 1
                yield event
        finally:
            if closed_wait is not None:
                closed_wait.cancel()
        if self._terminal is not None:
            self.delivered += 1
            yield self._terminal


class DeltaBroker:
    """Fans applied ticks out to every open per-subscription stream."""

    def __init__(self, buffer: int):
        if not isinstance(buffer, int) or isinstance(buffer, bool) or buffer < 1:
            raise ServeError(f"stream buffer must be a positive integer, got {buffer!r}")
        self._buffer = buffer
        self._streams: dict[int, list[DeltaStream]] = {}
        self.opened = 0
        self.lagged = 0
        self.published = 0

    @property
    def open_streams(self) -> int:
        return sum(len(streams) for streams in self._streams.values())

    def open(self, subscription_id: int) -> DeltaStream:
        stream = DeltaStream(subscription_id, self._buffer)
        self._streams.setdefault(subscription_id, []).append(stream)
        self.opened += 1
        return stream

    def publish(self, tick_index: int, deltas: list[dict[str, object]]) -> int:
        """Offer one applied tick's deltas to the matching streams.

        ``deltas`` are the JSON delta payloads of the tick (every
        subscription, changed or not — a subscriber sees every tick, so
        silence is distinguishable from disconnection).  Returns how many
        events were delivered into queues; lagged streams are closed as a
        side effect and counted.
        """
        delivered = 0
        for delta in deltas:
            subscription_id = delta["subscription"]
            streams = self._streams.get(subscription_id)
            if not streams:
                continue
            event = StreamEvent("delta", {"tick": tick_index, **delta})
            for stream in list(streams):
                if stream.offer(event):
                    delivered += 1
                elif stream.lagged:
                    self.lagged += 1
            self._prune(subscription_id)
        self.published += 1
        return delivered

    def close_subscription(self, subscription_id: int) -> int:
        """Close every stream of one subscription (on DELETE), terminally."""
        streams = self._streams.pop(subscription_id, [])
        for stream in streams:
            stream.close(
                StreamEvent("unsubscribed", {"subscription": subscription_id})
            )
        return len(streams)

    def close_all(self, event: str = "closed") -> int:
        """Close every stream terminally (server shutdown).

        ``event`` names the terminal event: ``"closed"`` for a hard stop,
        ``"server-closing"`` when a graceful drain announces the shutdown
        so consumers reconnect elsewhere instead of retrying here.
        """
        closed = 0
        for subscription_id in list(self._streams):
            streams = self._streams.pop(subscription_id)
            for stream in streams:
                stream.close(StreamEvent(event, {"subscription": subscription_id}))
                closed += 1
        return closed

    def discard(self, stream: DeltaStream) -> None:
        """Forget one stream (consumer disconnected on its own)."""
        streams = self._streams.get(stream.subscription_id)
        if streams and stream in streams:
            streams.remove(stream)
        self._prune(stream.subscription_id)

    def _prune(self, subscription_id: int) -> None:
        streams = self._streams.get(subscription_id)
        if streams is not None:
            streams[:] = [stream for stream in streams if not stream.closed]
            if not streams:
                del self._streams[subscription_id]

    def snapshot(self) -> dict[str, int]:
        """The counters the ``/v1/metrics`` endpoint reports."""
        return {
            "open": self.open_streams,
            "opened": self.opened,
            "lagged": self.lagged,
            "ticks_published": self.published,
        }
