"""Robustness knobs of the serving tier: admission control and limits.

A front door for heavy traffic needs three refusals more than it needs
features: *"too busy"* (bounded in-flight work, rejected fast with a
429-style envelope instead of queueing unboundedly), *"too slow"* (a
per-request deadline that frees the connection even when the engine is
mid-expansion) and *"too big"* (a body-size cap so a malformed client
cannot balloon memory).  :class:`ServeConfig` declares the bounds;
:class:`AdmissionController` enforces the first one and keeps the
counters the ``/v1/metrics`` endpoint reports.

Everything here runs on the event loop thread — plain integers are all
the synchronisation admission needs, which is exactly why rejection is
*fast*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["AdmissionController", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Declarative limits of one :class:`~repro.serve.ServeApp`.

    Parameters
    ----------
    max_in_flight:
        Work-class requests (query / batch submit / PATCH / subscribe)
        admitted concurrently; request number ``max_in_flight + 1`` is
        rejected immediately with a ``saturated`` envelope.
    max_queued_jobs:
        Batch jobs allowed in ``queued``/``running`` state at once;
        submissions beyond that are rejected (poll endpoints stay free).
    request_timeout_seconds:
        Per-request deadline.  On expiry the client gets a ``timeout``
        envelope and the connection is freed; the engine finishes (and
        discards) the orphaned computation without wedging the executor.
        ``None`` disables deadlines.
    stream_buffer:
        Per-subscriber delta-event queue capacity.  A consumer that falls
        further behind is disconnected with a terminal ``lagged`` event —
        backpressure never blocks the tick path.
    latency_window:
        Rolling-window size of the per-endpoint latency percentiles.
    max_body_bytes:
        Request bodies above this are rejected with a
        ``payload-too-large`` envelope before JSON decoding.
    """

    max_in_flight: int = 8
    max_queued_jobs: int = 32
    request_timeout_seconds: float | None = 10.0
    stream_buffer: int = 64
    latency_window: int = 512
    max_body_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        for name in ("max_in_flight", "max_queued_jobs", "stream_buffer", "latency_window"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ServeError(f"{name} must be a positive integer, got {value!r}")
        if not isinstance(self.max_body_bytes, int) or isinstance(self.max_body_bytes, bool) or self.max_body_bytes < 1024:
            raise ServeError(
                f"max_body_bytes must be an integer of at least 1024, got "
                f"{self.max_body_bytes!r}"
            )
        if self.request_timeout_seconds is not None:
            try:
                timeout = float(self.request_timeout_seconds)
            except (TypeError, ValueError):
                raise ServeError(
                    "request_timeout_seconds must be a positive number or None, "
                    f"got {self.request_timeout_seconds!r}"
                ) from None
            if not timeout > 0.0:
                raise ServeError(
                    "request_timeout_seconds must be a positive number or None, "
                    f"got {self.request_timeout_seconds!r}"
                )
            object.__setattr__(self, "request_timeout_seconds", timeout)


class AdmissionController:
    """Bounded in-flight admission with fast rejection and counters.

    Not a lock: :meth:`try_acquire` never waits.  The serving tier calls
    it on the event loop before handing work to the session executor and
    :meth:`release` in a ``finally`` — a timed-out request therefore still
    holds its slot until the orphaned engine call completes, which is the
    honest accounting (the executor *is* busy).
    """

    def __init__(self, max_in_flight: int):
        if not isinstance(max_in_flight, int) or isinstance(max_in_flight, bool) or max_in_flight < 1:
            raise ServeError(
                f"max_in_flight must be a positive integer, got {max_in_flight!r}"
            )
        self._capacity = max_in_flight
        self._in_flight = 0
        self._high_water = 0
        self._admitted = 0
        self._rejected = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def high_water(self) -> int:
        """The most work-class requests ever concurrently admitted."""
        return self._high_water

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    def try_acquire(self) -> bool:
        """Admit one request, or refuse instantly when saturated."""
        if self._in_flight >= self._capacity:
            self._rejected += 1
            return False
        self._in_flight += 1
        self._admitted += 1
        if self._in_flight > self._high_water:
            self._high_water = self._in_flight
        return True

    def release(self) -> None:
        if self._in_flight <= 0:
            raise ServeError("release() without a matching try_acquire()")
        self._in_flight -= 1

    def snapshot(self) -> dict[str, int]:
        """The counters the ``/v1/metrics`` endpoint reports."""
        return {
            "capacity": self._capacity,
            "in_flight": self._in_flight,
            "high_water": self._high_water,
            "admitted": self._admitted,
            "rejected": self._rejected,
        }
