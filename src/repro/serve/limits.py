"""Robustness knobs of the serving tier: admission control and limits.

A front door for heavy traffic needs three refusals more than it needs
features: *"too busy"* (bounded in-flight work, rejected fast with a
429-style envelope instead of queueing unboundedly), *"too slow"* (a
per-request deadline that frees the connection even when the engine is
mid-expansion) and *"too big"* (a body-size cap so a malformed client
cannot balloon memory).  :class:`ServeConfig` declares the bounds;
:class:`AdmissionController` enforces the first one and keeps the
counters the ``/v1/metrics`` endpoint reports.

Everything here runs on the event loop thread — plain integers are all
the synchronisation admission needs, which is exactly why rejection is
*fast*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ServeError

__all__ = ["AdmissionController", "IdempotencyCache", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Declarative limits of one :class:`~repro.serve.ServeApp`.

    Parameters
    ----------
    max_in_flight:
        Work-class requests (query / batch submit / PATCH / subscribe)
        admitted concurrently; request number ``max_in_flight + 1`` is
        rejected immediately with a ``saturated`` envelope.
    max_queued_jobs:
        Batch jobs allowed in ``queued``/``running`` state at once;
        submissions beyond that are rejected (poll endpoints stay free).
    request_timeout_seconds:
        Per-request deadline.  On expiry the client gets a ``timeout``
        envelope and the connection is freed; the engine finishes (and
        discards) the orphaned computation without wedging the executor.
        ``None`` disables deadlines.
    stream_buffer:
        Per-subscriber delta-event queue capacity.  A consumer that falls
        further behind is disconnected with a terminal ``lagged`` event —
        backpressure never blocks the tick path.
    latency_window:
        Rolling-window size of the per-endpoint latency percentiles.
    max_body_bytes:
        Request bodies above this are rejected with a
        ``payload-too-large`` envelope before JSON decoding.
    drain_deadline_seconds:
        How long :meth:`~repro.serve.ServeApp.drain` waits for in-flight
        requests and active batch jobs before force-cancelling the
        stragglers.  ``None`` waits forever (drain cannot be forced).
    retry_after_seconds:
        The ``retry_after`` hint attached to ``draining`` / ``conflict`` /
        ``dataset-unavailable`` refusals (and the ``Retry-After`` header
        the HTTP transport emits for them).
    idempotency_capacity:
        Bound of the ``Idempotency-Key`` dedup cache (LRU-evicted).  An
        evicted key retried later re-executes, so size this above the
        plausible retry horizon of the traffic.
    """

    max_in_flight: int = 8
    max_queued_jobs: int = 32
    request_timeout_seconds: float | None = 10.0
    stream_buffer: int = 64
    latency_window: int = 512
    max_body_bytes: int = 1 << 20
    drain_deadline_seconds: float | None = 5.0
    retry_after_seconds: float = 1.0
    idempotency_capacity: int = 1024

    def __post_init__(self) -> None:
        for name in ("max_in_flight", "max_queued_jobs", "stream_buffer", "latency_window", "idempotency_capacity"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ServeError(f"{name} must be a positive integer, got {value!r}")
        if not isinstance(self.max_body_bytes, int) or isinstance(self.max_body_bytes, bool) or self.max_body_bytes < 1024:
            raise ServeError(
                f"max_body_bytes must be an integer of at least 1024, got "
                f"{self.max_body_bytes!r}"
            )
        if self.request_timeout_seconds is not None:
            try:
                timeout = float(self.request_timeout_seconds)
            except (TypeError, ValueError):
                raise ServeError(
                    "request_timeout_seconds must be a positive number or None, "
                    f"got {self.request_timeout_seconds!r}"
                ) from None
            if not timeout > 0.0:
                raise ServeError(
                    "request_timeout_seconds must be a positive number or None, "
                    f"got {self.request_timeout_seconds!r}"
                )
            object.__setattr__(self, "request_timeout_seconds", timeout)
        if self.drain_deadline_seconds is not None:
            try:
                deadline = float(self.drain_deadline_seconds)
            except (TypeError, ValueError):
                raise ServeError(
                    "drain_deadline_seconds must be a positive number or None, "
                    f"got {self.drain_deadline_seconds!r}"
                ) from None
            if not deadline > 0.0:
                raise ServeError(
                    "drain_deadline_seconds must be a positive number or None, "
                    f"got {self.drain_deadline_seconds!r}"
                )
            object.__setattr__(self, "drain_deadline_seconds", deadline)
        try:
            retry_after = float(self.retry_after_seconds)
        except (TypeError, ValueError):
            raise ServeError(
                "retry_after_seconds must be a non-negative number, got "
                f"{self.retry_after_seconds!r}"
            ) from None
        if retry_after < 0.0:
            raise ServeError(
                "retry_after_seconds must be a non-negative number, got "
                f"{self.retry_after_seconds!r}"
            )
        object.__setattr__(self, "retry_after_seconds", retry_after)


class AdmissionController:
    """Bounded in-flight admission with fast rejection and counters.

    Not a lock: :meth:`try_acquire` never waits.  The serving tier calls
    it on the event loop before handing work to the session executor and
    :meth:`release` in a ``finally`` — a timed-out request therefore still
    holds its slot until the orphaned engine call completes, which is the
    honest accounting (the executor *is* busy).
    """

    def __init__(self, max_in_flight: int):
        if not isinstance(max_in_flight, int) or isinstance(max_in_flight, bool) or max_in_flight < 1:
            raise ServeError(
                f"max_in_flight must be a positive integer, got {max_in_flight!r}"
            )
        self._capacity = max_in_flight
        self._in_flight = 0
        self._high_water = 0
        self._admitted = 0
        self._rejected = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def high_water(self) -> int:
        """The most work-class requests ever concurrently admitted."""
        return self._high_water

    @property
    def admitted(self) -> int:
        return self._admitted

    @property
    def rejected(self) -> int:
        return self._rejected

    def try_acquire(self) -> bool:
        """Admit one request, or refuse instantly when saturated."""
        if self._in_flight >= self._capacity:
            self._rejected += 1
            return False
        self._in_flight += 1
        self._admitted += 1
        if self._in_flight > self._high_water:
            self._high_water = self._in_flight
        return True

    def release(self) -> None:
        if self._in_flight <= 0:
            raise ServeError("release() without a matching try_acquire()")
        self._in_flight -= 1

    def snapshot(self) -> dict[str, int]:
        """The counters the ``/v1/metrics`` endpoint reports."""
        return {
            "capacity": self._capacity,
            "in_flight": self._in_flight,
            "high_water": self._high_water,
            "admitted": self._admitted,
            "rejected": self._rejected,
        }


@dataclass
class IdempotencyEntry:
    """One cached answer: the request it belongs to and what was served."""

    fingerprint: str
    status: int
    payload: dict


class IdempotencyCache:
    """A bounded LRU of ``Idempotency-Key`` -> served response.

    A retried mutation whose first attempt completed server-side (even if
    the acknowledgement was severed in flight) is answered from here —
    same status, same payload, no second execution.  Each entry also pins
    the *request fingerprint* (route + canonical body), so a key reused
    for a different request is refused instead of silently served someone
    else's answer.

    Event-loop-thread only, like the admission controller: plain dict
    operations, no locks.
    """

    def __init__(self, capacity: int):
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ServeError(
                f"idempotency capacity must be a positive integer, got {capacity!r}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[str, IdempotencyEntry] = OrderedDict()
        self.hits = 0
        self.stored = 0
        self.evicted = 0
        self.conflicts = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> IdempotencyEntry | None:
        """The cached entry for ``key`` (refreshing its LRU position)."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        return entry

    def store(self, key: str, fingerprint: str, status: int, payload: dict) -> None:
        """Cache one served answer, evicting the least-recent past capacity."""
        self._entries[key] = IdempotencyEntry(fingerprint, status, payload)
        self._entries.move_to_end(key)
        self.stored += 1
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evicted += 1

    def snapshot(self) -> dict[str, int]:
        """The counters the ``/v1/metrics`` endpoint reports."""
        return {
            "capacity": self._capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "stored": self.stored,
            "evicted": self.evicted,
            "conflicts": self.conflicts,
        }
