"""Edge-cost generation: independent, correlated and anti-correlated distributions.

The experiments assign ``d`` costs to each edge following the three standard
distributions of preference-query evaluation (Börzsönyi et al.), adapted to
edges: each cost is the edge's physical length scaled by a per-edge factor.

* **independent** — the d factors are drawn independently.
* **correlated** — the factors share a common component: an edge cheap under
  one cost tends to be cheap under the others.
* **anti-correlated** — the factors roughly sum to a constant: an edge cheap
  under one cost tends to be expensive under the others (the hardest case
  for skyline queries, and the paper's default).
"""

from __future__ import annotations

import random
from enum import Enum

from repro.errors import DataGenerationError
from repro.network.costs import CostVector
from repro.network.graph import MultiCostGraph

__all__ = ["CostDistribution", "generate_cost_factors", "assign_edge_costs"]

_MIN_FACTOR = 0.05
_MAX_FACTOR = 1.95


class CostDistribution(Enum):
    """How the d cost factors of an edge relate to each other."""

    INDEPENDENT = "independent"
    CORRELATED = "correlated"
    ANTI_CORRELATED = "anti-correlated"

    @classmethod
    def parse(cls, name: str) -> "CostDistribution":
        normalized = name.strip().lower().replace("_", "-")
        for member in cls:
            if member.value == normalized or member.name.lower() == normalized:
                return member
        raise DataGenerationError(f"unknown cost distribution {name!r}")


def _clip(value: float) -> float:
    return min(max(value, _MIN_FACTOR), _MAX_FACTOR)


def generate_cost_factors(
    distribution: CostDistribution, dimensions: int, rng: random.Random
) -> list[float]:
    """One d-dimensional factor vector in roughly ``[0.05, 1.95]`` around 1."""
    if dimensions < 1:
        raise DataGenerationError("dimensions must be positive")
    if distribution is CostDistribution.INDEPENDENT:
        return [_clip(rng.uniform(_MIN_FACTOR, _MAX_FACTOR)) for _ in range(dimensions)]
    if distribution is CostDistribution.CORRELATED:
        shared = rng.uniform(0.3, 1.7)
        return [_clip(shared + rng.gauss(0.0, 0.1)) for _ in range(dimensions)]
    # Anti-correlated: the factors sum to (roughly) dimensions, so a small
    # factor in one dimension forces large factors elsewhere.
    total = dimensions * _clip(rng.gauss(1.0, 0.15))
    cuts = sorted(rng.uniform(0.0, total) for _ in range(dimensions - 1))
    shares = []
    previous = 0.0
    for cut in cuts + [total]:
        shares.append(cut - previous)
        previous = cut
    rng.shuffle(shares)
    return [_clip(share + 0.05) for share in shares]


def assign_edge_costs(
    graph: MultiCostGraph,
    distribution: CostDistribution,
    *,
    seed: int = 11,
) -> MultiCostGraph:
    """Return a copy of ``graph`` whose edge costs follow ``distribution``.

    Each cost is ``edge length x factor``; the graph's dimensionality is kept.
    """
    rng = random.Random(seed)
    result = MultiCostGraph(graph.num_cost_types, directed=graph.directed)
    for node in graph.nodes():
        result.add_node(node.node_id, node.x, node.y)
    for edge in graph.edges():
        factors = generate_cost_factors(distribution, graph.num_cost_types, rng)
        costs = CostVector(edge.length * factor for factor in factors)
        result.add_edge(edge.u, edge.v, costs, length=edge.length, edge_id=edge.edge_id)
    return result
