"""Synthetic data generation: road networks, edge costs, facilities, queries."""

from repro.datagen.cost_models import CostDistribution, assign_edge_costs, generate_cost_factors
from repro.datagen.facility_gen import (
    generate_clustered_facilities,
    generate_uniform_facilities,
)
from repro.datagen.queries import generate_query_locations
from repro.datagen.road_network import (
    RoadNetworkSpec,
    euclidean_edge_lengths,
    generate_road_network,
)
from repro.datagen.updates import (
    EdgeCostStreamSpec,
    UpdateStreamSpec,
    edge_cost_stream_spec_from_payload,
    edge_cost_stream_spec_to_payload,
    make_edge_cost_stream,
    make_profile_network,
    make_update_stream,
    update_stream_spec_from_payload,
    update_stream_spec_to_payload,
)
from repro.datagen.workload import (
    Workload,
    WorkloadSpec,
    make_workload,
    workload_spec_from_payload,
    workload_spec_to_payload,
)

__all__ = [
    "CostDistribution",
    "EdgeCostStreamSpec",
    "RoadNetworkSpec",
    "UpdateStreamSpec",
    "Workload",
    "WorkloadSpec",
    "assign_edge_costs",
    "euclidean_edge_lengths",
    "generate_clustered_facilities",
    "generate_cost_factors",
    "generate_query_locations",
    "generate_road_network",
    "generate_uniform_facilities",
    "edge_cost_stream_spec_from_payload",
    "edge_cost_stream_spec_to_payload",
    "make_edge_cost_stream",
    "make_profile_network",
    "make_update_stream",
    "make_workload",
    "update_stream_spec_from_payload",
    "update_stream_spec_to_payload",
    "workload_spec_from_payload",
    "workload_spec_to_payload",
]
