"""Synthetic facility-update streams for the continuous monitoring service.

:class:`UpdateStreamSpec` captures the shape of an update workload — how many
ticks, how many updates per tick, the insert/delete/relocate mix and how
*local* insertions are (locality models the real-world pattern that new
points of interest open near existing ones, which is also the pattern that
exercises the maintainers' incremental paths hardest, because local inserts
keep landing inside the expansion frontier of the cached results).

:func:`make_update_stream` materialises a spec into an
:class:`~repro.monitor.UpdateStream` against a concrete graph and facility
set.  Generation is fully deterministic per spec (given the same graph,
facility ids and subscription ids), so a spec payload pins a stream forever
— the same fixture contract as :func:`repro.datagen.workload.make_workload`.
The input facility set is only *read*; the stream simulates its own view of
which ids are live.

:class:`EdgeCostStreamSpec` / :func:`make_edge_cost_stream` are the
temporal subsystem's counterpart: a rush-hour ramp (a triangular
:func:`~repro.timedep.peak_profile` over a deterministic subset of edges)
sampled at regular instants, emitting one tick of
:class:`~repro.monitor.EdgeCostUpdate` re-profilings per instant — the
continuous edge-cost stream a periodic re-profiler would push at the
monitoring service.  Base costs are captured eagerly at generation time, so
the stream is replayable even while the target graph mutates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.datagen.queries import generate_query_locations
from repro.errors import DataGenerationError
from repro.monitor.stream import (
    EdgeCostUpdate,
    FacilityDelete,
    FacilityInsert,
    FacilityUpdate,
    QueryRelocation,
    UpdateStream,
    UpdateTick,
)
from repro.network.facilities import FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph
from repro.timedep.network import TimeVaryingMCN
from repro.timedep.profiles import CostProfile, peak_profile

__all__ = [
    "EdgeCostStreamSpec",
    "UpdateStreamSpec",
    "make_edge_cost_stream",
    "make_profile_network",
    "make_update_stream",
    "edge_cost_stream_spec_to_payload",
    "edge_cost_stream_spec_from_payload",
    "update_stream_spec_to_payload",
    "update_stream_spec_from_payload",
]


@dataclass(frozen=True)
class UpdateStreamSpec:
    """All generation parameters of one synthetic update stream.

    ``insert_fraction`` / ``delete_fraction`` / ``relocate_fraction`` must be
    non-negative and sum to 1; ``locality`` is the probability that an insert
    lands on an edge incident to an edge already hosting a facility (the
    rest land on uniformly random edges).  Relocations are only generated
    when subscription ids are supplied to :func:`make_update_stream`;
    otherwise their probability mass folds into inserts and deletes.
    """

    num_ticks: int = 20
    updates_per_tick: int = 5
    insert_fraction: float = 0.45
    delete_fraction: float = 0.45
    relocate_fraction: float = 0.10
    locality: float = 0.5
    min_live_facilities: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_ticks < 0:
            raise DataGenerationError("the number of ticks cannot be negative")
        if self.updates_per_tick < 1:
            raise DataGenerationError("each tick needs at least one update")
        fractions = (self.insert_fraction, self.delete_fraction, self.relocate_fraction)
        if any(fraction < 0 for fraction in fractions):
            raise DataGenerationError("update-mix fractions cannot be negative")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise DataGenerationError(
                f"update-mix fractions must sum to 1, got {sum(fractions)}"
            )
        if not 0.0 <= self.locality <= 1.0:
            raise DataGenerationError("locality must lie in [0, 1]")
        if self.min_live_facilities < 1:
            raise DataGenerationError("min_live_facilities must be a positive integer")


def update_stream_spec_to_payload(spec: UpdateStreamSpec) -> dict[str, object]:
    """A plain-JSON dictionary describing ``spec`` (the fixture contract)."""
    return {
        "num_ticks": spec.num_ticks,
        "updates_per_tick": spec.updates_per_tick,
        "insert_fraction": spec.insert_fraction,
        "delete_fraction": spec.delete_fraction,
        "relocate_fraction": spec.relocate_fraction,
        "locality": spec.locality,
        "min_live_facilities": spec.min_live_facilities,
        "seed": spec.seed,
    }


def update_stream_spec_from_payload(payload: dict[str, object]) -> UpdateStreamSpec:
    """Rebuild an :class:`UpdateStreamSpec` from its payload dictionary."""
    try:
        return UpdateStreamSpec(
            num_ticks=int(payload["num_ticks"]),  # type: ignore[arg-type]
            updates_per_tick=int(payload["updates_per_tick"]),  # type: ignore[arg-type]
            insert_fraction=float(payload["insert_fraction"]),  # type: ignore[arg-type]
            delete_fraction=float(payload["delete_fraction"]),  # type: ignore[arg-type]
            relocate_fraction=float(payload["relocate_fraction"]),  # type: ignore[arg-type]
            locality=float(payload["locality"]),  # type: ignore[arg-type]
            min_live_facilities=int(payload["min_live_facilities"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
        )
    except KeyError as missing:
        raise DataGenerationError(f"update-stream payload missing {missing}") from None


def make_update_stream(
    graph: MultiCostGraph,
    facilities: FacilitySet,
    spec: UpdateStreamSpec,
    *,
    subscription_ids: Sequence[int] = (),
) -> UpdateStream:
    """Generate a deterministic update stream against ``graph`` and ``facilities``.

    The facility set is read, never mutated: the generator simulates which
    facility ids are live as the stream progresses, so every delete names a
    facility that exists at that point of the stream and every insert uses a
    fresh id.  Deletes are converted to inserts whenever they would push the
    live population below ``spec.min_live_facilities``.
    """
    rng = random.Random(spec.seed)
    edges = sorted(graph.edges(), key=lambda edge: edge.edge_id)
    if not edges:
        raise DataGenerationError("the graph has no edges to place facilities on")
    edge_by_id = {edge.edge_id: edge for edge in edges}

    live: dict[int, EdgeId] = {
        facility.facility_id: facility.edge_id for facility in facilities
    }
    hosting_count: dict[EdgeId, int] = {}
    for edge_id in live.values():
        hosting_count[edge_id] = hosting_count.get(edge_id, 0) + 1
    next_id = max(live, default=-1) + 1

    relocate_fraction = spec.relocate_fraction if subscription_ids else 0.0
    insert_fraction = spec.insert_fraction
    if not subscription_ids and spec.relocate_fraction:
        # Fold the relocation mass into inserts/deletes proportionally.
        scale = 1.0 / (spec.insert_fraction + spec.delete_fraction or 1.0)
        insert_fraction = spec.insert_fraction * scale

    def local_edge() -> EdgeId:
        """An edge incident to an edge already hosting a facility (or hosting one)."""
        hosts = sorted(hosting_count)
        if not hosts:
            return rng.choice(edges).edge_id
        anchor = edge_by_id[rng.choice(hosts)]
        incident: list[EdgeId] = []
        for node in (anchor.u, anchor.v):
            for _neighbor, edge in graph.neighbors(node):
                incident.append(edge.edge_id)
        return rng.choice(sorted(set(incident))) if incident else anchor.edge_id

    def draw_insert() -> FacilityInsert:
        nonlocal next_id
        if rng.random() < spec.locality:
            edge_id = local_edge()
        else:
            edge_id = rng.choice(edges).edge_id
        edge = edge_by_id[edge_id]
        update = FacilityInsert(next_id, edge_id, rng.uniform(0.0, edge.length))
        next_id += 1
        live[update.facility_id] = edge_id
        hosting_count[edge_id] = hosting_count.get(edge_id, 0) + 1
        return update

    def draw_delete() -> FacilityDelete:
        victim = rng.choice(sorted(live))
        edge_id = live.pop(victim)
        hosting_count[edge_id] -= 1
        if not hosting_count[edge_id]:
            del hosting_count[edge_id]
        return FacilityDelete(victim)

    def draw_relocation() -> QueryRelocation:
        subscription = rng.choice(sorted(subscription_ids))
        location = generate_query_locations(graph, 1, seed=rng.randrange(1 << 30))[0]
        return QueryRelocation(subscription, location)

    ticks = []
    for _tick_index in range(spec.num_ticks):
        updates: list[FacilityUpdate] = []
        for _position in range(spec.updates_per_tick):
            roll = rng.random()
            if roll < relocate_fraction:
                updates.append(draw_relocation())
            elif roll < relocate_fraction + insert_fraction or len(live) <= spec.min_live_facilities:
                updates.append(draw_insert())
            else:
                updates.append(draw_delete())
        ticks.append(UpdateTick(tuple(updates)))
    return UpdateStream(tuple(ticks))


# --------------------------------------------------------------------- #
# Edge-cost streams (temporal re-profiling)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EdgeCostStreamSpec:
    """All generation parameters of one rush-hour edge-cost stream.

    A deterministic fraction of edges is declared *congestible*; each gets
    a triangular peak (multiplier ``1 → peak_multiplier → 1`` over
    ``2 * peak_width`` time units around ``peak_time``, jittered per edge)
    on every cost type.  The window ``[start_time, start_time +
    num_ticks * time_step)`` is sampled one tick per instant, and a tick
    carries an :class:`~repro.monitor.EdgeCostUpdate` for every congestible
    edge whose (rounded) cost vector moved since the previous instant —
    quiet edges emit nothing, so off-peak ticks are cheap or empty.
    """

    num_ticks: int = 16
    start_time: float = 6.0
    time_step: float = 0.25
    affected_fraction: float = 0.25
    peak_time: float = 8.0
    peak_multiplier: float = 3.0
    peak_width: float = 1.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_ticks < 0:
            raise DataGenerationError("the number of ticks cannot be negative")
        if self.time_step <= 0:
            raise DataGenerationError("time_step must be positive")
        if not 0.0 < self.affected_fraction <= 1.0:
            raise DataGenerationError("affected_fraction must lie in (0, 1]")
        if self.peak_multiplier <= 0:
            raise DataGenerationError("peak_multiplier must be positive")
        if self.peak_width <= 0:
            raise DataGenerationError("peak_width must be positive")


def edge_cost_stream_spec_to_payload(spec: EdgeCostStreamSpec) -> dict[str, object]:
    """A plain-JSON dictionary describing ``spec`` (the fixture contract)."""
    return {
        "num_ticks": spec.num_ticks,
        "start_time": spec.start_time,
        "time_step": spec.time_step,
        "affected_fraction": spec.affected_fraction,
        "peak_time": spec.peak_time,
        "peak_multiplier": spec.peak_multiplier,
        "peak_width": spec.peak_width,
        "seed": spec.seed,
    }


def edge_cost_stream_spec_from_payload(payload: dict[str, object]) -> EdgeCostStreamSpec:
    """Rebuild an :class:`EdgeCostStreamSpec` from its payload dictionary."""
    try:
        return EdgeCostStreamSpec(
            num_ticks=int(payload["num_ticks"]),  # type: ignore[arg-type]
            start_time=float(payload["start_time"]),  # type: ignore[arg-type]
            time_step=float(payload["time_step"]),  # type: ignore[arg-type]
            affected_fraction=float(payload["affected_fraction"]),  # type: ignore[arg-type]
            peak_time=float(payload["peak_time"]),  # type: ignore[arg-type]
            peak_multiplier=float(payload["peak_multiplier"]),  # type: ignore[arg-type]
            peak_width=float(payload["peak_width"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
        )
    except KeyError as missing:
        raise DataGenerationError(f"edge-cost stream payload missing {missing}") from None


#: Decimal places an edge cost is rounded to when deciding "moved since the
#: previous instant" — and in the emitted costs themselves, so replaying the
#: stream is bit-stable across platforms.
_EDGE_COST_ROUND = 9


def _congestion_profiles(
    graph: MultiCostGraph, spec: EdgeCostStreamSpec
) -> dict[EdgeId, CostProfile]:
    """The spec's deterministic congestible-edge → peak-profile assignment."""
    rng = random.Random(spec.seed)
    edges = sorted(graph.edges(), key=lambda edge: edge.edge_id)
    if not edges:
        raise DataGenerationError("the graph has no edges to re-profile")
    num_affected = max(1, round(spec.affected_fraction * len(edges)))
    affected = sorted(
        rng.sample(edges, min(num_affected, len(edges))), key=lambda edge: edge.edge_id
    )
    profiles: dict[EdgeId, CostProfile] = {}
    for edge in affected:
        jitter = rng.uniform(-spec.peak_width / 4.0, spec.peak_width / 4.0)
        profiles[edge.edge_id] = peak_profile(
            peak_time=spec.peak_time + jitter,
            peak_multiplier=spec.peak_multiplier,
            width=spec.peak_width,
        )
    return profiles


def make_profile_network(graph: MultiCostGraph, spec: EdgeCostStreamSpec) -> TimeVaryingMCN:
    """The :class:`~repro.timedep.TimeVaryingMCN` behind ``spec``'s stream.

    Built from the same seeded edge → peak-profile assignment as
    :func:`make_edge_cost_stream` (the profile applies to every cost type of
    a congestible edge), so sampling this network's costs at the stream's
    tick instants — rounded like the stream — reproduces the stream's cost
    vectors exactly.  Register it as a :class:`~repro.api.Session` profile
    set to ask departure-time questions about the same rush hour the stream
    replays tick by tick.
    """
    profiles = _congestion_profiles(graph, spec)
    return TimeVaryingMCN(
        graph,
        profiles={
            edge_id: [profile] * graph.num_cost_types
            for edge_id, profile in profiles.items()
        },
    )


def make_edge_cost_stream(graph: MultiCostGraph, spec: EdgeCostStreamSpec) -> UpdateStream:
    """Generate a deterministic rush-hour edge-cost stream against ``graph``.

    The graph is only *read* (base cost vectors are captured eagerly), so
    the stream can be replayed against the live graph it was generated from
    even as applying it mutates that graph's costs.
    """
    profiles = _congestion_profiles(graph, spec)
    affected = [graph.edge(edge_id) for edge_id in sorted(profiles)]
    base_costs = {
        edge.edge_id: tuple(edge.costs.values) for edge in affected
    }

    def costs_at(edge_id: EdgeId, time: float) -> tuple[float, ...]:
        multiplier = profiles[edge_id].value_at(time)
        return tuple(
            round(base * multiplier, _EDGE_COST_ROUND) for base in base_costs[edge_id]
        )

    current = {edge.edge_id: base_costs[edge.edge_id] for edge in affected}
    ticks = []
    for tick_index in range(spec.num_ticks):
        time = spec.start_time + tick_index * spec.time_step
        updates: list[FacilityUpdate] = []
        for edge in affected:
            costs = costs_at(edge.edge_id, time)
            if costs != current[edge.edge_id]:
                current[edge.edge_id] = costs
                updates.append(EdgeCostUpdate(edge.edge_id, costs))
        ticks.append(UpdateTick(tuple(updates)))
    return UpdateStream(tuple(ticks))
