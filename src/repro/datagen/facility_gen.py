"""Facility generation: Gaussian clusters around random network nodes.

The paper generates its facility set as 10 Gaussian clusters centred at
random nodes, mimicking how points of interest concentrate around specific
areas of a city.  Coordinates are not required: cluster membership is
realised as a random walk of Gaussian-distributed hop length starting at the
cluster centre, which produces network-space clusters on any connected
graph.  A uniform placement mode is also provided for ablations.
"""

from __future__ import annotations

import random

from repro.errors import DataGenerationError
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph, NodeId

__all__ = ["generate_clustered_facilities", "generate_uniform_facilities"]


def _random_walk(graph: MultiCostGraph, start: NodeId, hops: int, rng: random.Random) -> NodeId:
    current = start
    for _ in range(hops):
        neighbors = graph.neighbors(current)
        if not neighbors:
            return current
        current = rng.choice(neighbors)[0]
    return current


def generate_clustered_facilities(
    graph: MultiCostGraph,
    num_facilities: int,
    *,
    num_clusters: int = 10,
    cluster_spread_hops: float = 4.0,
    seed: int = 23,
) -> FacilitySet:
    """``num_facilities`` facilities in ``num_clusters`` Gaussian network clusters."""
    if num_facilities < 0:
        raise DataGenerationError("the number of facilities cannot be negative")
    if num_clusters < 1:
        raise DataGenerationError("at least one cluster is required")
    if graph.num_edges == 0 and num_facilities > 0:
        raise DataGenerationError("cannot place facilities on a graph without edges")
    rng = random.Random(seed)
    node_ids = list(graph.node_ids())
    centers = [rng.choice(node_ids) for _ in range(num_clusters)]
    facilities = FacilitySet(graph)
    for facility_id in range(num_facilities):
        center = centers[rng.randrange(num_clusters)]
        hops = max(int(round(abs(rng.gauss(0.0, cluster_spread_hops)))), 0)
        node = _random_walk(graph, center, hops, rng)
        incident = graph.neighbors(node)
        if not incident:
            # Isolated node: fall back to a random edge anywhere in the network.
            edge = rng.choice(list(graph.edges()))
        else:
            edge = rng.choice(incident)[1]
        offset = rng.uniform(0.0, edge.length)
        facilities.add_on_edge(facility_id, edge.edge_id, offset, {"cluster_center": center})
    return facilities


def generate_uniform_facilities(
    graph: MultiCostGraph,
    num_facilities: int,
    *,
    seed: int = 29,
) -> FacilitySet:
    """``num_facilities`` facilities placed uniformly at random over the edges."""
    if num_facilities < 0:
        raise DataGenerationError("the number of facilities cannot be negative")
    if graph.num_edges == 0 and num_facilities > 0:
        raise DataGenerationError("cannot place facilities on a graph without edges")
    rng = random.Random(seed)
    edges = list(graph.edges())
    facilities = FacilitySet(graph)
    for facility_id in range(num_facilities):
        edge = rng.choice(edges)
        facilities.add_on_edge(facility_id, edge.edge_id, rng.uniform(0.0, edge.length))
    return facilities
