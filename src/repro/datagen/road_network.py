"""Synthetic road-network generation.

The paper evaluates on the San Francisco road network (174,956 nodes and
223,001 edges, produced by Brinkhoff's moving-objects framework).  That
dataset is not redistributable here, so this module generates networks with
the same structural character the algorithms care about: large, sparse
(average degree ~2.5), connected, roughly planar, with spatially coherent
edge lengths.  The generator starts from a jittered grid, removes a fraction
of the edges while protecting a spanning tree (so the network stays
connected and acquires irregular block shapes), and then adds a few random
"diagonal" shortcuts to reach the requested edge count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import DataGenerationError
from repro.network.graph import MultiCostGraph, NodeId

__all__ = ["RoadNetworkSpec", "generate_road_network", "euclidean_edge_lengths"]


@dataclass(frozen=True)
class RoadNetworkSpec:
    """Parameters of the synthetic road network.

    ``num_nodes`` is approximate (rounded to a full grid); ``target_degree``
    controls sparsity (San Francisco has ~2.55 incident edges per node).
    ``jitter`` perturbs node coordinates as a fraction of the grid spacing.
    """

    num_nodes: int = 2500
    target_degree: float = 2.55
    jitter: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes < 4:
            raise DataGenerationError("a road network needs at least 4 nodes")
        if not 1.5 <= self.target_degree <= 4.0:
            raise DataGenerationError("target degree must be between 1.5 and 4.0 (grid-like)")
        if not 0.0 <= self.jitter < 0.5:
            raise DataGenerationError("jitter must be in [0, 0.5)")


def generate_road_network(spec: RoadNetworkSpec, *, num_cost_types: int = 1) -> MultiCostGraph:
    """Generate a connected, grid-derived road network.

    The returned graph has ``num_cost_types`` cost types, each initially set
    to the Euclidean length of the edge; :mod:`repro.datagen.cost_models`
    replaces them with the independent / correlated / anti-correlated
    distributions used in the experiments.
    """
    rng = random.Random(spec.seed)
    side = max(int(round(math.sqrt(spec.num_nodes))), 2)
    spacing = 100.0
    graph = MultiCostGraph(num_cost_types)

    def node_id(row: int, column: int) -> NodeId:
        return row * side + column

    for row in range(side):
        for column in range(side):
            x = column * spacing + rng.uniform(-spec.jitter, spec.jitter) * spacing
            y = row * spacing + rng.uniform(-spec.jitter, spec.jitter) * spacing
            graph.add_node(node_id(row, column), x, y)

    # Full grid edges (right and down neighbours).
    grid_edges: list[tuple[NodeId, NodeId]] = []
    for row in range(side):
        for column in range(side):
            if column + 1 < side:
                grid_edges.append((node_id(row, column), node_id(row, column + 1)))
            if row + 1 < side:
                grid_edges.append((node_id(row, column), node_id(row + 1, column)))

    # Protect a random spanning tree so removals never disconnect the network.
    rng.shuffle(grid_edges)
    parent = {nid: nid for nid in range(side * side)}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    protected: set[tuple[NodeId, NodeId]] = set()
    removable: list[tuple[NodeId, NodeId]] = []
    for u, v in grid_edges:
        root_u, root_v = find(u), find(v)
        if root_u != root_v:
            parent[root_u] = root_v
            protected.add((u, v))
        else:
            removable.append((u, v))

    target_edges = int(round(spec.target_degree * side * side / 2))
    target_edges = max(target_edges, side * side - 1)
    keep_extra = max(target_edges - len(protected), 0)
    rng.shuffle(removable)
    kept = list(protected) + removable[:keep_extra]

    def euclidean(u: NodeId, v: NodeId) -> float:
        node_u, node_v = graph.node(u), graph.node(v)
        return math.hypot(node_u.x - node_v.x, node_u.y - node_v.y)

    for u, v in kept:
        length = max(euclidean(u, v), 1e-6)
        graph.add_edge(u, v, [length] * num_cost_types, length=length)

    # A few diagonal shortcuts if the grid alone cannot reach the target degree.
    missing = target_edges - graph.num_edges
    attempts = 0
    while missing > 0 and attempts < 20 * missing + 100:
        attempts += 1
        row = rng.randrange(side - 1)
        column = rng.randrange(side - 1)
        u = node_id(row, column)
        v = node_id(row + 1, column + 1) if rng.random() < 0.5 else node_id(row + 1, max(column - 1, 0))
        if u == v or graph.edge_between(u, v) is not None:
            continue
        length = max(euclidean(u, v), 1e-6)
        graph.add_edge(u, v, [length] * num_cost_types, length=length)
        missing -= 1
    return graph


def euclidean_edge_lengths(graph: MultiCostGraph) -> dict[int, float]:
    """Euclidean length of every edge, computed from node coordinates."""
    lengths = {}
    for edge in graph.edges():
        node_u, node_v = graph.node(edge.u), graph.node(edge.v)
        lengths[edge.edge_id] = math.hypot(node_u.x - node_v.x, node_u.y - node_v.y)
    return lengths
