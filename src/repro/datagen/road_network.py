"""Synthetic road-network generation.

The paper evaluates on the San Francisco road network (174,956 nodes and
223,001 edges, produced by Brinkhoff's moving-objects framework).  That
dataset is not redistributable here, so this module generates networks with
the same structural character the algorithms care about: large, sparse
(average degree ~2.5), connected, roughly planar, with spatially coherent
edge lengths.  The generator starts from a jittered grid, removes a fraction
of the edges while protecting a spanning tree (so the network stays
connected and acquires irregular block shapes), and then adds a few random
"diagonal" shortcuts to reach the requested edge count.
"""

from __future__ import annotations

import math
import random
import struct
import tempfile
from dataclasses import dataclass

from repro.errors import DataGenerationError
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph, NodeId
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageKind, RecordSizes

__all__ = [
    "RoadNetworkSpec",
    "generate_road_network",
    "euclidean_edge_lengths",
    "PackedDatasetSpec",
    "build_packed_dataset",
    "materialize_packed_dataset",
    "stream_topology",
]


@dataclass(frozen=True)
class RoadNetworkSpec:
    """Parameters of the synthetic road network.

    ``num_nodes`` is approximate (rounded to a full grid); ``target_degree``
    controls sparsity (San Francisco has ~2.55 incident edges per node).
    ``jitter`` perturbs node coordinates as a fraction of the grid spacing.
    """

    num_nodes: int = 2500
    target_degree: float = 2.55
    jitter: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes < 4:
            raise DataGenerationError("a road network needs at least 4 nodes")
        if not 1.5 <= self.target_degree <= 4.0:
            raise DataGenerationError("target degree must be between 1.5 and 4.0 (grid-like)")
        if not 0.0 <= self.jitter < 0.5:
            raise DataGenerationError("jitter must be in [0, 0.5)")


def generate_road_network(spec: RoadNetworkSpec, *, num_cost_types: int = 1) -> MultiCostGraph:
    """Generate a connected, grid-derived road network.

    The returned graph has ``num_cost_types`` cost types, each initially set
    to the Euclidean length of the edge; :mod:`repro.datagen.cost_models`
    replaces them with the independent / correlated / anti-correlated
    distributions used in the experiments.
    """
    rng = random.Random(spec.seed)
    side = max(int(round(math.sqrt(spec.num_nodes))), 2)
    spacing = 100.0
    graph = MultiCostGraph(num_cost_types)

    def node_id(row: int, column: int) -> NodeId:
        return row * side + column

    for row in range(side):
        for column in range(side):
            x = column * spacing + rng.uniform(-spec.jitter, spec.jitter) * spacing
            y = row * spacing + rng.uniform(-spec.jitter, spec.jitter) * spacing
            graph.add_node(node_id(row, column), x, y)

    # Full grid edges (right and down neighbours).
    grid_edges: list[tuple[NodeId, NodeId]] = []
    for row in range(side):
        for column in range(side):
            if column + 1 < side:
                grid_edges.append((node_id(row, column), node_id(row, column + 1)))
            if row + 1 < side:
                grid_edges.append((node_id(row, column), node_id(row + 1, column)))

    # Protect a random spanning tree so removals never disconnect the network.
    rng.shuffle(grid_edges)
    parent = {nid: nid for nid in range(side * side)}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    protected: set[tuple[NodeId, NodeId]] = set()
    removable: list[tuple[NodeId, NodeId]] = []
    for u, v in grid_edges:
        root_u, root_v = find(u), find(v)
        if root_u != root_v:
            parent[root_u] = root_v
            protected.add((u, v))
        else:
            removable.append((u, v))

    target_edges = int(round(spec.target_degree * side * side / 2))
    target_edges = max(target_edges, side * side - 1)
    keep_extra = max(target_edges - len(protected), 0)
    rng.shuffle(removable)
    kept = list(protected) + removable[:keep_extra]

    def euclidean(u: NodeId, v: NodeId) -> float:
        node_u, node_v = graph.node(u), graph.node(v)
        return math.hypot(node_u.x - node_v.x, node_u.y - node_v.y)

    for u, v in kept:
        length = max(euclidean(u, v), 1e-6)
        graph.add_edge(u, v, [length] * num_cost_types, length=length)

    # A few diagonal shortcuts if the grid alone cannot reach the target degree.
    missing = target_edges - graph.num_edges
    attempts = 0
    while missing > 0 and attempts < 20 * missing + 100:
        attempts += 1
        row = rng.randrange(side - 1)
        column = rng.randrange(side - 1)
        u = node_id(row, column)
        v = node_id(row + 1, column + 1) if rng.random() < 0.5 else node_id(row + 1, max(column - 1, 0))
        if u == v or graph.edge_between(u, v) is not None:
            continue
        length = max(euclidean(u, v), 1e-6)
        graph.add_edge(u, v, [length] * num_cost_types, length=length)
        missing -= 1
    return graph


def euclidean_edge_lengths(graph: MultiCostGraph) -> dict[int, float]:
    """Euclidean length of every edge, computed from node coordinates."""
    lengths = {}
    for edge in graph.edges():
        node_u, node_v = graph.node(edge.u), graph.node(edge.v)
        lengths[edge.edge_id] = math.hypot(node_u.x - node_v.x, node_u.y - node_v.y)
    return lengths


# ===================================================================== #
# Streaming generation of packed datasets
# ===================================================================== #
# The in-RAM generator above tops out when the graph no longer fits in
# memory.  The streaming generator below derives every structural decision
# and every edge cost from a counter-mixed hash of the spec's seed, so the
# topology can be *scanned* (in node order, with a bounded look-back window)
# instead of stored — pages stream straight into a dataset pack and peak
# memory stays proportional to the grid width, the shortcut table and the
# facility table, never to the graph.  ``materialize_packed_dataset``
# replays the identical scan into an in-memory graph for small-scale parity
# tests against the simulated disk.

_MASK64 = (1 << 64) - 1
_TAG_RIGHT = 0x52494748
_TAG_COST = 0x434F5354
_TAG_LENGTH = 0x4C454E47
_TAG_OFFSET = 0x4F464653
_TAG_SHORTCUT = 0x53484F52
_TAG_FACILITY = 0x46414349


def _mix64(*values: int) -> int:
    """SplitMix64-style avalanche over a sequence of integers (deterministic)."""
    acc = 0x9E3779B97F4A7C15
    for value in values:
        acc = (acc + (value & _MASK64)) & _MASK64
        acc = ((acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        acc = ((acc ^ (acc >> 27)) * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc


def _u01(*values: int) -> float:
    """A uniform double in [0, 1) derived from the mixed values."""
    return _mix64(*values) / 2.0**64


@dataclass(frozen=True)
class PackedDatasetSpec:
    """Parameters of a streamed grid/small-world dataset.

    The network is a ``rows`` x ``cols`` grid in which every vertical street
    exists, horizontal streets exist with probability ``street_density``
    (row 0 is always complete, which keeps the network connected), and
    ``shortcut_fraction * num_nodes`` random long-range shortcuts add the
    small-world character of real road networks (bridges, highways).  Edge
    costs are independent uniforms over ``cost_range``; ``num_facilities``
    facilities land on uniformly chosen edges at uniform offsets.
    """

    rows: int = 64
    cols: int = 64
    num_cost_types: int = 2
    num_facilities: int = 256
    street_density: float = 0.3
    shortcut_fraction: float = 0.005
    cost_range: tuple[float, float] = (1.0, 10.0)
    seed: int = 7
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise DataGenerationError("a packed dataset grid needs at least 2x2 nodes")
        if self.num_cost_types < 1:
            raise DataGenerationError("at least one cost type is required")
        if self.num_facilities < 1:
            raise DataGenerationError("at least one facility is required")
        if not 0.0 <= self.street_density <= 1.0:
            raise DataGenerationError("street density must be in [0, 1]")
        if not 0.0 <= self.shortcut_fraction <= 0.2:
            raise DataGenerationError("shortcut fraction must be in [0, 0.2]")
        low, high = self.cost_range
        if not 0 < low <= high:
            raise DataGenerationError("cost range must satisfy 0 < low <= high")
        if self.page_size <= 0:
            raise DataGenerationError("page size must be positive")

    @property
    def num_nodes(self) -> int:
        return self.rows * self.cols

    def to_payload(self) -> dict:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "num_cost_types": self.num_cost_types,
            "num_facilities": self.num_facilities,
            "street_density": self.street_density,
            "shortcut_fraction": self.shortcut_fraction,
            "cost_range": list(self.cost_range),
            "seed": self.seed,
            "page_size": self.page_size,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PackedDatasetSpec":
        data = dict(payload)
        if "cost_range" in data:
            data["cost_range"] = tuple(data["cost_range"])
        return cls(**data)


def _keeps_right_edge(spec: PackedDatasetSpec, node: int) -> bool:
    if node < spec.cols:  # row 0 is complete (the connectivity spine)
        return True
    return _u01(spec.seed, _TAG_RIGHT, node) < spec.street_density


def _edge_costs(spec: PackedDatasetSpec, edge_id: int) -> tuple[tuple[float, ...], float]:
    """The (cost vector, length) of an edge — a pure function of its id."""
    low, high = spec.cost_range
    span = high - low
    costs = tuple(
        low + _u01(spec.seed, _TAG_COST, edge_id, k) * span
        for k in range(spec.num_cost_types)
    )
    length = low + _u01(spec.seed, _TAG_LENGTH, edge_id) * span
    return costs, length


def _draw_shortcuts(spec: PackedDatasetSpec) -> dict[int, list[int]]:
    """Long-range shortcut partners per owner node (owner = smaller endpoint)."""
    count = int(spec.shortcut_fraction * spec.num_nodes)
    rng = random.Random(_mix64(spec.seed, _TAG_SHORTCUT))
    seen: set[tuple[int, int]] = set()
    owners: dict[int, list[int]] = {}
    attempts = 0
    while len(seen) < count and attempts < 20 * count + 100:
        attempts += 1
        u = rng.randrange(spec.num_nodes)
        v = rng.randrange(spec.num_nodes)
        if u == v:
            continue
        u, v = min(u, v), max(u, v)
        # Skip pairs the grid may already connect (parallel edges are legal
        # but add nothing here).
        if (v - u == 1 and v % spec.cols != 0) or v - u == spec.cols:
            continue
        if (u, v) in seen:
            continue
        seen.add((u, v))
        owners.setdefault(u, []).append(v)
    for partners in owners.values():
        partners.sort()
    return owners


def stream_topology(spec: PackedDatasetSpec, shortcuts: dict[int, list[int]] | None = None):
    """Yield ``(node, incident)`` per node in id order, scanning the grid once.

    ``incident`` lists the node's full adjacency as ``(edge_id, neighbor,
    first_node)`` triples in ascending edge-id order — exactly the order an
    in-memory graph built in edge-id order reports.  Edge ids are assigned
    sequentially as each edge's *owner* (its smaller endpoint) is scanned,
    so the look-back state is one ``pending`` table of already-numbered
    edges whose far endpoint has not been reached yet (bounded by the grid
    width plus the in-flight shortcuts).
    """
    if shortcuts is None:
        shortcuts = _draw_shortcuts(spec)
    pending: dict[int, list[tuple[int, int]]] = {}
    next_edge = 0
    for node in range(spec.num_nodes):
        incident = [
            (edge_id, other, other) for edge_id, other in pending.pop(node, [])
        ]
        row, col = divmod(node, spec.cols)
        owned: list[int] = []
        if col + 1 < spec.cols and _keeps_right_edge(spec, node):
            owned.append(node + 1)
        if row + 1 < spec.rows:
            owned.append(node + spec.cols)
        owned.extend(shortcuts.get(node, ()))
        for other in owned:
            edge_id = next_edge
            next_edge += 1
            incident.append((edge_id, other, node))
            pending.setdefault(other, []).append((edge_id, node))
        incident.sort(key=lambda item: item[0])
        yield node, incident


def _count_edges(spec: PackedDatasetSpec, shortcuts: dict[int, list[int]]) -> int:
    count = sum(len(partners) for partners in shortcuts.values())
    count += (spec.rows - 1) * spec.cols  # every down edge exists
    for row in range(spec.rows):
        base = row * spec.cols
        for col in range(spec.cols - 1):
            if _keeps_right_edge(spec, base + col):
                count += 1
    return count


def _draw_facilities(spec: PackedDatasetSpec, num_edges: int) -> list[int]:
    """The host edge of every facility; facility ``i`` lives on ``draws[i]``.

    Draws are sorted so facility ids ascend with edge ids — the order both
    the facility file and the facility tree consume entries in.
    """
    rng = random.Random(_mix64(spec.seed, _TAG_FACILITY))
    return sorted(rng.randrange(num_edges) for _ in range(spec.num_facilities))


def _facility_offset(spec: PackedDatasetSpec, facility_id: int, length: float) -> float:
    return _u01(spec.seed, _TAG_OFFSET, facility_id) * length


def build_packed_dataset(spec: PackedDatasetSpec, path: str) -> "DatasetCatalog":
    """Generate a dataset and write it straight into a pack at ``path``.

    The build replicates the exact page-allocation order of
    :class:`~repro.storage.scheme.NetworkStorage` (facility file, adjacency
    file, adjacency tree, facility tree) through the same packing and
    bulk-loading code, so the resulting pack is byte-for-byte what packing a
    materialised ``NetworkStorage`` of the same spec would produce — without
    ever holding the graph in memory.  Transient state is the grid-width
    scan window, the shortcut and facility tables, and a temp-file spool of
    per-node page pointers for the adjacency tree's bulk load.
    """
    from repro.network.accessor import AdjacencyRecord, FacilityRecord
    from repro.storage.btree import StaticBPlusTree
    from repro.storage.catalog import (
        SECTION_EDGE_TABLE,
        SECTION_NODE_IDS,
        DatasetCatalog,
        TreeShape,
        _write_facility_index,
    )
    from repro.storage.layout import StoredAdjacencyEntry, pack_record_groups
    from repro.storage.persist import PackWriter, SpoolingDisk

    sizes = RecordSizes()
    shortcuts = _draw_shortcuts(spec)
    num_edges = _count_edges(spec, shortcuts)
    facility_edges = _draw_facilities(spec, num_edges)
    facilities_by_edge: dict[int, list[int]] = {}
    for facility_id, edge_id in enumerate(facility_edges):
        facilities_by_edge.setdefault(edge_id, []).append(facility_id)

    writer = PackWriter(
        path, page_size=spec.page_size, num_cost_types=spec.num_cost_types
    )
    disk = SpoolingDisk(writer)

    # Stage 1 — facility file (costs are pure functions of the edge id, so
    # no topology scan is needed here).
    edge_pages: dict[int, tuple[int, ...]] = {}

    def facility_groups():
        for edge_id in sorted(facilities_by_edge):
            _costs, length = _edge_costs(spec, edge_id)
            yield edge_id, [
                FacilityRecord(fid, edge_id, _facility_offset(spec, fid, length))
                for fid in facilities_by_edge[edge_id]
            ]

    pack_record_groups(
        disk,
        PageKind.FACILITY,
        facility_groups(),
        edge_pages.__setitem__,
        entry_size=sizes.facility_entry(),
        header_size=sizes.facility_header(),
    )

    # Stage 2 — adjacency file; the same scan also emits the node-id and
    # edge-table sections and spools (node, pages) pairs for stage 3.
    node_section = writer.section(SECTION_NODE_IDS)
    edge_section = writer.section(SECTION_EDGE_TABLE)
    edge_row = struct.Struct(f"<qqqd{spec.num_cost_types}d")
    node_spool = tempfile.TemporaryFile()
    spool_header = struct.Struct("<qI")

    def adjacency_groups():
        for node, incident in stream_topology(spec, shortcuts):
            node_section.write(struct.pack("<q", node))
            records = []
            for edge_id, other, first_node in incident:
                costs, length = _edge_costs(spec, edge_id)
                if first_node == node:  # this scan step numbered the edge
                    edge_section.write(
                        edge_row.pack(edge_id, node, other, length, *costs)
                    )
                records.append(
                    StoredAdjacencyEntry(
                        node=node,
                        record=AdjacencyRecord(
                            neighbor=other,
                            edge_id=edge_id,
                            costs=costs,
                            length=length,
                            first_node=first_node,
                            facility_count=len(facilities_by_edge.get(edge_id, ())),
                        ),
                        facility_pages=edge_pages.get(edge_id, ()),
                    )
                )
            yield node, records

    def spool_node_pages(node: int, pages: tuple[int, ...]) -> None:
        node_spool.write(spool_header.pack(node, len(pages)))
        for page_id in pages:
            node_spool.write(struct.pack("<q", page_id))

    pack_record_groups(
        disk,
        PageKind.ADJACENCY,
        adjacency_groups(),
        spool_node_pages,
        entry_size=sizes.adjacency_entry(spec.num_cost_types),
        header_size=sizes.adjacency_header(),
    )

    # Stage 3 — adjacency tree, bulk-loaded from the spooled pointers.
    def spooled_entries():
        node_spool.seek(0)
        while True:
            header = node_spool.read(spool_header.size)
            if not header:
                break
            node, count = spool_header.unpack(header)
            pages = struct.unpack(f"<{count}q", node_spool.read(count * 8))
            yield node, pages

    adjacency_tree = StaticBPlusTree(
        disk, PageKind.ADJACENCY_INDEX, spooled_entries(), presorted=True
    )
    node_spool.close()

    # Stage 4 — facility tree.
    facility_tree = StaticBPlusTree(
        disk,
        PageKind.FACILITY_INDEX,
        (
            (fid, (edge_id, edge_pages.get(edge_id, ())))
            for fid, edge_id in enumerate(facility_edges)
        ),
        presorted=True,
    )
    disk.flush()

    _write_facility_index(writer, edge_pages)
    payload = {
        "directed": False,
        "num_nodes": spec.num_nodes,
        "num_edges": num_edges,
        "num_facilities": spec.num_facilities,
        "page_kind_counts": {
            kind.value: disk.pages_of_kind(kind) for kind in PageKind
        },
        "adjacency_tree": TreeShape(
            root_page_id=adjacency_tree.root_page_id,
            height=adjacency_tree.height,
            num_entries=adjacency_tree.num_entries,
        ).to_payload(),
        "facility_tree": TreeShape(
            root_page_id=facility_tree.root_page_id,
            height=facility_tree.height,
            num_entries=facility_tree.num_entries,
        ).to_payload(),
        "extras": {"generator": "packed-grid", "spec": spec.to_payload()},
    }
    return DatasetCatalog.from_payload(writer.finalize(payload))


def materialize_packed_dataset(spec: PackedDatasetSpec) -> tuple[MultiCostGraph, FacilitySet]:
    """Build the same dataset in memory (small scales; parity tests, benches).

    Replays the identical topology scan, cost draws and facility draws as
    :func:`build_packed_dataset`, so for any spec the returned graph and
    facility set yield a :class:`~repro.storage.scheme.NetworkStorage`
    whose pages match the streamed pack exactly.
    """
    graph = MultiCostGraph(spec.num_cost_types)
    for node in range(spec.num_nodes):
        row, col = divmod(node, spec.cols)
        graph.add_node(node, float(col), float(row))
    shortcuts = _draw_shortcuts(spec)
    for node, incident in stream_topology(spec, shortcuts):
        for edge_id, other, first_node in incident:
            if first_node != node:
                continue  # the other endpoint's scan step adds it
            costs, length = _edge_costs(spec, edge_id)
            graph.add_edge(node, other, costs, length=length, edge_id=edge_id)
    facilities = FacilitySet(graph)
    for facility_id, edge_id in enumerate(_draw_facilities(spec, graph.num_edges)):
        length = graph.edge(edge_id).length
        facilities.add_on_edge(
            facility_id, edge_id, _facility_offset(spec, facility_id, length)
        )
    return graph, facilities
