"""Query-location generation: uniformly random positions on the network."""

from __future__ import annotations

import random

from repro.errors import DataGenerationError
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["generate_query_locations"]


def generate_query_locations(
    graph: MultiCostGraph,
    count: int,
    *,
    seed: int = 41,
    on_nodes: bool = False,
) -> list[NetworkLocation]:
    """``count`` query locations chosen uniformly at random.

    By default queries lie in the middle of edges (offset uniform along the
    edge), matching the paper's setting of query locations "randomly and
    uniformly chosen in the network"; ``on_nodes=True`` snaps them to nodes.
    """
    if count < 0:
        raise DataGenerationError("the number of query locations cannot be negative")
    rng = random.Random(seed)
    locations = []
    if on_nodes:
        node_ids = list(graph.node_ids())
        if not node_ids and count:
            raise DataGenerationError("cannot place queries on a graph without nodes")
        for _ in range(count):
            locations.append(NetworkLocation.at_node(rng.choice(node_ids)))
        return locations
    edges = list(graph.edges())
    if not edges and count:
        raise DataGenerationError("cannot place queries on a graph without edges")
    for _ in range(count):
        edge = rng.choice(edges)
        locations.append(NetworkLocation.on_edge(edge.edge_id, rng.uniform(0.0, edge.length)))
    return locations
