"""Workload bundles: network + costs + facilities + query locations in one object.

A :class:`WorkloadSpec` captures every knob of the paper's experimental
setup (Section VI); :func:`make_workload` materialises it into the graph,
facility set and query locations the benchmark harness runs against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.cost_models import CostDistribution, assign_edge_costs
from repro.datagen.facility_gen import (
    generate_clustered_facilities,
    generate_uniform_facilities,
)
from repro.datagen.queries import generate_query_locations
from repro.datagen.road_network import RoadNetworkSpec, generate_road_network
from repro.errors import DataGenerationError
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["WorkloadSpec", "Workload", "make_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """All data-generation parameters of one experimental configuration."""

    num_nodes: int = 2500
    num_facilities: int = 1000
    num_cost_types: int = 4
    distribution: CostDistribution = CostDistribution.ANTI_CORRELATED
    num_clusters: int = 10
    clustered: bool = True
    num_queries: int = 10
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_cost_types < 1:
            raise DataGenerationError("at least one cost type is required")
        if self.num_queries < 0:
            raise DataGenerationError("the number of queries cannot be negative")


@dataclass
class Workload:
    """A materialised workload ready to be queried or benchmarked."""

    spec: WorkloadSpec
    graph: MultiCostGraph
    facilities: FacilitySet
    queries: list[NetworkLocation] = field(default_factory=list)

    def describe(self) -> dict[str, object]:
        """Summary used by the CLI and EXPERIMENTS.md generation."""
        return {
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges,
            "cost_types": self.graph.num_cost_types,
            "facilities": len(self.facilities),
            "distribution": self.spec.distribution.value,
            "queries": len(self.queries),
        }


def make_workload(spec: WorkloadSpec) -> Workload:
    """Generate the network, edge costs, facilities and query locations of ``spec``."""
    base = generate_road_network(
        RoadNetworkSpec(num_nodes=spec.num_nodes, seed=spec.seed),
        num_cost_types=spec.num_cost_types,
    )
    graph = assign_edge_costs(base, spec.distribution, seed=spec.seed + 1)
    if spec.clustered:
        facilities = generate_clustered_facilities(
            graph,
            spec.num_facilities,
            num_clusters=spec.num_clusters,
            seed=spec.seed + 2,
        )
    else:
        facilities = generate_uniform_facilities(graph, spec.num_facilities, seed=spec.seed + 2)
    queries = generate_query_locations(graph, spec.num_queries, seed=spec.seed + 3)
    return Workload(spec=spec, graph=graph, facilities=facilities, queries=queries)
