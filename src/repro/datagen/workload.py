"""Workload bundles: network + costs + facilities + query locations in one object.

A :class:`WorkloadSpec` captures every knob of the paper's experimental
setup (Section VI); :func:`make_workload` materialises it into the graph,
facility set and query locations the benchmark harness runs against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datagen.cost_models import CostDistribution, assign_edge_costs
from repro.datagen.facility_gen import (
    generate_clustered_facilities,
    generate_uniform_facilities,
)
from repro.datagen.queries import generate_query_locations
from repro.datagen.road_network import RoadNetworkSpec, generate_road_network
from repro.errors import DataGenerationError
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = [
    "WorkloadSpec",
    "Workload",
    "make_workload",
    "workload_spec_to_payload",
    "workload_spec_from_payload",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """All data-generation parameters of one experimental configuration."""

    num_nodes: int = 2500
    num_facilities: int = 1000
    num_cost_types: int = 4
    distribution: CostDistribution = CostDistribution.ANTI_CORRELATED
    num_clusters: int = 10
    clustered: bool = True
    num_queries: int = 10
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_cost_types < 1:
            raise DataGenerationError("at least one cost type is required")
        if self.num_queries < 0:
            raise DataGenerationError("the number of queries cannot be negative")


@dataclass
class Workload:
    """A materialised workload ready to be queried or benchmarked."""

    spec: WorkloadSpec
    graph: MultiCostGraph
    facilities: FacilitySet
    queries: list[NetworkLocation] = field(default_factory=list)

    def describe(self) -> dict[str, object]:
        """Summary used by the CLI and EXPERIMENTS.md generation."""
        return {
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges,
            "cost_types": self.graph.num_cost_types,
            "facilities": len(self.facilities),
            "distribution": self.spec.distribution.value,
            "queries": len(self.queries),
        }


def workload_spec_to_payload(spec: WorkloadSpec) -> dict[str, object]:
    """A plain-JSON dictionary describing ``spec``.

    Workload generation is fully deterministic per spec, so the payload *is*
    the workload for fixture purposes: checking in these few integers pins
    the exact graph, facility set and query locations forever.
    """
    return {
        "num_nodes": spec.num_nodes,
        "num_facilities": spec.num_facilities,
        "num_cost_types": spec.num_cost_types,
        "distribution": spec.distribution.value,
        "num_clusters": spec.num_clusters,
        "clustered": spec.clustered,
        "num_queries": spec.num_queries,
        "seed": spec.seed,
    }


def workload_spec_from_payload(payload: dict[str, object]) -> WorkloadSpec:
    """Rebuild a :class:`WorkloadSpec` from a :func:`workload_spec_to_payload` dictionary."""
    try:
        return WorkloadSpec(
            num_nodes=int(payload["num_nodes"]),  # type: ignore[arg-type]
            num_facilities=int(payload["num_facilities"]),  # type: ignore[arg-type]
            num_cost_types=int(payload["num_cost_types"]),  # type: ignore[arg-type]
            distribution=CostDistribution.parse(str(payload["distribution"])),
            num_clusters=int(payload["num_clusters"]),  # type: ignore[arg-type]
            clustered=bool(payload["clustered"]),
            num_queries=int(payload["num_queries"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
        )
    except KeyError as missing:
        raise DataGenerationError(f"workload payload missing {missing}") from None


def make_workload(spec: WorkloadSpec) -> Workload:
    """Generate the network, edge costs, facilities and query locations of ``spec``."""
    base = generate_road_network(
        RoadNetworkSpec(num_nodes=spec.num_nodes, seed=spec.seed),
        num_cost_types=spec.num_cost_types,
    )
    graph = assign_edge_costs(base, spec.distribution, seed=spec.seed + 1)
    if spec.clustered:
        facilities = generate_clustered_facilities(
            graph,
            spec.num_facilities,
            num_clusters=spec.num_clusters,
            seed=spec.seed + 2,
        )
    else:
        facilities = generate_uniform_facilities(graph, spec.num_facilities, seed=spec.seed + 2)
    queries = generate_query_locations(graph, spec.num_queries, seed=spec.seed + 3)
    return Workload(spec=spec, graph=graph, facilities=facilities, queries=queries)
