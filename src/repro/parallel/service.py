"""Sharded parallel execution of query batches: :class:`ShardedQueryService`.

The batch :class:`~repro.service.QueryService` executes a workload strictly
sequentially, so a multi-core host answers a 100-query batch no faster than a
single core.  This module scales the same workload *out*: the batch is
partitioned into shards (see :mod:`repro.parallel.routing`), each shard runs
on its own worker, and the per-shard :class:`~repro.service.BatchReport`\\ s
are merged back into one report whose outcomes sit in submission order —
indistinguishable, result-wise, from a sequential run.

Worker isolation is the whole trick.  Every worker owns

* an **independent data layer** — a read-only snapshot view of the shared
  engine's accessor (:meth:`repro.storage.NetworkStorage.snapshot_view` or
  :meth:`repro.network.accessor.InMemoryAccessor.snapshot_view`), sharing the
  built network pages copy-free while bringing a private LRU buffer and
  private I/O counters;
* an **independent** :class:`~repro.service.CrossQueryExpansionCache` and
  result memo, so no query ever observes another worker's mutation.

Because the caches only short-circuit reads of immutable records, a sharded
run returns byte-identical results to the sequential service no matter how
requests are routed — the differential-oracle test-suite asserts exactly
that.

Three executors are supported: ``"process"`` (a fork-based process pool —
true multi-core parallelism; the engine is inherited copy-on-write, so
workers share the built network without pickling it), ``"thread"`` (a thread
pool — parallel I/O-style execution inside one interpreter) and ``"serial"``
(the same sharding and merging without any pool, useful as a deterministic
oracle and on single-core hosts).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.api.policy import (
    DEFAULT_POLICY,
    EXECUTORS,
    ExecutionPolicy,
    legacy_kwargs_warning,
)
from repro.core.engine import MCNQueryEngine
from repro.errors import PolicyError, QueryError
from repro.parallel.routing import ROUTINGS, Shard, ShardPlan, plan_shards
from repro.service.cache import CacheStatistics
from repro.service.requests import BatchReport, QueryOutcome, QueryRequest
from repro.service.service import QueryService, validate_request
from repro.network.accessor import AccessStatistics

__all__ = [
    "EXECUTORS",
    "ParallelExecution",
    "ShardReport",
    "ShardedBatchReport",
    "ShardedQueryService",
    "merge_shard_reports",
    "set_shard_timeout",
    "set_worker_fault_hook",
]

@dataclass(frozen=True)
class ParallelExecution:
    """The parallelism knob accepted by :meth:`QueryService.run_batch`.

    ``workers`` is the number of shards (and the pool size); ``routing`` is
    ``"round_robin"`` or ``"locality"``; ``executor`` is ``"process"``
    (default), ``"thread"`` or ``"serial"``.
    """

    workers: int = 2
    routing: str = "round_robin"
    executor: str = "process"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise QueryError("the number of workers must be at least 1")
        if self.routing not in ROUTINGS:
            raise QueryError(f"unknown routing {self.routing!r}; expected one of {ROUTINGS}")
        if self.executor not in EXECUTORS:
            raise QueryError(f"unknown executor {self.executor!r}; expected one of {EXECUTORS}")


@dataclass
class ShardReport:
    """One shard's execution: where it ran and what it cost."""

    index: int
    positions: tuple[int, ...]
    report: BatchReport
    pid: int = 0

    @property
    def size(self) -> int:
        return len(self.positions)

    @property
    def page_reads(self) -> int:
        return self.report.io.page_reads


@dataclass
class ShardedBatchReport(BatchReport):
    """The merged view of a sharded run.

    Extends :class:`~repro.service.BatchReport` (outcomes in submission
    order, summed I/O and cache counters, wall-clock elapsed) with the
    per-shard reports and the run's parallelism parameters, so callers can
    verify that the merged counters equal the sum of the shard counters.
    """

    routing: str = "round_robin"
    executor: str = "serial"
    workers: int = 1
    shards: list[ShardReport] = field(default_factory=list)
    #: Shard indices whose pool worker died (or hung past the deadline) and
    #: that were re-executed serially in the parent.  Empty on a clean run.
    retried_shards: tuple[int, ...] = ()

    def describe(self) -> dict[str, object]:
        summary = super().describe()
        summary.update(
            workers=self.workers,
            routing=self.routing,
            executor=self.executor,
            shards=[shard.size for shard in self.shards],
            retried_shards=list(self.retried_shards),
        )
        return summary


def merge_shard_reports(
    shard_reports: Sequence[ShardReport],
    *,
    elapsed_seconds: float,
    routing: str,
    executor: str,
    workers: int,
    retried_shards: Sequence[int] = (),
) -> ShardedBatchReport:
    """Merge per-shard reports into one submission-ordered aggregate report.

    Outcomes are re-ordered (and re-ticketed) by their original batch
    position, so the merged report is ordered exactly as the sequential
    service would have ordered it; I/O and cache counters are the plain sums
    of the shard counters.
    """
    by_position: dict[int, QueryOutcome] = {}
    io = AccessStatistics()
    cache = CacheStatistics()
    for shard in shard_reports:
        io.accumulate(shard.report.io)
        cache.accumulate(shard.report.cache)
        for position, outcome in zip(shard.positions, shard.report.outcomes):
            outcome.ticket = position
            by_position[position] = outcome
    outcomes = [by_position[position] for position in sorted(by_position)]
    return ShardedBatchReport(
        outcomes=outcomes,
        elapsed_seconds=elapsed_seconds,
        io=io,
        cache=cache,
        routing=routing,
        executor=executor,
        workers=workers,
        shards=list(shard_reports),
        retried_shards=tuple(retried_shards),
    )


def _snapshot_accessor(engine: MCNQueryEngine):
    """A fresh isolated data layer over the engine's (shared, immutable) data."""
    accessor = engine.accessor
    snapshot = getattr(accessor, "snapshot_view", None)
    if snapshot is None:
        raise QueryError(
            f"the engine's data layer ({type(accessor).__name__}) does not support "
            "read-only snapshot views; sharded execution needs NetworkStorage or "
            "InMemoryAccessor"
        )
    return snapshot()


def _make_worker_service(engine: MCNQueryEngine, policy: ExecutionPolicy) -> QueryService:
    # Workers adopt the parent engine's CompiledGraph instead of re-reading
    # (or re-compiling) the network per worker: the snapshot is immutable, so
    # fork workers inherit it copy-on-write and thread workers read it
    # concurrently, while every worker still charges its own snapshot-view
    # buffer and counters.  With no parent snapshot this passes None, which
    # defers to the per-engine default (the REPRO_COMPILED environment toggle).
    worker_engine = MCNQueryEngine(
        engine.graph,
        engine.facilities,
        accessor=_snapshot_accessor(engine),
        compiled=engine.compiled_graph,
        vector=engine.vector_enabled,
    )
    # workers=1 so a worker's own run_batch could never re-shard recursively.
    return QueryService(worker_engine, policy=policy.replace(workers=1))


def _execute_shard(service: QueryService, shard: Shard) -> ShardReport:
    start = time.perf_counter()
    io_before = service.engine.accessor.statistics.snapshot()
    cache_before = service.cache.cache_statistics.snapshot()
    outcomes = [service.execute(request) for request in shard.requests]
    report = BatchReport(
        outcomes=outcomes,
        elapsed_seconds=time.perf_counter() - start,
        io=service.engine.accessor.statistics.since(io_before),
        cache=service.cache.cache_statistics.since(cache_before),
    )
    return ShardReport(index=shard.index, positions=shard.positions, report=report, pid=os.getpid())


# ------------------------------------------------------------------ #
# Fork-based worker plumbing.  The parent stashes its engine + knobs in a
# module global right before the pool forks; children inherit the global
# (copy-on-write, no pickling of the network) and build their own service
# over a snapshot view of the inherited storage.  The lock serialises
# concurrent process-pool launches in one parent: the global must not be
# swapped (or cleared) between another run's pool creation and its fork.
# ------------------------------------------------------------------ #
_FORK_CONTEXT: tuple[MCNQueryEngine, ExecutionPolicy] | None = None
_FORK_SERVICE: QueryService | None = None
_FORK_LOCK = threading.Lock()

# Chaos seams (set in the parent, inherited copy-on-write by fork workers).
# The hook runs inside the worker with the shard index right before the shard
# executes — the fault plane's ``worker_fault_hook`` uses it to kill
# (``os._exit``) or hang a specific worker.  The timeout bounds how long the
# parent waits for any one shard before writing the worker off as hung and
# retrying the shard itself.  Both are ``None`` (and free) in normal runs.
_WORKER_FAULT_HOOK = None
_SHARD_TIMEOUT: float | None = None


def set_worker_fault_hook(hook) -> None:
    """Install (or with ``None`` clear) the per-shard worker fault hook."""
    global _WORKER_FAULT_HOOK
    _WORKER_FAULT_HOOK = hook


def set_shard_timeout(seconds: float | None) -> None:
    """Bound the parent's wait per process shard (``None`` = wait forever)."""
    global _SHARD_TIMEOUT
    _SHARD_TIMEOUT = None if seconds is None else float(seconds)


def _init_fork_worker() -> None:
    global _FORK_SERVICE
    if _FORK_CONTEXT is None:  # pragma: no cover - defensive; set before forking
        raise QueryError("fork worker started without a parent context")
    engine, policy = _FORK_CONTEXT
    _FORK_SERVICE = _make_worker_service(engine, policy)


def _run_shard_in_fork(shard: Shard) -> ShardReport:
    if _FORK_SERVICE is None:  # pragma: no cover - initializer always ran first
        raise QueryError("fork worker has no service")
    if _WORKER_FAULT_HOOK is not None:
        _WORKER_FAULT_HOOK(shard.index)
    return _execute_shard(_FORK_SERVICE, shard)


class ShardedQueryService:
    """Executes query batches across parallel shard workers.

    Parameters
    ----------
    engine:
        The shared engine; its graph, facility set and built storage are the
        read-only substrate every worker snapshots.
    policy:
        An :class:`~repro.api.ExecutionPolicy` supplying the parallelism
        spec (``workers`` / ``routing`` / ``executor``) and the caching
        knobs replicated into every worker.  This is the constructor the
        :class:`repro.api.Session` facade uses.
    workers / routing / executor / memoize_results / harvest_settled / max_cached_entries:
        **Deprecated** keyword equivalents of the policy fields, kept
        working for pre-policy call sites (a :class:`DeprecationWarning` is
        emitted).  ``workers`` is the number of shards / pool size (>= 1,
        default 2); ``routing`` is ``"round_robin"`` or ``"locality"``;
        ``executor`` is ``"process"`` (default; requires the ``fork`` start
        method), ``"thread"`` or ``"serial"``; the caching knobs are
        forwarded to every worker's :class:`~repro.service.QueryService`.

    Example
    -------
    >>> from repro import MCNQueryEngine, SkylineRequest
    >>> from repro.parallel import ShardedQueryService
    >>> from repro.datagen import WorkloadSpec, make_workload
    >>> w = make_workload(WorkloadSpec(num_nodes=150, num_facilities=60, num_queries=4, seed=5))
    >>> engine = MCNQueryEngine(w.graph, w.facilities, use_disk=True, page_size=1024)
    >>> sharded = ShardedQueryService(engine, workers=2, executor="serial")
    >>> report = sharded.run_batch([SkylineRequest(q) for q in w.queries])
    >>> len(report.outcomes), len(report.shards)
    (4, 2)
    """

    _UNSET = object()

    def __init__(
        self,
        engine: MCNQueryEngine,
        *,
        workers: int = _UNSET,  # type: ignore[assignment]
        routing: str = _UNSET,  # type: ignore[assignment]
        executor: str = _UNSET,  # type: ignore[assignment]
        memoize_results: bool = _UNSET,  # type: ignore[assignment]
        harvest_settled: bool = _UNSET,  # type: ignore[assignment]
        max_cached_entries: int | None = _UNSET,  # type: ignore[assignment]
        policy: ExecutionPolicy | None = None,
    ):
        legacy = {
            name: value
            for name, value in (
                ("workers", workers),
                ("routing", routing),
                ("executor", executor),
                ("memoize_results", memoize_results),
                ("harvest_settled", harvest_settled),
                ("max_cached_entries", max_cached_entries),
            )
            if value is not ShardedQueryService._UNSET
        }
        if policy is not None:
            if legacy:
                raise PolicyError(
                    f"pass either policy= or the legacy knobs {sorted(legacy)}, "
                    "not both"
                )
            if not isinstance(policy, ExecutionPolicy):
                raise PolicyError(
                    f"expected an ExecutionPolicy, got {type(policy).__name__}"
                )
        else:
            if legacy:
                legacy_kwargs_warning(
                    "ShardedQueryService",
                    legacy,
                    "workers=..., routing=..., executor=..., memoize_results=...",
                )
            # The pre-policy constructor defaulted to two process workers.
            fields = {"workers": 2, "executor": "process"}
            fields.update(legacy)
            policy = DEFAULT_POLICY.replace(**fields)
        if policy.executor == "process" and "fork" not in multiprocessing.get_all_start_methods():
            raise QueryError(
                "the process executor needs the 'fork' start method (unavailable on "
                "this platform); use executor='thread' instead"
            )
        # Fail fast if the data layer cannot be snapshotted at all.
        _snapshot_accessor(engine)
        self._engine = engine
        self._policy = policy

    @classmethod
    def from_service(
        cls, service: QueryService, parallel: ParallelExecution
    ) -> "ShardedQueryService":
        """A sharded service mirroring an existing sequential service's knobs."""
        return cls(
            service.engine,
            policy=service.policy.replace(
                workers=parallel.workers,
                routing=parallel.routing,
                executor=parallel.executor,
                max_cached_entries=service.cache.max_entries,
            ),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> MCNQueryEngine:
        return self._engine

    @property
    def policy(self) -> ExecutionPolicy:
        """The execution policy (parallelism spec + per-worker caching knobs)."""
        return self._policy

    @property
    def workers(self) -> int:
        return self._policy.workers

    @property
    def routing(self) -> str:
        return self._policy.routing

    @property
    def executor(self) -> str:
        return self._policy.executor

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def plan(self, requests: Sequence[QueryRequest]) -> ShardPlan:
        """The shard plan ``run_batch`` would use for ``requests``."""
        return plan_shards(
            requests, self._policy.workers, routing=self._policy.routing, graph=self._engine.graph
        )

    def run_batch(self, requests: Sequence[QueryRequest]) -> ShardedBatchReport:
        """Execute ``requests`` across the shard workers and merge the reports.

        Results (facilities and their order within each outcome, and the
        order of outcomes) are identical to a sequential
        :meth:`QueryService.run_batch` over the same engine; only the I/O
        split across workers differs.
        """
        for request in requests:
            validate_request(self._engine, request)
        if self._engine.compiled_graph is not None:
            # Refresh the shared snapshot once, here in the caller's thread,
            # before any worker exists.  The facility set is frozen for the
            # duration of the batch, so every worker's own ensure_fresh()
            # is then a no-op revision check — without this, thread-executor
            # workers could race to patch the same stale snapshot mid-search.
            self._engine.compiled_graph.ensure_fresh()
        start = time.perf_counter()
        plan = self.plan(requests)
        retried: tuple[int, ...] = ()
        if not plan.shards:
            shard_reports: list[ShardReport] = []
        elif self._policy.executor == "process" and len(plan.shards) > 1:
            shard_reports, retried = self._run_process(plan)
        elif self._policy.executor == "thread" and len(plan.shards) > 1:
            shard_reports = self._run_thread(plan)
        else:
            shard_reports = self._run_serial(plan)
        return merge_shard_reports(
            shard_reports,
            elapsed_seconds=time.perf_counter() - start,
            routing=self._policy.routing,
            executor=self._policy.executor,
            workers=self._policy.workers,
            retried_shards=retried,
        )

    # ------------------------------------------------------------------ #
    # Executor backends
    # ------------------------------------------------------------------ #
    def _run_serial(self, plan: ShardPlan) -> list[ShardReport]:
        return [
            _execute_shard(_make_worker_service(self._engine, self._policy), shard)
            for shard in plan.shards
        ]

    def _run_thread(self, plan: ShardPlan) -> list[ShardReport]:
        services = [_make_worker_service(self._engine, self._policy) for _ in plan.shards]
        with ThreadPoolExecutor(max_workers=len(plan.shards)) as pool:
            return list(pool.map(_execute_shard, services, plan.shards))

    def _run_process(
        self, plan: ShardPlan
    ) -> tuple[list[ShardReport], tuple[int, ...]]:
        global _FORK_CONTEXT
        self._check_picklable(plan)
        context = multiprocessing.get_context("fork")
        reports: dict[int, ShardReport] = {}
        failed: list[Shard] = []
        with _FORK_LOCK:
            _FORK_CONTEXT = (self._engine, self._policy)
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self._policy.workers, len(plan.shards)),
                    mp_context=context,
                    initializer=_init_fork_worker,
                ) as pool:
                    futures = [
                        (shard, pool.submit(_run_shard_in_fork, shard))
                        for shard in plan.shards
                    ]
                    for shard, future in futures:
                        try:
                            reports[shard.index] = future.result(timeout=_SHARD_TIMEOUT)
                        except (BrokenProcessPool, _FuturesTimeoutError, TimeoutError):
                            # A worker died (BrokenProcessPool poisons every
                            # pending future of the pool) or hung past the
                            # deadline.  The shard's *work* is not lost: it is
                            # re-executed below, in the parent, once the pool
                            # is out of the way.
                            failed.append(shard)
            finally:
                _FORK_CONTEXT = None
        retried: list[int] = []
        for shard in failed:
            reports[shard.index] = _execute_shard(
                _make_worker_service(self._engine, self._policy), shard
            )
            retried.append(shard.index)
        return [reports[shard.index] for shard in plan.shards], tuple(retried)

    @staticmethod
    def _check_picklable(plan: ShardPlan) -> None:
        try:
            pickle.dumps(plan.shards)
        except Exception as error:
            raise QueryError(
                "the process executor must pickle requests to pool workers and "
                f"this batch cannot be pickled ({error}); use executor='thread' "
                "or replace custom aggregate callables with the built-in aggregates"
            ) from None
