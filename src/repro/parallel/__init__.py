"""Sharded parallel workload execution.

The sequential :class:`~repro.service.QueryService` shares one cross-query
cache across a whole batch; this package shares the *machine* across the
batch instead.  :func:`~repro.parallel.routing.plan_shards` partitions a
request trace into shards (round-robin, or locality-aware so network-close
queries keep warming the same worker's cache), and
:class:`ShardedQueryService` executes the shards on a process or thread pool
in which every worker owns an independent data layer — a read-only snapshot
view of the shared built network — plus its own cross-query cache.  Merged
reports preserve sequential result ordering and sum the per-shard counters.
"""

from repro.parallel.routing import ROUTINGS, Shard, ShardPlan, plan_shards
from repro.parallel.service import (
    EXECUTORS,
    ParallelExecution,
    ShardReport,
    ShardedBatchReport,
    ShardedQueryService,
    merge_shard_reports,
)

__all__ = [
    "EXECUTORS",
    "ROUTINGS",
    "ParallelExecution",
    "Shard",
    "ShardPlan",
    "ShardReport",
    "ShardedBatchReport",
    "ShardedQueryService",
    "merge_shard_reports",
    "plan_shards",
]
