"""Shard planning: how a batch of requests is split across parallel workers.

Two routing policies are offered:

* **round-robin** — request ``i`` goes to shard ``i mod workers``.  Shards
  are balanced to within one request and the policy needs no knowledge of
  the network, but co-located queries usually land on different shards, so
  each worker's cross-query cache re-fetches the same neighbourhood.
* **locality** — requests are ordered along a Z-order (Morton) space-filling
  curve over their network coordinates and cut into contiguous runs, one per
  shard.  Queries that are close on the network end up on the same worker,
  preserving the cross-query cache reuse that makes batching worthwhile in
  the first place (shards stay balanced to within one request too).

Routing is pure partitioning: it decides *where* a request runs, never *how*,
so both policies produce identical results for every request — a property the
test-suite asserts over randomized workloads.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.api.policy import ROUTINGS
from repro.errors import QueryError
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation
from repro.service.requests import QueryRequest

__all__ = ["ROUTINGS", "Shard", "ShardPlan", "plan_shards"]

_MORTON_BITS = 16


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the batch: the requests plus their batch positions."""

    index: int
    positions: tuple[int, ...]
    requests: tuple[QueryRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True)
class ShardPlan:
    """The full partition of one batch (only non-empty shards are kept)."""

    routing: str
    workers: int
    shards: tuple[Shard, ...]

    @property
    def total_requests(self) -> int:
        return sum(len(shard) for shard in self.shards)


def _location_point(graph: MultiCostGraph, location: NetworkLocation) -> tuple[float, float]:
    """The planar coordinates of a network location (edge points interpolated)."""
    if location.node_id is not None:
        node = graph.node(location.node_id)
        return (node.x, node.y)
    edge = graph.edge(location.edge_id)  # type: ignore[arg-type]
    u, v = graph.node(edge.u), graph.node(edge.v)
    fraction = location.offset / edge.length if edge.length else 0.0
    return (u.x + fraction * (v.x - u.x), u.y + fraction * (v.y - u.y))


def _interleave(value: int) -> int:
    """Spread the low 16 bits of ``value`` so a second coordinate can slot between."""
    value &= (1 << _MORTON_BITS) - 1
    value = (value | (value << 8)) & 0x00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F
    value = (value | (value << 2)) & 0x33333333
    value = (value | (value << 1)) & 0x55555555
    return value


def _morton_keys(points: Sequence[tuple[float, float]]) -> list[int]:
    """Z-order key of every point, quantized to a 2^16 grid over the bounding box."""
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max_x - min_x or 1.0
    span_y = max_y - min_y or 1.0
    scale = (1 << _MORTON_BITS) - 1
    keys = []
    for x, y in points:
        qx = int((x - min_x) / span_x * scale)
        qy = int((y - min_y) / span_y * scale)
        keys.append(_interleave(qx) | (_interleave(qy) << 1))
    return keys


def plan_shards(
    requests: Sequence[QueryRequest],
    workers: int,
    *,
    routing: str = "round_robin",
    graph: MultiCostGraph | None = None,
) -> ShardPlan:
    """Partition ``requests`` into at most ``workers`` shards.

    ``routing`` is ``"round_robin"`` or ``"locality"``; the latter requires
    the ``graph`` the request locations live on.  Both policies are
    deterministic per input and keep shard sizes balanced to within one
    request; empty shards (more workers than requests) are dropped.
    """
    if workers < 1:
        raise QueryError("the number of workers must be at least 1")
    if routing not in ROUTINGS:
        raise QueryError(f"unknown routing {routing!r}; expected one of {ROUTINGS}")

    if routing == "locality" and len(requests) > 1 and workers > 1:
        if graph is None:
            raise QueryError("locality routing needs the graph the queries live on")
        points = [_location_point(graph, request.location) for request in requests]
        keys = _morton_keys(points)
        # Stable order along the Z-curve; ties fall back to batch position.
        order = sorted(range(len(requests)), key=lambda i: (keys[i], i))
    else:
        order = list(range(len(requests)))

    buckets: list[list[int]] = [[] for _ in range(workers)]
    if routing == "locality":
        # Contiguous runs along the curve, sizes balanced to within one.
        base, extra = divmod(len(order), workers)
        cursor = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            buckets[index] = order[cursor : cursor + size]
            cursor += size
    else:
        for position in order:
            buckets[position % workers].append(position)

    shards = tuple(
        Shard(
            index=index,
            positions=tuple(positions),
            requests=tuple(requests[position] for position in positions),
        )
        for index, positions in enumerate(buckets)
        if positions
    )
    return ShardPlan(routing=routing, workers=workers, shards=shards)
