"""repro: preference queries in large multi-cost transportation networks.

A from-scratch reproduction of Mouratidis, Lin & Yiu, "Preference Queries in
Large Multi-Cost Transportation Networks" (ICDE 2010): skyline and top-k
queries over facilities located on a road network whose edges carry multiple
cost types, processed with the Local Search Algorithm (LSA) and the Combined
Expansion Algorithm (CEA) over a disk-resident storage scheme — plus a
service layer (:mod:`repro.service`) that executes whole batches of queries
against one shared engine through a cross-query expansion cache.

Typical single-query usage::

    from repro import MCNQueryEngine, NetworkLocation
    from repro.datagen import WorkloadSpec, make_workload

    workload = make_workload(WorkloadSpec(num_nodes=900, num_facilities=300))
    engine = MCNQueryEngine(workload.graph, workload.facilities, use_disk=True)
    query = workload.queries[0]

    skyline = engine.skyline(query, algorithm="cea")
    best = engine.top_k(query, k=4, weights=[0.4, 0.3, 0.2, 0.1])

Batch usage (shared expansion state across queries)::

    from repro import QueryService, SkylineRequest, TopKRequest

    service = QueryService(engine)
    report = service.run_batch(
        [SkylineRequest(q) for q in workload.queries]
    )
    report.page_reads  # far fewer than the sum of one-shot queries

Parallel usage (the batch sharded across workers, each with its own
data-layer snapshot and cross-query cache; results and their order are
identical to the sequential service)::

    from repro import ParallelExecution

    report = service.run_batch(
        [SkylineRequest(q) for q in workload.queries],
        parallel=ParallelExecution(workers=4, routing="locality"),
    )

Continuous usage (long-lived subscriptions maintained incrementally while
facilities are inserted and deleted — see :mod:`repro.monitor`)::

    from repro import MonitoringService
    from repro.monitor import FacilityInsert, UpdateTick

    monitor = MonitoringService(workload.graph, workload.facilities)
    sid = monitor.subscribe(SkylineRequest(query))
    tick_report = monitor.apply_tick(
        UpdateTick((FacilityInsert(9000, edge_id=5, offset=1.0),))
    )
    tick_report.deltas[0].entered  # facilities that joined the skyline

Fast path (the columnar expansion kernel; answers and I/O accounting are
bit-identical to the accessor path, queries are just faster)::

    engine = MCNQueryEngine(workload.graph, workload.facilities, compiled=True)
    engine.skyline(query)          # runs on the ExpansionKernel
    # or globally: REPRO_COMPILED=1 in the environment
"""

from repro.core.aggregates import MaxCost, WeightedLpNorm, WeightedSum
from repro.core.engine import MCNQueryEngine
from repro.core.incremental import IncrementalTopK
from repro.core.kernel import ExpansionKernel
from repro.core.maintenance import SkylineMaintainer, TopKMaintainer
from repro.core.results import (
    QueryStatistics,
    RankedFacility,
    SkylineFacility,
    SkylineResult,
    TopKResult,
)
from repro.core.skyline import ProbingPolicy
from repro.errors import (
    DataGenerationError,
    FacilityError,
    GraphError,
    LocationError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.monitor import (
    DeltaReport,
    FacilityDelete,
    FacilityInsert,
    MonitoringService,
    QueryRelocation,
    TickReport,
    UpdateStream,
    UpdateTick,
)
from repro.network.compiled import CompiledGraph
from repro.network.costs import CostVector
from repro.network.facilities import Facility, FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation
from repro.parallel import (
    ParallelExecution,
    ShardedBatchReport,
    ShardedQueryService,
)
from repro.service import (
    BatchReport,
    CrossQueryExpansionCache,
    QueryOutcome,
    QueryService,
    SkylineRequest,
    TopKRequest,
)
from repro.storage.scheme import NetworkStorage, StorageSnapshotView

__version__ = "1.4.0"

__all__ = [
    "BatchReport",
    "CompiledGraph",
    "CostVector",
    "CrossQueryExpansionCache",
    "DataGenerationError",
    "DeltaReport",
    "ExpansionKernel",
    "Facility",
    "FacilityDelete",
    "FacilityError",
    "FacilityInsert",
    "FacilitySet",
    "GraphError",
    "IncrementalTopK",
    "LocationError",
    "MaxCost",
    "MCNQueryEngine",
    "MonitoringService",
    "MultiCostGraph",
    "NetworkLocation",
    "NetworkStorage",
    "ParallelExecution",
    "ProbingPolicy",
    "QueryError",
    "QueryOutcome",
    "QueryRelocation",
    "QueryService",
    "QueryStatistics",
    "RankedFacility",
    "ReproError",
    "SkylineFacility",
    "ShardedBatchReport",
    "ShardedQueryService",
    "SkylineMaintainer",
    "SkylineRequest",
    "SkylineResult",
    "StorageError",
    "StorageSnapshotView",
    "TickReport",
    "TopKRequest",
    "TopKMaintainer",
    "TopKResult",
    "UpdateStream",
    "UpdateTick",
    "WeightedLpNorm",
    "WeightedSum",
    "__version__",
]
