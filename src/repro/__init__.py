"""repro: preference queries in large multi-cost transportation networks.

A from-scratch reproduction of Mouratidis, Lin & Yiu, "Preference Queries in
Large Multi-Cost Transportation Networks" (ICDE 2010): skyline and top-k
queries over facilities located on a road network whose edges carry multiple
cost types, processed with the Local Search Algorithm (LSA) and the Combined
Expansion Algorithm (CEA) over a disk-resident storage scheme — grown into a
query-serving system with batched, sharded-parallel and continuously
monitored execution.

The public entry point is the :mod:`repro.api` facade: one
:class:`~repro.api.Session` owns the dataset, one declarative
:class:`~repro.api.ExecutionPolicy` (frozen, JSON-serialisable) says how to
execute, and every call returns a uniform response envelope::

    from repro import SkylineRequest, TopKRequest
    from repro.api import ExecutionPolicy, Session
    from repro.datagen import WorkloadSpec, make_workload

    workload = make_workload(WorkloadSpec(num_nodes=900, num_facilities=300))
    session = Session(workload.graph, workload.facilities,
                      policy=ExecutionPolicy(residency="disk"))
    query = workload.queries[0]

    # One-shot: a Response with the answer, I/O counters and the policy.
    response = session.skyline(query)
    best = session.top_k(query, k=4, weights=[0.4, 0.3, 0.2, 0.1])

    # Batch: one shared cross-query expansion cache; page reads are far
    # fewer than the sum of one-shot queries.
    batch = session.run_batch([SkylineRequest(q) for q in workload.queries])

    # Parallel: the same batch sharded across workers (identical results,
    # merged counters) — just a policy override.
    sharded = session.run_batch(
        [SkylineRequest(q) for q in workload.queries],
        policy=session.policy.replace(workers=4, routing="locality"),
    )

    # Continuous: long-lived subscriptions maintained incrementally while
    # facilities are inserted and deleted (see repro.monitor).
    from repro.monitor import FacilityInsert, UpdateTick

    handle = session.monitor([SkylineRequest(query)])
    tick = handle.tick(UpdateTick((FacilityInsert(9000, edge_id=5, offset=1.0),)))
    tick.deltas[0].entered  # facilities that joined the skyline

    # Fast path: the columnar expansion kernel — answers and I/O accounting
    # bit-identical, queries just faster.  Or globally: REPRO_COMPILED=1.
    fast = session.run_batch(
        [SkylineRequest(query)], policy=session.policy.replace(compiled="on")
    )

Datasets can also live on disk as single checksummed *pack* files
(:mod:`repro.storage.persist` / :mod:`repro.storage.catalog`): build once
with ``repro-mcn build-dataset`` (streamed, bounded RSS even at millions of
nodes), then query straight off an ``mmap`` — standalone via
``Session.from_dataset(path)`` or as a residency
(``ExecutionPolicy(residency="dataset", dataset_path=path)``), with answers
and I/O counters bit-identical to the in-RAM simulated disk.

The :mod:`repro.serve` tier puts the session behind a wire: a
dependency-free asyncio serving layer (pure HTTP/1.1 + SSE transport, an
in-process test transport and an optional ASGI adapter) with admission
control, per-request deadlines, rolling latency percentiles and streamed
per-subscription deltas — every concurrent workload provably bit-identical
to sequential library calls (``repro-mcn serve --replay``).

The pre-facade stacks stay available for low-level work:
:class:`MCNQueryEngine` (one-shot calls and search objects),
:class:`QueryService` (batch + submit/drain streaming),
:class:`ShardedQueryService` and :class:`MonitoringService`.  Their
pre-policy keyword arguments keep working behind thin shims that emit
:class:`DeprecationWarning`\\ s; new code passes ``policy=`` or goes through
the session.
"""

from repro.api import (
    BatchResponse,
    ExecutionPolicy,
    MonitorHandle,
    Response,
    Session,
    TickResponse,
)
from repro.core.aggregates import MaxCost, WeightedLpNorm, WeightedSum
from repro.core.engine import MCNQueryEngine
from repro.core.incremental import IncrementalTopK
from repro.core.kernel import ExpansionKernel
from repro.core.maintenance import SkylineMaintainer, TopKMaintainer
from repro.core.results import (
    QueryStatistics,
    RankedFacility,
    SkylineFacility,
    SkylineResult,
    TopKResult,
)
from repro.core.skyline import ProbingPolicy
from repro.errors import (
    DataGenerationError,
    FacilityError,
    GraphError,
    LocationError,
    PolicyError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.monitor import (
    DeltaReport,
    EdgeCostUpdate,
    FacilityDelete,
    FacilityInsert,
    MonitoringService,
    QueryRelocation,
    TickReport,
    UpdateStream,
    UpdateTick,
)
from repro.network.compiled import CompiledGraph
from repro.network.costs import CostVector
from repro.network.facilities import Facility, FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation
from repro.parallel import (
    ParallelExecution,
    ShardedBatchReport,
    ShardedQueryService,
)
from repro.service import (
    BatchReport,
    CrossQueryExpansionCache,
    QueryOutcome,
    QueryService,
    SkylineRequest,
    TopKRequest,
)
from repro.storage.scheme import NetworkStorage, StorageSnapshotView
from repro.temporal import (
    SkylineSweepRequest,
    SweepResponse,
    TemporalExecutor,
    TopKSweepRequest,
)
from repro.timedep import TimeVaryingMCN, peak_profile, stable_intervals

__version__ = "1.9.0"

__all__ = [
    "BatchReport",
    "BatchResponse",
    "CompiledGraph",
    "CostVector",
    "CrossQueryExpansionCache",
    "DataGenerationError",
    "DeltaReport",
    "EdgeCostUpdate",
    "ExecutionPolicy",
    "ExpansionKernel",
    "Facility",
    "FacilityDelete",
    "FacilityError",
    "FacilityInsert",
    "FacilitySet",
    "GraphError",
    "IncrementalTopK",
    "LocationError",
    "MaxCost",
    "MCNQueryEngine",
    "MonitorHandle",
    "MonitoringService",
    "MultiCostGraph",
    "NetworkLocation",
    "NetworkStorage",
    "ParallelExecution",
    "PolicyError",
    "ProbingPolicy",
    "QueryError",
    "QueryOutcome",
    "QueryRelocation",
    "QueryService",
    "QueryStatistics",
    "RankedFacility",
    "ReproError",
    "Response",
    "Session",
    "SkylineFacility",
    "ShardedBatchReport",
    "ShardedQueryService",
    "SkylineMaintainer",
    "SkylineRequest",
    "SkylineResult",
    "SkylineSweepRequest",
    "StorageError",
    "StorageSnapshotView",
    "SweepResponse",
    "TemporalExecutor",
    "TickReport",
    "TickResponse",
    "TimeVaryingMCN",
    "TopKRequest",
    "TopKMaintainer",
    "TopKResult",
    "TopKSweepRequest",
    "UpdateStream",
    "UpdateTick",
    "peak_profile",
    "stable_intervals",
    "WeightedLpNorm",
    "WeightedSum",
    "__version__",
]
