"""Execution of one experimental configuration: build data, run queries, average metrics.

The paper reports total processing time, dominated by I/O.  In a simulated
environment the deterministic analogue of I/O time is the number of page
reads issued against the storage layer, so the runner records both wall-clock
time and page reads (plus buffer hits, nearest-neighbour retrievals and
result sizes) averaged over the configuration's query locations.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.bench.config import ExperimentConfig
from repro.core.aggregates import WeightedSum
from repro.core.baseline import baseline_skyline, baseline_top_k
from repro.core.skyline import ProbingPolicy, MCNSkylineSearch
from repro.core.topk import MCNTopKSearch
from repro.datagen.cost_models import CostDistribution
from repro.datagen.workload import Workload, WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.storage.scheme import NetworkStorage

__all__ = [
    "AlgorithmMeasurement",
    "TrialResult",
    "build_environment",
    "run_skyline_trial",
    "run_topk_trial",
]

SKYLINE_ALGORITHMS = ("lsa", "cea")
TOPK_ALGORITHMS = ("lsa", "cea")


@dataclass
class AlgorithmMeasurement:
    """Averaged metrics of one algorithm over the trial's query locations."""

    algorithm: str
    query_type: str
    queries: int = 0
    mean_elapsed_seconds: float = 0.0
    mean_page_reads: float = 0.0
    mean_buffer_hits: float = 0.0
    mean_adjacency_requests: float = 0.0
    mean_facility_requests: float = 0.0
    mean_nn_retrievals: float = 0.0
    mean_result_size: float = 0.0

    def record(self, elapsed: float, statistics, result_size: int) -> None:
        """Fold one query's metrics into the running averages."""
        n = self.queries
        self.mean_elapsed_seconds = (self.mean_elapsed_seconds * n + elapsed) / (n + 1)
        self.mean_page_reads = (self.mean_page_reads * n + statistics.io.page_reads) / (n + 1)
        self.mean_buffer_hits = (self.mean_buffer_hits * n + statistics.io.buffer_hits) / (n + 1)
        self.mean_adjacency_requests = (
            self.mean_adjacency_requests * n + statistics.io.adjacency_requests
        ) / (n + 1)
        self.mean_facility_requests = (
            self.mean_facility_requests * n + statistics.io.facility_requests
        ) / (n + 1)
        self.mean_nn_retrievals = (self.mean_nn_retrievals * n + statistics.nn_retrievals) / (n + 1)
        self.mean_result_size = (self.mean_result_size * n + result_size) / (n + 1)
        self.queries = n + 1


@dataclass
class TrialResult:
    """All measurements of one configuration (one sweep point)."""

    config: ExperimentConfig
    query_type: str
    measurements: dict[str, AlgorithmMeasurement] = field(default_factory=dict)

    def speedup(self, slower: str = "lsa", faster: str = "cea") -> float:
        """Ratio of page reads (the paper's dominant cost) between two algorithms."""
        slow = self.measurements[slower].mean_page_reads
        fast = self.measurements[faster].mean_page_reads
        return slow / fast if fast else float("inf")


def build_environment(config: ExperimentConfig) -> tuple[Workload, NetworkStorage]:
    """Generate the workload of a configuration and its disk-resident storage."""
    workload = make_workload(
        WorkloadSpec(
            num_nodes=config.num_nodes,
            num_facilities=config.num_facilities,
            num_cost_types=config.num_cost_types,
            distribution=config.distribution,
            num_clusters=config.num_clusters,
            num_queries=config.num_queries,
            seed=config.seed,
        )
    )
    storage = NetworkStorage.build(
        workload.graph,
        workload.facilities,
        page_size=config.page_size,
        buffer_fraction=config.buffer_fraction,
    )
    return workload, storage


def _run_one_skyline(
    algorithm: str, storage: NetworkStorage, workload: Workload, query, probing: ProbingPolicy
):
    if algorithm == "baseline":
        return baseline_skyline(storage, workload.graph, query)
    search = MCNSkylineSearch(
        storage,
        workload.graph,
        query,
        share_accesses=(algorithm == "cea"),
        probing=probing,
    )
    return search.run()


def run_skyline_trial(
    config: ExperimentConfig,
    *,
    algorithms: tuple[str, ...] = SKYLINE_ALGORITHMS,
    probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
    environment: tuple[Workload, NetworkStorage] | None = None,
) -> TrialResult:
    """Run the skyline query of every query location with every algorithm."""
    workload, storage = environment or build_environment(config)
    trial = TrialResult(config=config, query_type="skyline")
    for algorithm in algorithms:
        trial.measurements[algorithm] = AlgorithmMeasurement(algorithm, "skyline")
    reference: set | None = None
    for query in workload.queries:
        for algorithm in algorithms:
            storage.reset_statistics(clear_buffer=True)
            start = time.perf_counter()
            result = _run_one_skyline(algorithm, storage, workload, query, probing)
            elapsed = time.perf_counter() - start
            trial.measurements[algorithm].record(elapsed, result.statistics, len(result))
            if reference is None:
                reference = result.facility_ids()
            elif algorithm in ("lsa", "cea") and result.facility_ids() != reference:
                raise QueryError(
                    f"algorithm {algorithm} disagreed with the reference skyline for {query}"
                )
        reference = None
    return trial


def run_topk_trial(
    config: ExperimentConfig,
    *,
    algorithms: tuple[str, ...] = TOPK_ALGORITHMS,
    environment: tuple[Workload, NetworkStorage] | None = None,
) -> TrialResult:
    """Run the top-k query of every query location with every algorithm.

    The aggregate cost function is a weighted sum with independently random
    coefficients (re-drawn per query location, shared by all algorithms), as
    in the paper.
    """
    workload, storage = environment or build_environment(config)
    trial = TrialResult(config=config, query_type="top-k")
    for algorithm in algorithms:
        trial.measurements[algorithm] = AlgorithmMeasurement(algorithm, "top-k")
    rng = random.Random(config.seed + 97)
    for query in workload.queries:
        weights = WeightedSum.random(config.num_cost_types, rng)
        reference_scores: list[float] | None = None
        for algorithm in algorithms:
            storage.reset_statistics(clear_buffer=True)
            start = time.perf_counter()
            if algorithm == "baseline":
                result = baseline_top_k(storage, workload.graph, query, weights, config.k)
            else:
                result = MCNTopKSearch(
                    storage,
                    workload.graph,
                    query,
                    weights,
                    config.k,
                    share_accesses=(algorithm == "cea"),
                ).run()
            elapsed = time.perf_counter() - start
            trial.measurements[algorithm].record(elapsed, result.statistics, len(result))
            scores = [round(score, 6) for score in result.scores()]
            if reference_scores is None:
                reference_scores = scores
            elif scores != reference_scores:
                raise QueryError(
                    f"algorithm {algorithm} disagreed with the reference top-k for {query}"
                )
    return trial
