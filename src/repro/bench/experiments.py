"""Per-figure experiment drivers for Section VI of the paper.

Each function sweeps the parameter of the corresponding figure, runs LSA and
CEA over the same workload/query set at every sweep point, and returns an
:class:`ExperimentSeries` whose rows carry the averaged metrics.  The
benchmark targets under ``benchmarks/`` and the CLI both call into this
module, and ``EXPERIMENTS.md`` is produced from its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.bench.config import DEFAULT_SCALE, ExperimentConfig, ExperimentScale
from repro.bench.runner import TrialResult, build_environment, run_skyline_trial, run_topk_trial
from repro.core.skyline import ProbingPolicy
from repro.datagen.cost_models import CostDistribution
from repro.errors import QueryError

__all__ = [
    "ExperimentRow",
    "ExperimentSeries",
    "effect_of_facilities",
    "effect_of_cost_types",
    "effect_of_distribution",
    "effect_of_buffer",
    "effect_of_k",
    "ablation_probing_policy",
    "ablation_versus_baseline",
    "EXPERIMENTS",
    "run_experiment",
]


@dataclass
class ExperimentRow:
    """One sweep point: the parameter value plus the per-algorithm trial metrics."""

    parameter: str
    value: object
    trial: TrialResult

    def metric(self, algorithm: str, name: str = "mean_page_reads") -> float:
        return getattr(self.trial.measurements[algorithm], name)


@dataclass
class ExperimentSeries:
    """All sweep points of one figure."""

    experiment_id: str
    figure: str
    query_type: str
    parameter: str
    rows: list[ExperimentRow] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        return list(self.rows[0].trial.measurements) if self.rows else []

    def series(self, algorithm: str, metric: str = "mean_page_reads") -> list[tuple[object, float]]:
        """The ``(parameter value, metric)`` curve of one algorithm — a figure line."""
        return [(row.value, row.metric(algorithm, metric)) for row in self.rows]


def _sweep(
    experiment_id: str,
    figure: str,
    query_type: str,
    parameter: str,
    values: Sequence[object],
    make_config: Callable[[object], ExperimentConfig],
    *,
    algorithms: tuple[str, ...] = ("lsa", "cea"),
    probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
) -> ExperimentSeries:
    series = ExperimentSeries(experiment_id, figure, query_type, parameter)
    for value in values:
        config = make_config(value)
        if query_type == "skyline":
            trial = run_skyline_trial(config, algorithms=algorithms, probing=probing)
        else:
            trial = run_topk_trial(config, algorithms=algorithms)
        series.rows.append(ExperimentRow(parameter, value, trial))
    return series


def effect_of_facilities(
    query_type: str, scale: ExperimentScale = DEFAULT_SCALE
) -> ExperimentSeries:
    """Figures 8(a) / 10(a): processing cost versus the number of facilities |P|."""
    base = ExperimentConfig.defaults_for(scale)
    figure = "Fig. 8(a)" if query_type == "skyline" else "Fig. 10(a)"
    experiment_id = "E1" if query_type == "skyline" else "E5"
    return _sweep(
        experiment_id,
        figure,
        query_type,
        "|P|",
        scale.sweep_facilities(),
        lambda count: base.with_(num_facilities=int(count)),
    )


def effect_of_cost_types(
    query_type: str, scale: ExperimentScale = DEFAULT_SCALE
) -> ExperimentSeries:
    """Figures 8(b) / 10(b): processing cost versus the number of cost types d."""
    base = ExperimentConfig.defaults_for(scale)
    figure = "Fig. 8(b)" if query_type == "skyline" else "Fig. 10(b)"
    experiment_id = "E2" if query_type == "skyline" else "E6"
    return _sweep(
        experiment_id,
        figure,
        query_type,
        "d",
        scale.sweep_cost_types(),
        lambda d: base.with_(num_cost_types=int(d)),
    )


def effect_of_distribution(
    query_type: str, scale: ExperimentScale = DEFAULT_SCALE
) -> ExperimentSeries:
    """Figures 9(a) / 11(a): processing cost versus the edge-cost distribution."""
    base = ExperimentConfig.defaults_for(scale)
    figure = "Fig. 9(a)" if query_type == "skyline" else "Fig. 11(a)"
    experiment_id = "E3" if query_type == "skyline" else "E7"
    distributions = (
        CostDistribution.ANTI_CORRELATED,
        CostDistribution.INDEPENDENT,
        CostDistribution.CORRELATED,
    )
    return _sweep(
        experiment_id,
        figure,
        query_type,
        "distribution",
        [d.value for d in distributions],
        lambda name: base.with_(distribution=CostDistribution.parse(str(name))),
    )


def effect_of_buffer(
    query_type: str, scale: ExperimentScale = DEFAULT_SCALE
) -> ExperimentSeries:
    """Figures 9(b) / 11(b): processing cost versus the LRU buffer size (0 %–2 %)."""
    base = ExperimentConfig.defaults_for(scale)
    figure = "Fig. 9(b)" if query_type == "skyline" else "Fig. 11(b)"
    experiment_id = "E4" if query_type == "skyline" else "E8"
    return _sweep(
        experiment_id,
        figure,
        query_type,
        "buffer %",
        [fraction * 100 for fraction in scale.sweep_buffers()],
        lambda percent: base.with_(buffer_fraction=float(percent) / 100.0),
    )


def effect_of_k(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentSeries:
    """Figure 12: top-k processing cost versus k."""
    base = ExperimentConfig.defaults_for(scale)
    return _sweep(
        "E9",
        "Fig. 12",
        "top-k",
        "k",
        scale.sweep_k(),
        lambda k: base.with_(k=int(k)),
    )


def ablation_probing_policy(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentSeries:
    """Extra experiment E10: round-robin versus smallest-/largest-first probing (Fig. 4 discussion)."""
    base = ExperimentConfig.defaults_for(scale)
    series = ExperimentSeries("E10", "Section IV-A discussion", "skyline", "probing policy")
    environment = build_environment(base)
    for policy in (ProbingPolicy.ROUND_ROBIN, ProbingPolicy.SMALLEST_FIRST, ProbingPolicy.LARGEST_FIRST):
        trial = run_skyline_trial(base, algorithms=("lsa", "cea"), probing=policy, environment=environment)
        series.rows.append(ExperimentRow("probing policy", policy.value, trial))
    return series


def ablation_versus_baseline(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentSeries:
    """Extra experiment E11: LSA/CEA against the straightforward d-full-expansion baseline."""
    base = ExperimentConfig.defaults_for(scale)
    series = ExperimentSeries("E11", "Section IV introduction", "skyline", "algorithm set")
    trial = run_skyline_trial(base, algorithms=("baseline", "lsa", "cea"))
    series.rows.append(ExperimentRow("algorithm set", "baseline vs LSA vs CEA", trial))
    return series


#: Registry used by the CLI: experiment id -> (description, callable(scale) -> series).
EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentScale], ExperimentSeries]]] = {
    "fig8a": ("skyline: effect of |P|", lambda scale: effect_of_facilities("skyline", scale)),
    "fig8b": ("skyline: effect of d", lambda scale: effect_of_cost_types("skyline", scale)),
    "fig9a": ("skyline: effect of cost distribution", lambda scale: effect_of_distribution("skyline", scale)),
    "fig9b": ("skyline: effect of buffer size", lambda scale: effect_of_buffer("skyline", scale)),
    "fig10a": ("top-k: effect of |P|", lambda scale: effect_of_facilities("top-k", scale)),
    "fig10b": ("top-k: effect of d", lambda scale: effect_of_cost_types("top-k", scale)),
    "fig11a": ("top-k: effect of cost distribution", lambda scale: effect_of_distribution("top-k", scale)),
    "fig11b": ("top-k: effect of buffer size", lambda scale: effect_of_buffer("top-k", scale)),
    "fig12": ("top-k: effect of k", effect_of_k),
    "ablation-probing": ("ablation: probing policy", ablation_probing_policy),
    "ablation-baseline": ("ablation: LSA/CEA vs straightforward baseline", ablation_versus_baseline),
}


def run_experiment(name: str, scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentSeries:
    """Run one named experiment (see :data:`EXPERIMENTS` for the registry)."""
    try:
        _description, factory = EXPERIMENTS[name]
    except KeyError:
        raise QueryError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}") from None
    return factory(scale)
