"""Cold-cache bench family: file-backed packs vs the simulated disk.

The simulated-disk benchmarks always query a storage that was *just built*
in RAM — the OS page cache, the Python object graph and the pack are one
and the same, so they cannot say what a genuinely cold dataset costs.  This
family does: it streams a dataset pack to a file (never materialising the
graph), re-opens it with checksum verification, and runs queries over the
``mmap``-backed :class:`~repro.storage.persist.FileDisk` through a cold LRU
buffer — measuring wall-clock and peak-RSS growth per phase.

For specs small enough to materialise, the optional *compare* leg builds
the same dataset on the in-RAM :class:`~repro.storage.disk.SimulatedDisk`
and replays the identical queries: the page-read/buffer-hit counters must
match exactly (the pack is the same page sequence), making the family a
wall-clock benchmark and a residency-parity oracle at once.

Peak RSS is read from ``resource.getrusage`` — ``ru_maxrss`` is a process
high-water mark, so phase figures are *growth* deltas and a phase that fits
under an earlier peak reports 0.  Run via ``repro-mcn bench cold-cache``
(a fresh process) for clean numbers.
"""

from __future__ import annotations

import os
import resource
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.api.policy import ExecutionPolicy
from repro.api.session import Session
from repro.datagen.road_network import PackedDatasetSpec, build_packed_dataset
from repro.errors import QueryError
from repro.network.location import NetworkLocation

__all__ = [
    "ColdCacheSpec",
    "ColdCachePhase",
    "ColdCacheReport",
    "run_cold_cache_bench",
    "format_cold_cache_report",
]

#: ru_maxrss is kilobytes on Linux, bytes on macOS.
_RSS_UNIT = 1 if sys.platform == "darwin" else 1024


def _peak_rss() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RSS_UNIT


@dataclass(frozen=True)
class ColdCacheSpec:
    """One cold-cache run: the dataset to stream plus the query load."""

    dataset: PackedDatasetSpec = field(default_factory=PackedDatasetSpec)
    buffer_fraction: float = 0.01
    num_queries: int = 16
    compare_simulated: bool = True

    def __post_init__(self):
        if self.buffer_fraction <= 0 or self.buffer_fraction > 1:
            raise QueryError(
                f"buffer fraction must lie in (0, 1], got {self.buffer_fraction!r}"
            )
        if self.num_queries < 1:
            raise QueryError(f"need at least one query, got {self.num_queries!r}")

    def query_nodes(self) -> list[int]:
        """Deterministic query nodes spread evenly over the grid."""
        total = self.dataset.num_nodes
        return sorted({(index * total) // self.num_queries for index in range(self.num_queries)})


@dataclass(frozen=True)
class ColdCachePhase:
    """Wall-clock and peak-RSS growth of one phase of the run."""

    seconds: float
    rss_growth_bytes: int

    def to_payload(self) -> dict:
        return {
            "seconds": round(self.seconds, 6),
            "rss_growth_bytes": self.rss_growth_bytes,
        }


@dataclass(frozen=True)
class ColdCacheReport:
    """The full cold-cache verdict for one spec."""

    spec: ColdCacheSpec
    pack_bytes: int
    num_pages: int
    checksum: str
    build: ColdCachePhase
    verify_open: ColdCachePhase
    cold_query: ColdCachePhase
    buffer_capacity: int
    page_reads: int
    buffer_hits: int
    skyline_sizes: list[int]
    simulated_seconds: float | None = None
    simulated_page_reads: int | None = None
    simulated_buffer_hits: int | None = None
    results_identical: bool | None = None

    @property
    def io_identical(self) -> bool | None:
        """Page-read/buffer-hit parity with the simulated leg (None if skipped)."""
        if self.simulated_page_reads is None:
            return None
        return (
            self.page_reads == self.simulated_page_reads
            and self.buffer_hits == self.simulated_buffer_hits
        )

    def to_payload(self) -> dict:
        payload = {
            "spec": {
                "dataset": self.spec.dataset.to_payload(),
                "buffer_fraction": self.spec.buffer_fraction,
                "num_queries": self.spec.num_queries,
            },
            "pack_bytes": self.pack_bytes,
            "num_pages": self.num_pages,
            "checksum": self.checksum,
            "build": self.build.to_payload(),
            "verify_open": self.verify_open.to_payload(),
            "cold_query": self.cold_query.to_payload(),
            "buffer_capacity": self.buffer_capacity,
            "page_reads": self.page_reads,
            "buffer_hits": self.buffer_hits,
            "skyline_sizes": list(self.skyline_sizes),
        }
        if self.simulated_page_reads is not None:
            payload["simulated"] = {
                "seconds": round(self.simulated_seconds or 0.0, 6),
                "page_reads": self.simulated_page_reads,
                "buffer_hits": self.simulated_buffer_hits,
                "io_identical": self.io_identical,
                "results_identical": self.results_identical,
            }
        return payload


def _query_session(session: Session, nodes: list[int]) -> tuple[list[set], int, int, float]:
    sizes: list[set] = []
    page_reads = 0
    buffer_hits = 0
    started = time.perf_counter()
    for node_id in nodes:
        response = session.skyline(NetworkLocation.at_node(node_id))
        sizes.append(response.result.facility_ids())
        page_reads += response.io.page_reads
        buffer_hits += response.io.buffer_hits
    return sizes, page_reads, buffer_hits, time.perf_counter() - started


def run_cold_cache_bench(
    spec: ColdCacheSpec, *, pack_path: str | None = None, keep_pack: bool = False
) -> ColdCacheReport:
    """Stream, verify, and cold-query one dataset; optionally race the simulated disk.

    ``pack_path`` reuses (or names) the pack file; by default a temporary
    file is created next to the working directory and removed afterwards
    unless ``keep_pack`` is set.
    """
    owned = pack_path is None
    if pack_path is None:
        handle = tempfile.NamedTemporaryFile(suffix=".mcnpack", delete=False)
        handle.close()
        pack_path = handle.name
    try:
        rss_before = _peak_rss()
        started = time.perf_counter()
        catalog = build_packed_dataset(spec.dataset, pack_path)
        build = ColdCachePhase(
            time.perf_counter() - started, max(0, _peak_rss() - rss_before)
        )
        pack_bytes = os.path.getsize(pack_path)

        policy = ExecutionPolicy(buffer_fraction=spec.buffer_fraction)
        nodes = spec.query_nodes()

        rss_before = _peak_rss()
        started = time.perf_counter()
        session = Session(dataset_path=pack_path, policy=policy)
        verify_open = ColdCachePhase(
            time.perf_counter() - started, max(0, _peak_rss() - rss_before)
        )
        with session:
            dataset_policy = policy.replace(
                residency="dataset", dataset_path=pack_path
            )
            capacity = session.dataset_storage_for(dataset_policy).buffer.capacity
            rss_before = _peak_rss()
            cold_sets, page_reads, buffer_hits, cold_seconds = _query_session(
                session, nodes
            )
            cold_query = ColdCachePhase(cold_seconds, max(0, _peak_rss() - rss_before))

        simulated_seconds = None
        simulated_reads = None
        simulated_hits = None
        results_identical = None
        if spec.compare_simulated:
            from repro.datagen.road_network import materialize_packed_dataset

            graph, facilities = materialize_packed_dataset(spec.dataset)
            sim_policy = ExecutionPolicy(
                residency="disk",
                page_size=spec.dataset.page_size,
                buffer_fraction=spec.buffer_fraction,
            )
            with Session(graph, facilities, policy=sim_policy) as sim_session:
                sim_session.storage_for(sim_policy)  # build outside the timed loop
                sim_sets, simulated_reads, simulated_hits, simulated_seconds = (
                    _query_session(sim_session, nodes)
                )
            results_identical = sim_sets == cold_sets

        return ColdCacheReport(
            spec=spec,
            pack_bytes=pack_bytes,
            num_pages=catalog.num_pages,
            checksum=catalog.checksum,
            build=build,
            verify_open=verify_open,
            cold_query=cold_query,
            buffer_capacity=capacity,
            page_reads=page_reads,
            buffer_hits=buffer_hits,
            skyline_sizes=[len(found) for found in cold_sets],
            simulated_seconds=simulated_seconds,
            simulated_page_reads=simulated_reads,
            simulated_buffer_hits=simulated_hits,
            results_identical=results_identical,
        )
    finally:
        if owned and not keep_pack:
            try:
                os.unlink(pack_path)
            except OSError:
                pass


def format_cold_cache_report(report: ColdCacheReport) -> str:
    """Human-readable table for ``repro-mcn bench cold-cache``."""
    dataset = report.spec.dataset
    mib = 1024 * 1024
    lines = [
        f"dataset: {dataset.rows}x{dataset.cols} grid "
        f"({dataset.num_nodes} nodes, d={dataset.num_cost_types}, "
        f"{dataset.num_facilities} facilities), page size {dataset.page_size}",
        f"pack: {report.pack_bytes / mib:.1f} MiB, {report.num_pages} pages, "
        f"sha256 {report.checksum[:16]}...",
        "",
        f"{'phase':<18} {'seconds':>9} {'rss growth':>12}",
        f"{'stream+pack':<18} {report.build.seconds:>9.3f} "
        f"{report.build.rss_growth_bytes / mib:>10.1f}Mi",
        f"{'verify+open':<18} {report.verify_open.seconds:>9.3f} "
        f"{report.verify_open.rss_growth_bytes / mib:>10.1f}Mi",
        f"{'cold queries':<18} {report.cold_query.seconds:>9.3f} "
        f"{report.cold_query.rss_growth_bytes / mib:>10.1f}Mi",
        "",
        f"cold FileDisk: {len(report.skyline_sizes)} skylines, "
        f"{report.page_reads} page reads, {report.buffer_hits} buffer hits "
        f"(buffer capacity {report.buffer_capacity} pages)",
    ]
    if report.simulated_page_reads is not None:
        lines.append(
            f"simulated disk: {report.simulated_seconds:.3f}s, "
            f"{report.simulated_page_reads} page reads, "
            f"{report.simulated_buffer_hits} buffer hits"
        )
        lines.append(
            "page-read parity with SimulatedDisk: "
            + ("yes" if report.io_identical else "NO")
        )
        lines.append(
            "results identical to SimulatedDisk: "
            + ("yes" if report.results_identical else "NO")
        )
    return "\n".join(lines) + "\n"
