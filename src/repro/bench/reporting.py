"""Text reporting of experiment series: aligned tables and CSV export."""

from __future__ import annotations

import io
from collections.abc import Sequence

from repro.bench.experiments import ExperimentSeries

__all__ = ["format_series_table", "series_to_csv", "summarize_speedups"]

_METRICS = (
    ("mean_page_reads", "page reads"),
    ("mean_elapsed_seconds", "time (s)"),
    ("mean_result_size", "result size"),
)


def format_series_table(series: ExperimentSeries, *, metrics: Sequence[tuple[str, str]] = _METRICS) -> str:
    """An aligned text table of the series, one row per sweep point per algorithm."""
    header = [series.parameter, "algorithm"] + [label for _name, label in metrics]
    rows: list[list[str]] = []
    for row in series.rows:
        for algorithm in row.trial.measurements:
            cells = [str(row.value), algorithm]
            for name, _label in metrics:
                value = row.metric(algorithm, name)
                cells.append(f"{value:.4f}" if name == "mean_elapsed_seconds" else f"{value:.1f}")
            rows.append(cells)
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i]) for i in range(len(header))]
    output = io.StringIO()
    title = f"{series.experiment_id} — {series.figure} ({series.query_type}, vary {series.parameter})"
    output.write(title + "\n")
    output.write("-" * len(title) + "\n")
    output.write("  ".join(header[i].ljust(widths[i]) for i in range(len(header))) + "\n")
    for cells in rows:
        output.write("  ".join(cells[i].ljust(widths[i]) for i in range(len(cells))) + "\n")
    return output.getvalue()


def series_to_csv(series: ExperimentSeries) -> str:
    """A CSV rendering of the series (one line per sweep point per algorithm)."""
    lines = ["experiment,figure,query_type,parameter,value,algorithm,page_reads,buffer_hits,elapsed_seconds,result_size"]
    for row in series.rows:
        for algorithm, measurement in row.trial.measurements.items():
            lines.append(
                ",".join(
                    str(part)
                    for part in (
                        series.experiment_id,
                        series.figure.replace(",", " "),
                        series.query_type,
                        series.parameter,
                        row.value,
                        algorithm,
                        f"{measurement.mean_page_reads:.2f}",
                        f"{measurement.mean_buffer_hits:.2f}",
                        f"{measurement.mean_elapsed_seconds:.6f}",
                        f"{measurement.mean_result_size:.2f}",
                    )
                )
            )
    return "\n".join(lines) + "\n"


def summarize_speedups(series: ExperimentSeries, *, slower: str = "lsa", faster: str = "cea") -> str:
    """One line per sweep point with the LSA/CEA page-read ratio (the paper's headline metric)."""
    lines = []
    for row in series.rows:
        if slower in row.trial.measurements and faster in row.trial.measurements:
            ratio = row.trial.speedup(slower, faster)
            lines.append(f"{series.parameter}={row.value}: {slower}/{faster} page-read ratio = {ratio:.2f}x")
    return "\n".join(lines)
