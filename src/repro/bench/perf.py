"""Pinned perf-baseline harness: the trajectory behind ``BENCH_4.json``.

The figure benchmarks reproduce the paper's *shapes* (page reads vs |F|, d,
buffer size); none of them pins absolute wall-clock, so until this harness
existed there was no machine-readable baseline to measure an optimisation
against.  ``run_perf_suite`` replays a fixed set of deterministic workloads
— one-shot skyline/top-k replays (expansion-bound and CEA-bound, in-memory
and disk-resident), a batched service run, a sharded run and a monitoring
tick stream — through the accessor path and the compiled-graph fast path,
and reports for each case:

* median / p95 per-query (per-tick) latency and throughput,
* heap pops and logical accessor requests,
* page reads / buffer hits (disk-resident cases),
* the fast-path speedup, plus two verification verdicts: identical results
  and identical I/O accounting between the two paths.

``repro-mcn bench perf`` writes the suite as ``BENCH_4.json`` (schema
``repro-perf/1``); future PRs append ``BENCH_<n>.json`` files and compare.
The ``--smoke`` scale runs the same cases on miniature populations so CI can
execute the full harness in seconds.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field

from repro.api.policy import ExecutionPolicy
from repro.bench.driver import build_requests, percentile, ReplaySpec
from repro.core.engine import MCNQueryEngine
from repro.core.vector import kernel_class_for
from repro.datagen.updates import UpdateStreamSpec, make_update_stream
from repro.datagen.workload import WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.monitor import MonitoringService
from repro.monitor.service import tick_report_to_payload
from repro.network.facilities import FacilitySet
from repro.parallel import ShardedQueryService
from repro.service import QueryService, SkylineRequest
from repro.storage.scheme import NetworkStorage

__all__ = [
    "PERF_SCHEMA",
    "HEADLINE_CASE",
    "PathMeasurement",
    "PerfCaseReport",
    "PerfSuiteReport",
    "PerfRegression",
    "run_perf_suite",
    "format_perf_report",
    "write_perf_report",
    "load_perf_baseline",
    "compare_perf_reports",
    "format_perf_comparison",
]

PERF_SCHEMA = "repro-perf/2"

#: The pinned replay workload whose fast-path speedup is the headline number:
#: a deep-expansion regime (many nodes, sparse facilities) where LSA's d
#: independent expansions each settle long stretches of network before the
#: skyline converges, so the NE inner loop dominates end to end.
HEADLINE_CASE = "replay_lsa_deep"

#: Speedups may only erode by this fraction between baselines before the
#: compare mode (``bench perf --against``) fails the run.
REGRESSION_TOLERANCE = 0.10


@dataclass
class PathMeasurement:
    """One case through one path (accessor or compiled kernel)."""

    label: str
    samples_ms: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    heap_pops: int = 0
    logical_requests: int = 0
    page_reads: int = 0
    buffer_hits: int = 0

    @property
    def median_ms(self) -> float:
        return percentile(self.samples_ms, 50)

    @property
    def p95_ms(self) -> float:
        return percentile(self.samples_ms, 95)

    @property
    def per_second(self) -> float:
        if not self.samples_ms or self.elapsed_seconds <= 0:
            return 0.0
        return len(self.samples_ms) / self.elapsed_seconds

    def to_payload(self) -> dict[str, object]:
        return {
            "samples": len(self.samples_ms),
            "median_ms": round(self.median_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "per_second": round(self.per_second, 2),
            "heap_pops": self.heap_pops,
            "logical_requests": self.logical_requests,
            "page_reads": self.page_reads,
            "buffer_hits": self.buffer_hits,
        }


@dataclass
class PerfCaseReport:
    """One workload measured through both paths, with verification verdicts."""

    name: str
    unit: str  # "query" or "tick"
    description: str
    legacy: PathMeasurement
    fast: PathMeasurement
    identical_results: bool
    io_identical: bool

    @property
    def speedup_median(self) -> float:
        fast = self.fast.median_ms
        return self.legacy.median_ms / fast if fast > 0 else 0.0

    def to_payload(self) -> dict[str, object]:
        return {
            "name": self.name,
            "unit": self.unit,
            "description": self.description,
            "legacy": self.legacy.to_payload(),
            "fast": self.fast.to_payload(),
            "speedup_median": round(self.speedup_median, 3),
            "identical_results": self.identical_results,
            "io_identical": self.io_identical,
        }


@dataclass
class PerfSuiteReport:
    """The whole pinned suite plus the headline verdicts."""

    cases: list[PerfCaseReport]
    smoke: bool
    repeats: int

    @property
    def headline(self) -> PerfCaseReport:
        for case in self.cases:
            if case.name == HEADLINE_CASE:
                return case
        raise QueryError(f"the suite is missing its headline case {HEADLINE_CASE!r}")

    @property
    def all_identical(self) -> bool:
        return all(case.identical_results for case in self.cases)

    @property
    def all_io_identical(self) -> bool:
        return all(case.io_identical for case in self.cases)

    def to_payload(self) -> dict[str, object]:
        return {
            "schema": PERF_SCHEMA,
            "smoke": self.smoke,
            "repeats": self.repeats,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "fast_kernel": kernel_class_for(None).__name__,
            "headline": {
                "case": HEADLINE_CASE,
                "speedup_median": round(self.headline.speedup_median, 3),
            },
            "all_identical_results": self.all_identical,
            "all_io_identical": self.all_io_identical,
            "cases": [case.to_payload() for case in self.cases],
        }


# --------------------------------------------------------------------- #
# Case runners
# --------------------------------------------------------------------- #
def _result_signature(request, result) -> object:
    if isinstance(request, SkylineRequest):
        return tuple((item.facility_id, item.costs) for item in result)
    return tuple((item.facility_id, item.score) for item in result)


def _io_signature(measurement: PathMeasurement) -> tuple[int, int, int, int]:
    return (
        measurement.heap_pops,
        measurement.logical_requests,
        measurement.page_reads,
        measurement.buffer_hits,
    )


def _warm_up(engine, storage, requests) -> None:
    """One untimed pass so first-touch effects (lazy hot-adjacency builds,
    page-table warming) land outside the measured samples of either path."""
    for request in requests:
        if storage is not None:
            storage.reset_statistics(clear_buffer=True)
        if isinstance(request, SkylineRequest):
            engine.skyline(request.location, algorithm=request.algorithm)
        else:
            engine.top_k(
                request.location, request.k, weights=request.weights,
                algorithm=request.algorithm,
            )


def _run_one_shot(engine, storage, requests, label, repeats) -> tuple[PathMeasurement, list]:
    measurement = PathMeasurement(label=label)
    signatures: list[object] = []
    _warm_up(engine, storage, requests)
    start = time.perf_counter()
    for repeat in range(repeats):
        for request in requests:
            if storage is not None:
                storage.reset_statistics(clear_buffer=True)
            query_start = time.perf_counter()
            if isinstance(request, SkylineRequest):
                result = engine.skyline(request.location, algorithm=request.algorithm)
            else:
                result = engine.top_k(
                    request.location,
                    request.k,
                    weights=request.weights,
                    algorithm=request.algorithm,
                )
            measurement.samples_ms.append((time.perf_counter() - query_start) * 1000.0)
            stats = result.statistics
            measurement.heap_pops += stats.heap_pops
            measurement.logical_requests += stats.io.total_requests
            measurement.page_reads += stats.io.page_reads
            measurement.buffer_hits += stats.io.buffer_hits
            if repeat == 0:
                signatures.append(_result_signature(request, result))
    measurement.elapsed_seconds = time.perf_counter() - start
    return measurement, signatures


def _case_engines(spec: ReplaySpec, workload, *, use_disk: bool):
    """(storage, legacy engine, fast engine) for one case — ONE construction
    path for both measurement sides, so they can never drift apart."""
    if use_disk:
        storage = NetworkStorage.build(
            workload.graph,
            workload.facilities,
            page_size=spec.page_size,
            buffer_fraction=spec.buffer_fraction,
        )
        legacy = MCNQueryEngine(
            workload.graph, workload.facilities, storage=storage, compiled=False
        )
        fast = MCNQueryEngine(
            workload.graph, workload.facilities, storage=storage, compiled=True
        )
        return storage, legacy, fast
    legacy = MCNQueryEngine(workload.graph, workload.facilities, compiled=False)
    fast = MCNQueryEngine(workload.graph, workload.facilities, compiled=True)
    return None, legacy, fast


def _replay_case(name, description, spec: ReplaySpec, *, use_disk: bool, repeats: int) -> PerfCaseReport:
    workload = make_workload(spec.workload)
    requests = build_requests(workload, spec)
    storage, legacy_engine, fast_engine = _case_engines(spec, workload, use_disk=use_disk)
    legacy, legacy_signatures = _run_one_shot(
        legacy_engine, storage, requests, "accessor", repeats
    )
    fast, fast_signatures = _run_one_shot(fast_engine, storage, requests, "compiled", repeats)
    return PerfCaseReport(
        name=name,
        unit="query",
        description=description,
        legacy=legacy,
        fast=fast,
        identical_results=legacy_signatures == fast_signatures,
        io_identical=_io_signature(legacy) == _io_signature(fast),
    )


def _run_batch(engine, storage, requests, label, repeats, *, workers: int = 0) -> tuple[PathMeasurement, list]:
    measurement = PathMeasurement(label=label)
    signatures: list[object] = []
    _warm_up(engine, storage, requests)
    start = time.perf_counter()
    for repeat in range(repeats):
        if storage is not None:
            storage.reset_statistics(clear_buffer=True)
        if workers:
            service = ShardedQueryService(engine, workers=workers, executor="serial")
            report = service.run_batch(requests)
        else:
            report = QueryService(engine).run_batch(requests)
        for outcome in report.outcomes:
            measurement.samples_ms.append(outcome.elapsed_seconds * 1000.0)
            stats = outcome.result.statistics
            measurement.heap_pops += stats.heap_pops
            if repeat == 0:
                signatures.append(_result_signature(outcome.request, outcome.result))
        measurement.logical_requests += report.io.total_requests
        measurement.page_reads += report.io.page_reads
        measurement.buffer_hits += report.io.buffer_hits
    measurement.elapsed_seconds = time.perf_counter() - start
    return measurement, signatures


def _batch_case(
    name, description, spec: ReplaySpec, *, use_disk: bool, repeats: int, workers: int = 0
) -> PerfCaseReport:
    workload = make_workload(spec.workload)
    requests = build_requests(workload, spec)
    storage, legacy_engine, fast_engine = _case_engines(spec, workload, use_disk=use_disk)
    legacy, legacy_signatures = _run_batch(
        legacy_engine, storage, requests, "accessor", repeats, workers=workers
    )
    fast, fast_signatures = _run_batch(
        fast_engine, storage, requests, "compiled", repeats, workers=workers
    )
    return PerfCaseReport(
        name=name,
        unit="query",
        description=description,
        legacy=legacy,
        fast=fast,
        identical_results=legacy_signatures == fast_signatures,
        io_identical=_io_signature(legacy) == _io_signature(fast),
    )


def _run_monitor(workload, requests, stream, compiled: bool, label: str) -> tuple[PathMeasurement, list]:
    facilities = FacilitySet(workload.graph, iter(workload.facilities))
    policy = ExecutionPolicy(compiled="on" if compiled else "off")
    service = MonitoringService(workload.graph, facilities, policy=policy)
    for request in requests:
        service.subscribe(request)
    measurement = PathMeasurement(label=label)
    signatures: list[object] = []
    start = time.perf_counter()
    for tick in stream:
        report = service.apply_tick(tick)
        measurement.samples_ms.append(report.elapsed_seconds * 1000.0)
        measurement.logical_requests += report.io.total_requests
        payload = tick_report_to_payload(report)
        payload.pop("counters", None)  # path split is asserted via io instead
        signatures.append(payload)
    measurement.elapsed_seconds = time.perf_counter() - start
    return measurement, signatures


def _monitor_case(name, description, *, scale: dict, seed: int) -> PerfCaseReport:
    workload_spec = WorkloadSpec(
        num_nodes=scale["nodes"],
        num_facilities=scale["facilities"],
        num_cost_types=3,
        num_queries=scale["subscriptions"],
        seed=seed,
    )
    workload = make_workload(workload_spec)
    requests = [SkylineRequest(query) for query in workload.queries]
    stream_spec = UpdateStreamSpec(
        num_ticks=scale["ticks"], updates_per_tick=scale["updates_per_tick"], seed=seed + 1
    )
    stream = make_update_stream(workload.graph, workload.facilities, stream_spec)
    legacy, legacy_signatures = _run_monitor(workload, requests, stream, False, "accessor")
    fast, fast_signatures = _run_monitor(workload, requests, stream, True, "compiled")
    return PerfCaseReport(
        name=name,
        unit="tick",
        description=description,
        legacy=legacy,
        fast=fast,
        identical_results=legacy_signatures == fast_signatures,
        io_identical=legacy.logical_requests == fast.logical_requests,
    )


# --------------------------------------------------------------------- #
# The pinned suite
# --------------------------------------------------------------------- #
def run_perf_suite(*, smoke: bool = False, repeats: int | None = None) -> PerfSuiteReport:
    """Run the pinned workloads through both paths and report them side by side.

    ``smoke`` shrinks every population so the suite finishes in a few
    seconds (CI); ``repeats`` controls how many times each query trace is
    replayed per path (default 3 full / 1 smoke — more repeats tighten the
    latency percentiles).
    """
    if repeats is None:
        repeats = 1 if smoke else 3
    if repeats < 1:
        raise QueryError("repeats must be a positive integer")
    size = (
        {"nodes": 240, "facilities": 60, "queries": 8}
        if smoke
        else {"nodes": 3000, "facilities": 150, "queries": 25}
    )
    cea_size = (
        {"nodes": 240, "facilities": 80, "queries": 8}
        if smoke
        else {"nodes": 900, "facilities": 300, "queries": 40}
    )
    batch_size = (
        {"nodes": 240, "facilities": 80, "queries": 8}
        if smoke
        # Deeper than the one-shot CEA case: with 40 queries on a 900-node
        # graph the cross-query cache makes the median query a sub-ms warm
        # replay where scheduler jitter decides the ratio; 25 queries over
        # 3000 nodes keep the cache regime but leave the median query real
        # expansion work to measure.
        else {"nodes": 3000, "facilities": 300, "queries": 25}
    )
    monitor_scale = (
        {"nodes": 200, "facilities": 50, "subscriptions": 3, "ticks": 4, "updates_per_tick": 3}
        if smoke
        # Deep enough that the median tick carries real expansion work; at
        # the old 700-node scale the median tick was a sub-millisecond
        # bookkeeping tick where per-tick jitter swamped the kernels.
        else {"nodes": 4000, "facilities": 120, "subscriptions": 8, "ticks": 15, "updates_per_tick": 20}
    )
    deep_size = (
        {"nodes": 500, "facilities": 10, "queries": 4}
        if smoke
        else {"nodes": 20000, "facilities": 200, "queries": 10}
    )
    cases = [
        _replay_case(
            HEADLINE_CASE,
            "one-shot skyline replay, LSA, in-memory, deep sparse-facility "
            "expansions (the regime the vectorised kernel targets: long "
            "settle stretches between facility hits)",
            ReplaySpec(
                workload=WorkloadSpec(
                    num_nodes=deep_size["nodes"],
                    num_facilities=deep_size["facilities"],
                    num_cost_types=3,
                    num_queries=deep_size["queries"],
                    seed=47,
                ),
                mix="skyline",
                algorithm="lsa",
            ),
            use_disk=False,
            repeats=repeats,
        ),
        _replay_case(
            "replay_lsa_memory",
            "one-shot skyline replay, LSA, in-memory (the paper's primary "
            "query type at the dense facility mix of BENCH_4)",
            ReplaySpec(
                workload=WorkloadSpec(
                    num_nodes=size["nodes"],
                    num_facilities=size["facilities"],
                    num_cost_types=3,
                    num_queries=size["queries"],
                    seed=41,
                ),
                mix="skyline",
                algorithm="lsa",
            ),
            use_disk=False,
            repeats=repeats,
        ),
        _replay_case(
            "replay_cea_memory",
            "one-shot mixed skyline/top-k replay, CEA, in-memory",
            ReplaySpec(
                workload=WorkloadSpec(
                    num_nodes=cea_size["nodes"],
                    num_facilities=cea_size["facilities"],
                    num_cost_types=3,
                    num_queries=cea_size["queries"],
                    seed=42,
                ),
                mix="mixed",
                algorithm="cea",
            ),
            use_disk=False,
            repeats=repeats,
        ),
        _replay_case(
            "replay_cea_disk",
            "one-shot mixed replay, CEA, disk-resident storage, cold per query",
            ReplaySpec(
                workload=WorkloadSpec(
                    num_nodes=cea_size["nodes"],
                    num_facilities=cea_size["facilities"],
                    num_cost_types=3,
                    num_queries=cea_size["queries"],
                    seed=43,
                ),
                mix="mixed",
                algorithm="cea",
                page_size=2048,
            ),
            use_disk=True,
            repeats=repeats,
        ),
        _batch_case(
            "batched_service",
            "batched replay through QueryService (cross-query cache), disk-resident",
            ReplaySpec(
                workload=WorkloadSpec(
                    num_nodes=batch_size["nodes"],
                    num_facilities=batch_size["facilities"],
                    num_cost_types=3,
                    num_queries=batch_size["queries"],
                    seed=44,
                ),
                mix="mixed",
                algorithm="cea",
                page_size=2048,
            ),
            use_disk=True,
            repeats=repeats,
        ),
        _batch_case(
            "sharded_service",
            "sharded replay (4 shards, serial executor) over one shared snapshot",
            ReplaySpec(
                workload=WorkloadSpec(
                    num_nodes=size["nodes"],
                    num_facilities=size["facilities"],
                    num_cost_types=3,
                    num_queries=size["queries"],
                    seed=45,
                ),
                mix="mixed",
                algorithm="lsa",
            ),
            use_disk=False,
            repeats=repeats,
            workers=4,
        ),
        _monitor_case(
            "monitor_tick",
            "monitoring-service update ticks (insertion pricing + CEA fallbacks)",
            scale=monitor_scale,
            seed=46,
        ),
    ]
    return PerfSuiteReport(cases=cases, smoke=smoke, repeats=repeats)


def format_perf_report(report: PerfSuiteReport) -> str:
    """Human-readable side-by-side table of the perf suite."""
    lines = [
        f"perf suite ({'smoke' if report.smoke else 'full'} scale, "
        f"{report.repeats} repeat{'s' if report.repeats != 1 else ''})",
        "",
        f"{'case':<20} {'unit':<6} {'path':<9} {'median ms':>10} {'p95 ms':>9} "
        f"{'rate/s':>9} {'heap pops':>10} {'logical IO':>11} {'page reads':>11}",
    ]
    for case in report.cases:
        for measurement in (case.legacy, case.fast):
            lines.append(
                f"{case.name:<20} {case.unit:<6} {measurement.label:<9} "
                f"{measurement.median_ms:>10.3f} {measurement.p95_ms:>9.3f} "
                f"{measurement.per_second:>9.1f} {measurement.heap_pops:>10} "
                f"{measurement.logical_requests:>11} {measurement.page_reads:>11}"
            )
        verdict = "ok" if case.identical_results and case.io_identical else "MISMATCH"
        lines.append(
            f"{'':<20} {'':<6} speedup {case.speedup_median:>6.2f}x  ({verdict})"
        )
    headline = report.headline
    lines.append("")
    lines.append(
        f"headline ({HEADLINE_CASE}): {headline.speedup_median:.2f}x median latency"
    )
    lines.append(
        "verification: results "
        + ("identical" if report.all_identical else "DIFFER")
        + ", I/O accounting "
        + ("identical" if report.all_io_identical else "DIFFERS")
    )
    return "\n".join(lines) + "\n"


def write_perf_report(report: PerfSuiteReport, path: str) -> None:
    """Write the machine-readable suite payload (``BENCH_4.json`` and successors)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report.to_payload(), handle, indent=2, sort_keys=False)
        handle.write("\n")


# --------------------------------------------------------------------- #
# Baseline comparison (``bench perf --against BENCH_<n>.json``)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PerfRegression:
    """One metric that regressed beyond tolerance against a pinned baseline."""

    case: str
    metric: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Signed fractional change relative to the baseline."""
        if self.baseline == 0:
            return 0.0
        return (self.current - self.baseline) / self.baseline

    def describe(self) -> str:
        return (
            f"{self.case}: {self.metric} {self.baseline:.3f} -> "
            f"{self.current:.3f} ({self.change:+.1%})"
        )


def load_perf_baseline(path: str) -> dict:
    """Read and sanity-check a ``BENCH_<n>.json`` payload for comparison."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema", "")
    if not isinstance(schema, str) or not schema.startswith("repro-perf/"):
        raise QueryError(f"{path} is not a perf-suite payload (schema {schema!r})")
    if not isinstance(payload.get("cases"), list):
        raise QueryError(f"{path} has no case list to compare against")
    return payload


def compare_perf_reports(
    current: dict, baseline: dict, *, tolerance: float = REGRESSION_TOLERANCE
) -> list[PerfRegression]:
    """Regressions of ``current`` against ``baseline``, beyond ``tolerance``.

    Cases are matched by name; cases only one side knows about are skipped
    (new baselines add cases, old ones lack them).  Two metrics are policed:

    * ``speedup_median`` may not erode by more than ``tolerance`` — this is
      scale-free, so it holds even when a smoke run is compared against a
      full-scale baseline;
    * the fast path's ``median_ms`` may not grow by more than ``tolerance``,
      but only when both payloads ran the same scale (``smoke`` flags match)
      — absolute latencies across scales are incomparable.
    """
    if tolerance <= 0:
        raise QueryError("the regression tolerance must be positive")
    baseline_cases = {
        case.get("name"): case for case in baseline.get("cases", [])
    }
    same_scale = bool(current.get("smoke")) == bool(baseline.get("smoke"))
    regressions: list[PerfRegression] = []
    for case in current.get("cases", []):
        reference = baseline_cases.get(case.get("name"))
        if reference is None:
            continue
        base_speedup = float(reference.get("speedup_median", 0.0))
        cur_speedup = float(case.get("speedup_median", 0.0))
        if base_speedup > 0 and cur_speedup < base_speedup * (1.0 - tolerance):
            regressions.append(
                PerfRegression(
                    case=case["name"],
                    metric="speedup_median",
                    baseline=base_speedup,
                    current=cur_speedup,
                )
            )
        if not same_scale:
            continue
        base_median = float(reference.get("fast", {}).get("median_ms", 0.0))
        cur_median = float(case.get("fast", {}).get("median_ms", 0.0))
        if base_median > 0 and cur_median > base_median * (1.0 + tolerance):
            regressions.append(
                PerfRegression(
                    case=case["name"],
                    metric="fast median_ms",
                    baseline=base_median,
                    current=cur_median,
                )
            )
    return regressions


def format_perf_comparison(
    regressions: list[PerfRegression], *, baseline_label: str
) -> str:
    """Human-readable verdict of a ``--against`` comparison."""
    if not regressions:
        return f"baseline {baseline_label}: no regressions beyond tolerance\n"
    lines = [f"baseline {baseline_label}: {len(regressions)} regression(s)"]
    lines.extend(f"  {regression.describe()}" for regression in regressions)
    return "\n".join(lines) + "\n"
