"""Experiment configurations mirroring Section VI of the paper.

The paper's experiments run on the San Francisco network (about 175 K nodes)
with facility sets of 25 K–200 K, all on a physical disk.  A pure-Python
simulator cannot run that scale in reasonable wall-clock time, so each
experiment is expressed relative to an :class:`ExperimentScale` that shrinks
every population by a constant factor while keeping the *ratios* the paper
varies (facility density, number of cost types, buffer fraction, k) intact.
``PAPER_SCALE`` documents the original values; ``SMALL_SCALE`` and
``DEFAULT_SCALE`` are what the test-suite benches and the full harness use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.datagen.cost_models import CostDistribution
from repro.errors import QueryError

__all__ = [
    "ExperimentScale",
    "ExperimentConfig",
    "PAPER_SCALE",
    "DEFAULT_SCALE",
    "SMALL_SCALE",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Population sizes and sweep ranges for one scale of the experiment suite."""

    name: str
    num_nodes: int
    facility_counts: tuple[int, ...]
    default_facilities: int
    cost_type_counts: tuple[int, ...]
    default_cost_types: int
    buffer_fractions: tuple[float, ...]
    default_buffer_fraction: float
    k_values: tuple[int, ...]
    default_k: int
    num_queries: int
    page_size: int
    seed: int = 7

    def sweep_facilities(self) -> tuple[int, ...]:
        return self.facility_counts

    def sweep_cost_types(self) -> tuple[int, ...]:
        return self.cost_type_counts

    def sweep_buffers(self) -> tuple[float, ...]:
        return self.buffer_fractions

    def sweep_k(self) -> tuple[int, ...]:
        return self.k_values


#: The populations used by the paper itself (documented for reference; running
#: them in pure Python is possible but takes hours per figure).
PAPER_SCALE = ExperimentScale(
    name="paper",
    num_nodes=174_956,
    facility_counts=(25_000, 50_000, 100_000, 150_000, 200_000),
    default_facilities=100_000,
    cost_type_counts=(2, 3, 4, 5),
    default_cost_types=4,
    buffer_fractions=(0.0, 0.005, 0.01, 0.015, 0.02),
    default_buffer_fraction=0.01,
    k_values=(1, 2, 4, 8, 16),
    default_k=4,
    num_queries=100,
    page_size=4096,
)

#: Default scale for the full benchmark harness (~1:70 of the paper).
DEFAULT_SCALE = ExperimentScale(
    name="default",
    num_nodes=2_500,
    facility_counts=(350, 700, 1_400, 2_100, 2_800),
    default_facilities=1_400,
    cost_type_counts=(2, 3, 4, 5),
    default_cost_types=4,
    buffer_fractions=(0.0, 0.005, 0.01, 0.015, 0.02),
    default_buffer_fraction=0.01,
    k_values=(1, 2, 4, 8, 16),
    default_k=4,
    num_queries=10,
    page_size=1024,
)

#: Small scale used by pytest-benchmark targets so the suite stays fast.
SMALL_SCALE = ExperimentScale(
    name="small",
    num_nodes=900,
    facility_counts=(120, 240, 480, 720, 960),
    default_facilities=480,
    cost_type_counts=(2, 3, 4, 5),
    default_cost_types=4,
    buffer_fractions=(0.0, 0.005, 0.01, 0.015, 0.02),
    default_buffer_fraction=0.01,
    k_values=(1, 2, 4, 8, 16),
    default_k=4,
    num_queries=4,
    page_size=1024,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully specified experimental configuration (one point of a sweep)."""

    num_nodes: int = 2_500
    num_facilities: int = 1_400
    num_cost_types: int = 4
    distribution: CostDistribution = CostDistribution.ANTI_CORRELATED
    buffer_fraction: float = 0.01
    page_size: int = 1024
    k: int = 4
    num_queries: int = 10
    num_clusters: int = 10
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_cost_types < 1:
            raise QueryError("at least one cost type is required")
        if self.k < 1:
            raise QueryError("k must be positive")
        if self.num_queries < 1:
            raise QueryError("at least one query location is required")

    @classmethod
    def defaults_for(cls, scale: ExperimentScale) -> "ExperimentConfig":
        """The paper's default parameter setting expressed at the given scale."""
        return cls(
            num_nodes=scale.num_nodes,
            num_facilities=scale.default_facilities,
            num_cost_types=scale.default_cost_types,
            distribution=CostDistribution.ANTI_CORRELATED,
            buffer_fraction=scale.default_buffer_fraction,
            page_size=scale.page_size,
            k=scale.default_k,
            num_queries=scale.num_queries,
            seed=scale.seed,
        )

    def with_(self, **changes: object) -> "ExperimentConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **changes)
