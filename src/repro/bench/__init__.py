"""Benchmark harness: experiment configurations, runners, per-figure drivers
and the workload replay driver of the batch query service."""

from repro.bench.driver import (
    ReplayMeasurement,
    ReplayReport,
    ReplaySpec,
    build_requests,
    format_replay_report,
    percentile,
    replay_workload,
)
from repro.bench.config import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMALL_SCALE,
    ExperimentConfig,
    ExperimentScale,
)
from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentRow,
    ExperimentSeries,
    ablation_probing_policy,
    ablation_versus_baseline,
    effect_of_buffer,
    effect_of_cost_types,
    effect_of_distribution,
    effect_of_facilities,
    effect_of_k,
    run_experiment,
)
from repro.bench.reporting import format_series_table, series_to_csv, summarize_speedups
from repro.bench.runner import (
    AlgorithmMeasurement,
    TrialResult,
    build_environment,
    run_skyline_trial,
    run_topk_trial,
)

__all__ = [
    "AlgorithmMeasurement",
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentRow",
    "ExperimentScale",
    "ExperimentSeries",
    "PAPER_SCALE",
    "ReplayMeasurement",
    "ReplayReport",
    "ReplaySpec",
    "SMALL_SCALE",
    "TrialResult",
    "build_requests",
    "format_replay_report",
    "percentile",
    "replay_workload",
    "ablation_probing_policy",
    "ablation_versus_baseline",
    "build_environment",
    "effect_of_buffer",
    "effect_of_cost_types",
    "effect_of_distribution",
    "effect_of_facilities",
    "effect_of_k",
    "format_series_table",
    "run_experiment",
    "run_skyline_trial",
    "run_topk_trial",
    "series_to_csv",
    "summarize_speedups",
]
