"""Workload replay driver: one-shot engine calls versus the batch service.

This is the benchmark behind the service layer's reason to exist.  It takes
a :class:`~repro.datagen.workload.WorkloadSpec`, turns its query locations
into a trace of mixed skyline / top-k requests, and replays the trace twice
against the same disk-resident storage:

* **one-shot** — every query is an independent :class:`~repro.MCNQueryEngine`
  call with cold statistics and a cold buffer (the paper's per-query setting);
* **batched** — the whole trace goes through one
  :class:`~repro.service.QueryService`, so the cross-query expansion cache
  and the buffer pool stay warm from query to query.

With ``workers > 1`` in the spec, the trace is additionally replayed
**sharded** through a :class:`~repro.parallel.ShardedQueryService` (the
configured routing and executor), measuring what parallel execution buys on
top of batching.

The report carries throughput, latency percentiles and total page reads of
every run, the page-read savings, and a per-request verification that all
runs returned identical answers.

``replay_serve_workload`` is the async counterpart: the same mixed trace —
plus facility-update ticks — fired by concurrent clients through the
serving tier's in-process transport, then replayed sequentially in ``seq``
order against a direct :class:`~repro.api.Session` as the oracle.  The
report carries the tier's rolling latency percentiles per endpoint, the
wall-clock overhead over the sequential library pass, and the
payload-identity verdict.
"""

from __future__ import annotations

import asyncio
import math
import random
import time
from dataclasses import dataclass, field

from repro.api import BatchResponse, ExecutionPolicy, Session
from repro.core.engine import MCNQueryEngine
from repro.core.aggregates import WeightedSum
from repro.core.maintenance import MaintenanceStatistics
from repro.datagen.updates import UpdateStreamSpec, make_update_stream
from repro.datagen.workload import Workload, WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.monitor import FacilityInsert, QueryRelocation
from repro.network.facilities import FacilitySet
from repro.monitor.stream import tick_from_payload, tick_to_payload
from repro.parallel import ParallelExecution
from repro.serve import (
    InProcessClient,
    JobJournal,
    RetryPolicy,
    RetryingClient,
    ServeApp,
    ServeConfig,
    query_response_to_payload,
    tick_response_to_payload,
)
from repro.service import QueryRequest, SkylineRequest, TopKRequest
from repro.service.cache import CacheStatistics
from repro.service.requests import request_from_payload, request_to_payload
from repro.storage.scheme import NetworkStorage

__all__ = [
    "ReplaySpec",
    "ReplayMeasurement",
    "ReplayReport",
    "MonitorReplaySpec",
    "MonitorMeasurement",
    "MonitorReplayReport",
    "ServeReplaySpec",
    "ServeReplayReport",
    "build_requests",
    "replay_workload",
    "replay_update_stream",
    "replay_serve_workload",
    "format_replay_report",
    "format_monitor_report",
    "format_serve_report",
    "percentile",
]

_MIXES = ("skyline", "topk", "mixed")


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise QueryError("cannot take a percentile of no samples")
    if not 0 <= q <= 100:
        raise QueryError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    rank = max(math.ceil(q / 100.0 * len(ordered)), 1)
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class ReplaySpec:
    """Everything the replay driver needs: data, trace shape and storage knobs.

    ``workers`` > 1 adds a third, sharded-parallel run to the replay;
    ``routing`` and ``executor`` configure it (see :mod:`repro.parallel`).
    """

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    mix: str = "mixed"  # "skyline", "topk" or "mixed" (alternating)
    k: int = 4
    algorithm: str = "cea"
    page_size: int = 2048
    buffer_fraction: float = 0.01
    workers: int = 1
    routing: str = "round_robin"
    executor: str = "process"
    # Also replay one-shot and batched through a compiled-graph engine and
    # report the two paths side by side (results are verified identical).
    fast_path: bool = False

    def __post_init__(self) -> None:
        if self.mix not in _MIXES:
            raise QueryError(f"unknown mix {self.mix!r}; expected one of {_MIXES}")
        if self.k < 1:
            raise QueryError("k must be a positive integer")
        # ParallelExecution owns the workers/routing/executor validation.
        ParallelExecution(workers=self.workers, routing=self.routing, executor=self.executor)


def build_requests(workload: Workload, spec: ReplaySpec) -> list[QueryRequest]:
    """The request trace of a workload: one request per query location.

    ``mixed`` alternates skyline and top-k; top-k requests draw random
    weighted-sum coefficients from the workload seed, so the trace is
    deterministic per spec.
    """
    rng = random.Random(workload.spec.seed + 41)
    dimensions = workload.graph.num_cost_types
    requests: list[QueryRequest] = []
    for index, query in enumerate(workload.queries):
        as_skyline = spec.mix == "skyline" or (spec.mix == "mixed" and index % 2 == 0)
        if as_skyline:
            requests.append(SkylineRequest(query, algorithm=spec.algorithm))
        else:
            weights = WeightedSum.random(dimensions, rng).weights
            requests.append(
                TopKRequest(query, spec.k, weights=weights, algorithm=spec.algorithm)
            )
    return requests


@dataclass
class ReplayMeasurement:
    """Aggregate metrics of one replay run (one-shot or batched)."""

    label: str
    queries: int = 0
    elapsed_seconds: float = 0.0
    page_reads: int = 0
    buffer_hits: int = 0
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        if self.queries == 0 or self.elapsed_seconds <= 0:
            return 0.0
        return self.queries / self.elapsed_seconds

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in milliseconds over the run's queries."""
        return percentile(self.latencies_ms, q)


@dataclass
class ReplayReport:
    """The replay runs side by side, plus the verification verdict.

    ``sharded`` is present only when the spec asked for more than one
    worker; ``identical_results`` then covers all runs, and
    ``counters_consistent`` verifies that the merged sharded counters equal
    the sum of the per-shard counters.
    """

    spec: ReplaySpec
    one_shot: ReplayMeasurement
    batched: ReplayMeasurement
    identical_results: bool
    cache: CacheStatistics
    sharded: ReplayMeasurement | None = None
    counters_consistent: bool = True
    # The compiled-graph runs (present when the spec asked for fast_path);
    # identical_results then also covers them, and fast-path page reads are
    # verified equal to the accessor path's per run.
    fast_one_shot: ReplayMeasurement | None = None
    fast_batched: ReplayMeasurement | None = None

    @property
    def measurements(self) -> list[ReplayMeasurement]:
        runs = [self.one_shot, self.batched]
        if self.sharded is not None:
            runs.append(self.sharded)
        if self.fast_one_shot is not None:
            runs.append(self.fast_one_shot)
        if self.fast_batched is not None:
            runs.append(self.fast_batched)
        return runs

    @property
    def fast_path_speedup(self) -> float | None:
        """Median-latency speedup of the compiled one-shot run over one-shot."""
        if self.fast_one_shot is None or not self.fast_one_shot.latencies_ms:
            return None
        fast_median = self.fast_one_shot.latency_percentile(50)
        if fast_median <= 0:
            return None
        return self.one_shot.latency_percentile(50) / fast_median

    @property
    def page_reads_saved(self) -> int:
        return self.one_shot.page_reads - self.batched.page_reads

    @property
    def savings_fraction(self) -> float:
        if self.one_shot.page_reads == 0:
            return 0.0
        return self.page_reads_saved / self.one_shot.page_reads


def _result_signature(request: QueryRequest, result) -> object:
    """A comparable digest of one query's answer (order-insensitive for skylines)."""
    if isinstance(request, SkylineRequest):
        return frozenset(result.facility_ids())
    return tuple((item.facility_id, round(item.score, 9)) for item in result)


def _replay_one_shot(
    engine: MCNQueryEngine,
    storage: NetworkStorage,
    requests: list[QueryRequest],
    label: str,
) -> tuple[ReplayMeasurement, list[object]]:
    """Replay every request as an independent cold engine call."""
    measurement = ReplayMeasurement(label=label, queries=len(requests))
    signatures: list[object] = []
    start = time.perf_counter()
    for request in requests:
        storage.reset_statistics(clear_buffer=True)
        query_start = time.perf_counter()
        if isinstance(request, SkylineRequest):
            result = engine.skyline(
                request.location,
                algorithm=request.algorithm,
                probing=request.probing,
                first_nn_shortcut=request.first_nn_shortcut,
            )
        else:
            result = engine.top_k(
                request.location,
                request.k,
                weights=request.weights,
                aggregate=request.aggregate,
                algorithm=request.algorithm,
            )
        measurement.latencies_ms.append((time.perf_counter() - query_start) * 1000.0)
        measurement.page_reads += result.statistics.io.page_reads
        measurement.buffer_hits += result.statistics.io.buffer_hits
        signatures.append(_result_signature(request, result))
    measurement.elapsed_seconds = time.perf_counter() - start
    return measurement, signatures


def _batch_measurement(label: str, batch: BatchResponse) -> ReplayMeasurement:
    """A replay measurement over one :class:`~repro.api.BatchResponse`."""
    return ReplayMeasurement(
        label=label,
        queries=len(batch.responses),
        elapsed_seconds=batch.elapsed_seconds,
        page_reads=batch.io.page_reads,
        buffer_hits=batch.io.buffer_hits,
        latencies_ms=[response.elapsed_seconds * 1000.0 for response in batch.responses],
    )


def _matches_signatures(batch: BatchResponse, signatures: list[object]) -> bool:
    return len(batch.responses) == len(signatures) and all(
        _result_signature(response.request, response.result) == signature
        for response, signature in zip(batch.responses, signatures)
    )


def replay_workload(spec: ReplaySpec, *, workload: Workload | None = None) -> ReplayReport:
    """Replay a workload trace one-shot and batched, and compare the runs.

    All runs go through one :class:`~repro.api.Session` over the workload
    data, so they execute against the *same* storage object; the one-shot
    run resets counters and clears the buffer before every query (each call
    is as cold as an independent engine invocation), while the batched run
    only goes cold once at the start.  The sharded and fast-path runs are
    the same batch under per-call policy overrides (``workers`` > 1,
    ``compiled="on"``).
    """
    workload = workload or make_workload(spec.workload)
    if not workload.queries:
        raise QueryError("the workload has no queries to replay")
    base_policy = ExecutionPolicy(
        algorithm=spec.algorithm,
        residency="disk",
        compiled="off",
        page_size=spec.page_size,
        buffer_fraction=spec.buffer_fraction,
        routing=spec.routing,
        executor=spec.executor,
    )
    session = Session(workload.graph, workload.facilities, policy=base_policy)
    storage = session.storage_for()
    assert storage is not None  # disk residency always materialises one
    engine = session.engine_for()
    requests = build_requests(workload, spec)

    one_shot, signatures = _replay_one_shot(engine, storage, requests, "one-shot")

    storage.reset_statistics(clear_buffer=True)
    batch = session.run_batch(requests)
    batched = _batch_measurement("batched", batch)
    identical = _matches_signatures(batch, signatures)

    sharded_measurement = None
    counters_consistent = True
    if spec.workers > 1:
        storage.reset_statistics(clear_buffer=True)
        sharded_batch = session.run_batch(
            requests, policy=base_policy.replace(workers=spec.workers)
        )
        sharded_measurement = _batch_measurement(f"sharded-{spec.workers}", sharded_batch)
        identical = identical and _matches_signatures(sharded_batch, signatures)
        counters_consistent = sharded_batch.io.page_reads == sum(
            io.page_reads for io in sharded_batch.shard_io
        ) and sharded_batch.io.buffer_hits == sum(
            io.buffer_hits for io in sharded_batch.shard_io
        )

    fast_one_shot = None
    fast_batched = None
    if spec.fast_path:
        fast_policy = base_policy.replace(compiled="on")
        fast_engine = session.engine_for(fast_policy)
        fast_one_shot, fast_signatures = _replay_one_shot(
            fast_engine, storage, requests, "one-shot*"
        )
        identical = identical and fast_signatures == signatures
        # The fast path must also charge the identical physical I/O.
        counters_consistent = counters_consistent and (
            fast_one_shot.page_reads == one_shot.page_reads
            and fast_one_shot.buffer_hits == one_shot.buffer_hits
        )
        storage.reset_statistics(clear_buffer=True)
        fast_batch = session.run_batch(requests, policy=fast_policy)
        fast_batched = _batch_measurement("batched*", fast_batch)
        identical = identical and _matches_signatures(fast_batch, signatures)
        counters_consistent = counters_consistent and (
            fast_batched.page_reads == batched.page_reads
            and fast_batched.buffer_hits == batched.buffer_hits
        )

    return ReplayReport(
        spec=spec,
        one_shot=one_shot,
        batched=batched,
        identical_results=identical,
        cache=batch.cache,
        sharded=sharded_measurement,
        counters_consistent=counters_consistent,
        fast_one_shot=fast_one_shot,
        fast_batched=fast_batched,
    )


# --------------------------------------------------------------------- #
# Update-stream replay: incremental maintenance vs recompute-every-tick
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MonitorReplaySpec:
    """Everything the monitor replay needs: data, subscriptions and the stream.

    ``subscriptions`` query locations are taken from the workload's generated
    queries (the workload must generate at least that many); ``mix`` shapes
    them into skyline / top-k subscriptions exactly as :func:`build_requests`
    shapes a batch trace.  ``workers`` > 1 shards the monitoring service's
    fallback passes (see :class:`~repro.monitor.MonitoringService`).
    """

    workload: WorkloadSpec = field(default_factory=lambda: WorkloadSpec(num_queries=8))
    stream: UpdateStreamSpec = field(default_factory=UpdateStreamSpec)
    subscriptions: int = 8
    mix: str = "mixed"
    k: int = 4
    workers: int = 1
    routing: str = "round_robin"
    executor: str = "thread"
    shard_fallback_threshold: int = 4

    def __post_init__(self) -> None:
        if self.mix not in _MIXES:
            raise QueryError(f"unknown mix {self.mix!r}; expected one of {_MIXES}")
        if self.k < 1:
            raise QueryError("k must be a positive integer")
        if self.subscriptions < 1:
            raise QueryError("at least one subscription is required")
        if self.workload.num_queries < self.subscriptions:
            raise QueryError(
                f"the workload generates {self.workload.num_queries} query locations "
                f"but {self.subscriptions} subscriptions were requested"
            )
        ParallelExecution(workers=self.workers, routing=self.routing, executor=self.executor)


@dataclass
class MonitorMeasurement:
    """Aggregate metrics of one stream replay (incremental or recompute)."""

    label: str
    ticks: int = 0
    updates: int = 0
    elapsed_seconds: float = 0.0
    accessor_requests: int = 0
    tick_latencies_ms: list[float] = field(default_factory=list)

    @property
    def ticks_per_second(self) -> float:
        if self.ticks == 0 or self.elapsed_seconds <= 0:
            return 0.0
        return self.ticks / self.elapsed_seconds

    def latency_percentile(self, q: float) -> float:
        """Per-tick latency percentile in milliseconds."""
        return percentile(self.tick_latencies_ms, q)


@dataclass
class MonitorReplayReport:
    """Incremental maintenance and recompute-every-tick side by side.

    ``identical_results`` verifies that after *every* tick, every
    subscription's maintained result equals the result a fresh computation
    over the mutated facility set produces.  ``counters`` is the monitoring
    service's tick-driven maintenance accounting (subscribe-time setup
    computations excluded) — its ``incremental_updates`` vs
    ``recomputations`` split is the measurement the maintenance extension
    exists for.
    """

    spec: MonitorReplaySpec
    incremental: MonitorMeasurement
    recompute: MonitorMeasurement
    identical_results: bool
    counters: MaintenanceStatistics
    fallback_ticks: int = 0
    sharded_ticks: int = 0

    @property
    def measurements(self) -> list[MonitorMeasurement]:
        return [self.incremental, self.recompute]

    @property
    def requests_saved(self) -> int:
        return self.recompute.accessor_requests - self.incremental.accessor_requests

    @property
    def savings_fraction(self) -> float:
        if self.recompute.accessor_requests == 0:
            return 0.0
        return self.requests_saved / self.recompute.accessor_requests


def _build_subscription_requests(
    workload: Workload, count: int, mix: str, k: int
) -> list[QueryRequest]:
    """``count`` subscription requests over the workload's query locations."""
    rng = random.Random(workload.spec.seed + 43)
    dimensions = workload.graph.num_cost_types
    requests: list[QueryRequest] = []
    for index, query in enumerate(workload.queries[:count]):
        as_skyline = mix == "skyline" or (mix == "mixed" and index % 2 == 0)
        if as_skyline:
            requests.append(SkylineRequest(query))
        else:
            weights = WeightedSum.random(dimensions, rng).weights
            requests.append(TopKRequest(query, k, weights=weights))
    return requests


def _monitor_signature(request: QueryRequest, result) -> object:
    """A comparable digest of one subscription's answer (ids for skylines,
    rounded scores for rankings — the same tolerance the maintenance tests
    use, since equal-scoring facilities at the k-boundary may legitimately
    differ between paths)."""
    if isinstance(request, SkylineRequest):
        return frozenset(result.facility_ids())
    return tuple(round(item.score, 6) for item in result)


def _maintained_signature(request: QueryRequest, maintainer) -> object:
    if isinstance(request, SkylineRequest):
        return frozenset(maintainer.skyline_ids())
    return tuple(round(score, 6) for _fid, score in maintainer.ranking())


def replay_update_stream(
    spec: MonitorReplaySpec, *, workload: Workload | None = None
) -> MonitorReplayReport:
    """Replay one update stream twice and compare the two maintenance modes.

    * **incremental** — a :class:`~repro.monitor.MonitoringService` consumes
      the stream, patching each subscription through the cheap maintenance
      paths and falling back to batched CEA only for the hard cases;
    * **recompute** — after each tick's updates are applied, every
      subscription is recomputed from scratch through a fresh batch
      :class:`~repro.service.QueryService` (the no-maintenance straw man).

    Both runs mutate their own copy of the facility set, so they see
    identical streams; after every tick each subscription's results are
    cross-checked.  Work is compared in logical accessor requests (the
    maintainers evaluate against the in-memory data layer) and per-tick
    latency percentiles.
    """
    workload = workload or make_workload(spec.workload)
    graph = workload.graph
    requests = _build_subscription_requests(workload, spec.subscriptions, spec.mix, spec.k)

    monitor_facilities = FacilitySet(graph, iter(workload.facilities))
    recompute_facilities = FacilitySet(graph, iter(workload.facilities))

    monitor_policy = ExecutionPolicy(
        workers=spec.workers,
        routing=spec.routing,
        executor=spec.executor,
        shard_fallback_threshold=spec.shard_fallback_threshold,
    )
    session = Session(graph, monitor_facilities, policy=monitor_policy)
    handle = session.monitor(requests)
    sids = list(handle.subscription_ids)
    # Exclude subscribe-time setup computations from the reported
    # incremental-vs-fallback split: only tick-driven maintenance counts.
    counters_baseline = handle.statistics
    stream = make_update_stream(
        graph, workload.facilities, spec.stream, subscription_ids=sids
    )

    # Incremental run.
    incremental = MonitorMeasurement(
        label="incremental", ticks=len(stream), updates=stream.num_updates
    )
    fallback_ticks = 0
    sharded_ticks = 0
    maintained_signatures: list[dict[int, object]] = []
    start = time.perf_counter()
    for tick in stream:
        response = handle.tick(tick)
        incremental.tick_latencies_ms.append(response.elapsed_seconds * 1000.0)
        incremental.accessor_requests += response.io.total_requests
        if response.fallback_subscriptions:
            fallback_ticks += 1
        if response.sharded:
            sharded_ticks += 1
        maintained_signatures.append(
            {
                sid: _maintained_signature(request, handle.maintainer_of(sid))
                for sid, request in zip(sids, requests)
            }
        )
    incremental.elapsed_seconds = time.perf_counter() - start

    # Recompute-every-tick run over an identical facility-set copy.
    recompute = MonitorMeasurement(
        label="recompute", ticks=len(stream), updates=stream.num_updates
    )
    locations = {sid: request.location for sid, request in zip(sids, requests)}
    identical = True
    start = time.perf_counter()
    for tick_index, tick in enumerate(stream):
        tick_start = time.perf_counter()
        for update in tick:
            if isinstance(update, QueryRelocation):
                locations[update.subscription_id] = update.location
            elif isinstance(update, FacilityInsert):
                recompute_facilities.add_on_edge(
                    update.facility_id, update.edge_id, update.offset
                )
            else:
                recompute_facilities.remove(update.facility_id)
        tick_requests: list[QueryRequest] = []
        for sid, request in zip(sids, requests):
            if isinstance(request, SkylineRequest):
                tick_requests.append(SkylineRequest(locations[sid]))
            else:
                tick_requests.append(
                    TopKRequest(locations[sid], request.k, weights=request.weights)
                )
        # A fresh per-tick session: the straw man recomputes from scratch,
        # so nothing (engine, cache, memo) may survive the previous tick.
        tick_session = Session(
            graph, recompute_facilities, policy=ExecutionPolicy(memoize_results=False)
        )
        batch = tick_session.run_batch(tick_requests)
        recompute.tick_latencies_ms.append((time.perf_counter() - tick_start) * 1000.0)
        recompute.accessor_requests += batch.io.total_requests
        for sid, response in zip(sids, batch.responses):
            if (
                _monitor_signature(response.request, response.result)
                != maintained_signatures[tick_index][sid]
            ):
                identical = False
    recompute.elapsed_seconds = time.perf_counter() - start

    return MonitorReplayReport(
        spec=spec,
        incremental=incremental,
        recompute=recompute,
        identical_results=identical,
        counters=handle.statistics.since(counters_baseline),
        fallback_ticks=fallback_ticks,
        sharded_ticks=sharded_ticks,
    )


def format_monitor_report(report: MonitorReplayReport) -> str:
    """Human-readable table of a monitor replay (used by the ``monitor`` command)."""
    spec = report.spec
    counts = {"ticks": report.incremental.ticks, "updates": report.incremental.updates}
    lines = [
        f"workload: {spec.workload.num_nodes} nodes, "
        f"{spec.workload.num_facilities} facilities, d={spec.workload.num_cost_types}; "
        f"{spec.subscriptions} subscriptions ({spec.mix} mix), "
        f"{counts['ticks']} ticks / {counts['updates']} updates",
        "",
        f"{'run':<12} {'ticks/s':>9} {'p50 ms':>9} {'p90 ms':>9} {'p99 ms':>9} "
        f"{'accessor reqs':>14}",
    ]
    for run in report.measurements:
        lines.append(
            f"{run.label:<12} {run.ticks_per_second:>9.1f} "
            f"{run.latency_percentile(50):>9.2f} {run.latency_percentile(90):>9.2f} "
            f"{run.latency_percentile(99):>9.2f} {run.accessor_requests:>14}"
        )
    counters = report.counters
    lines.append("")
    lines.append(
        f"accessor requests saved: {report.requests_saved} "
        f"({report.savings_fraction:.1%} of recompute-every-tick)"
    )
    lines.append(
        f"maintenance paths: {counters.incremental_updates} incremental, "
        f"{counters.recomputations} recomputations "
        f"({report.fallback_ticks} fallback ticks, {report.sharded_ticks} sharded)"
    )
    lines.append(f"results identical: {'yes' if report.identical_results else 'NO'}")
    return "\n".join(lines) + "\n"


def format_replay_report(report: ReplayReport) -> str:
    """Human-readable table of a replay comparison (used by ``serve-batch``)."""
    lines = [
        f"workload: {report.spec.workload.num_nodes} nodes, "
        f"{report.spec.workload.num_facilities} facilities, "
        f"d={report.spec.workload.num_cost_types}, "
        f"{len(report.one_shot.latencies_ms)} queries ({report.spec.mix} mix)",
        "",
        f"{'run':<10} {'queries':>7} {'qps':>9} {'p50 ms':>8} {'p90 ms':>8} "
        f"{'p99 ms':>8} {'page reads':>11} {'buffer hits':>12}",
    ]
    for run in report.measurements:
        lines.append(
            f"{run.label:<10} {run.queries:>7} {run.throughput_qps:>9.1f} "
            f"{run.latency_percentile(50):>8.2f} {run.latency_percentile(90):>8.2f} "
            f"{run.latency_percentile(99):>8.2f} {run.page_reads:>11} {run.buffer_hits:>12}"
        )
    lines.append("")
    lines.append(
        f"page reads saved: {report.page_reads_saved} "
        f"({report.savings_fraction:.1%} of one-shot)"
    )
    lines.append(f"cache record hit rate: {report.cache.hit_rate():.1%}")
    speedup = report.fast_path_speedup
    if speedup is not None:
        lines.append(
            f"fast path (*): compiled-graph kernel, {speedup:.2f}x one-shot "
            "median latency, identical page reads"
        )
    if report.sharded is not None:
        lines.append(
            f"sharded run: {report.spec.workers} workers, {report.spec.routing} routing, "
            f"{report.spec.executor} executor; merged counters "
            f"{'equal' if report.counters_consistent else 'DO NOT equal'} the shard sums"
        )
    lines.append(f"results identical: {'yes' if report.identical_results else 'NO'}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Async load replay through the serving tier
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServeReplaySpec:
    """An async load replay through :class:`~repro.serve.ServeApp`.

    ``clients`` concurrent in-process clients fire the trace: client 0 is
    the updater lane (``ticks`` facility-update ticks, internally ordered),
    the others race the query trace between them.  ``duplicates`` leading
    requests run twice so the cross-query memo is exercised under racing
    arrival orders.  The oracle is the same trace replayed sequentially, in
    the tier's ``seq`` order, against a direct :class:`~repro.api.Session`.
    """

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    mix: str = "mixed"
    k: int = 4
    clients: int = 8
    duplicates: int = 6
    ticks: int = 4
    updates_per_tick: int = 3
    max_in_flight: int = 8
    timeout_seconds: float | None = 60.0
    #: After this many served operations, ``app.drain()`` is initiated *while
    #: the load is still running*: lanes that hit the 503 ``draining`` answer
    #: stop, in-flight work completes, and the report carries the drain
    #: verdict.  ``None`` (the default) replays the whole trace undisturbed.
    drain_after: int | None = None
    #: Optional batch-job journal path; when set the app journals acks and
    #: ticks, and a clean drain records the journal's close marker.
    journal_path: str | None = None
    #: Seed for the retrying client's jitter and idempotency-key stream.
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if self.drain_after is not None and self.drain_after < 1:
            raise QueryError("drain_after must be a positive operation count")
        if self.mix not in _MIXES:
            raise QueryError(f"unknown mix {self.mix!r}; expected one of {_MIXES}")
        if self.k < 1:
            raise QueryError("k must be a positive integer")
        if self.clients < 2:
            raise QueryError(
                "the serve replay needs at least 2 clients: "
                "one updater lane plus racing query lanes"
            )
        if self.duplicates < 0:
            raise QueryError("duplicates must be non-negative")
        if self.ticks < 0:
            raise QueryError("ticks must be non-negative")
        if self.ticks and self.updates_per_tick < 1:
            raise QueryError("updates_per_tick must be positive when ticks run")
        # ServeConfig owns the admission/timeout validation.
        ServeConfig(
            max_in_flight=self.max_in_flight,
            request_timeout_seconds=self.timeout_seconds,
        )


@dataclass
class ServeReplayReport:
    """The served run against its sequential oracle.

    The differential verdict is split along the two things the paper cares
    about: ``identical_payloads`` says every response the tier produced
    under concurrency — result payloads, memo flags — equals the sequential
    replay bit for bit once wall-clock *and I/O-counter* fields are
    stripped; ``identical_io`` says the stripped I/O counters themselves
    match.  A clean run needs both (the CLI exits non-zero when either
    fails).  ``overhead`` is what the front door costs: served wall-clock
    over the direct library pass doing identical work in the identical
    order.
    """

    spec: ServeReplaySpec
    queries: int
    ticks: int
    served_seconds: float
    sequential_seconds: float
    metrics: dict
    identical_payloads: bool
    mismatched_ops: list[str] = field(default_factory=list)
    identical_io: bool = True
    mismatched_io_ops: list[str] = field(default_factory=list)
    #: :meth:`~repro.serve.DrainReport.to_payload` of the mid-load drain,
    #: or ``None`` when the spec did not request one.
    drain: dict | None = None
    #: Operations the drain turned away (never acknowledged, so excluded
    #: from — not failing — the differential).
    unserved_ops: int = 0
    #: Retry-client counters: total attempts and how many were retries.
    retry: dict | None = None

    @property
    def clean(self) -> bool:
        """Payloads *and* I/O identical — and the drain, if one ran, graceful."""
        drained_clean = self.drain is None or bool(self.drain.get("clean"))
        return self.identical_payloads and self.identical_io and drained_clean

    @property
    def operations(self) -> int:
        return self.queries + self.ticks

    @property
    def operations_per_second(self) -> float:
        if self.operations == 0 or self.served_seconds <= 0:
            return 0.0
        return self.operations / self.served_seconds

    @property
    def overhead(self) -> float:
        """Served wall-clock as a multiple of the sequential library pass."""
        if self.sequential_seconds <= 0:
            return 0.0
        return self.served_seconds / self.sequential_seconds


def _serve_ops(spec: ServeReplaySpec, workload: Workload) -> list[dict]:
    """The trace as JSON payloads: queries with duplicates, then ticks."""
    trace = ReplaySpec(workload=spec.workload, mix=spec.mix, k=spec.k)
    requests = [
        request_to_payload(request) for request in build_requests(workload, trace)
    ]
    ops: list[dict] = []
    for index, payload in enumerate(requests + requests[: spec.duplicates]):
        ops.append({"id": f"q{index}", "kind": "query", "request": payload})
    stream = make_update_stream(
        workload.graph,
        workload.facilities,
        UpdateStreamSpec(
            num_ticks=spec.ticks,
            updates_per_tick=spec.updates_per_tick,
            insert_fraction=0.5,
            delete_fraction=0.5,
            relocate_fraction=0.0,
            seed=spec.workload.seed + 53,
        ),
        subscription_ids=[],
    )
    for index, tick in enumerate(stream):
        ops.append({"id": f"t{index}", "kind": "tick", "updates": tick_to_payload(tick)})
    return ops


def _strip_wallclock(payload):
    """Drop ``elapsed_seconds`` recursively; the rest must match bit for bit."""
    if isinstance(payload, dict):
        return {
            key: _strip_wallclock(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [_strip_wallclock(item) for item in payload]
    return payload


def _strip_io(payload):
    """Drop ``io`` counter blocks recursively (the payload-only view)."""
    if isinstance(payload, dict):
        return {
            key: _strip_io(value) for key, value in payload.items() if key != "io"
        }
    if isinstance(payload, list):
        return [_strip_io(item) for item in payload]
    return payload


def _collect_io(payload, out: list) -> list:
    """Every ``io`` counter block in the payload, in document order."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            if key == "io":
                out.append(value)
            else:
                _collect_io(value, out)
    elif isinstance(payload, list):
        for item in payload:
            _collect_io(item, out)
    return out


async def _serve_pass(
    spec: ServeReplaySpec, workload: Workload, ops: list[dict]
) -> tuple[dict[str, dict], dict, float, dict | None, dict | None]:
    """Fire the trace through the tier under real concurrency.

    Every lane speaks through a :class:`~repro.serve.RetryingClient`, so
    429/503/504 answers are retried with backoff (and every POST/PATCH
    carries an ``Idempotency-Key``, making those retries safe).  With
    ``drain_after`` set, a drain starts mid-load: the 503 ``draining``
    answer is treated as conclusive and ends the lane instead of failing
    the replay.
    """
    session = Session(workload.graph, FacilitySet(workload.graph, iter(workload.facilities)))
    journal = (
        None
        if spec.journal_path is None
        else JobJournal(spec.journal_path, fingerprint=session.dataset_fingerprint())
    )
    app = ServeApp(
        session,
        config=ServeConfig(
            max_in_flight=spec.max_in_flight,
            request_timeout_seconds=spec.timeout_seconds,
        ),
        journal=journal,
    )
    client = RetryingClient(
        InProcessClient(app),
        policy=RetryPolicy(fatal_codes=("closed", "draining")),
        seed=spec.retry_seed,
    )
    results: dict[str, dict] = {}
    lanes: list[list[dict]] = [[] for _ in range(spec.clients)]
    racing = 0
    for op in ops:
        if op["kind"] == "tick":
            lanes[0].append(op)
        else:
            lanes[1 + racing % (spec.clients - 1)].append(op)
            racing += 1

    served = 0
    drain_gate = asyncio.Event()
    drain_payload: dict | None = None

    async def worker(lane: list[dict]) -> None:
        nonlocal served
        for op in lane:
            if op["kind"] == "query":
                response = await client.post("/v1/query", {"request": op["request"]})
            else:
                response = await client.patch("/v1/facilities", {"updates": op["updates"]})
            if not response.ok:
                code = response.payload.get("error", {}).get("code")
                if code in ("draining", "closed"):
                    return  # the tier is going away; the lane ends here
                raise QueryError(
                    f"serve replay: op {op['id']} failed with {response.status}: "
                    f"{response.payload}"
                )
            results[op["id"]] = response.payload
            served += 1
            if spec.drain_after is not None and served >= spec.drain_after:
                drain_gate.set()

    async def drainer() -> None:
        nonlocal drain_payload
        await drain_gate.wait()
        report = await app.drain()
        drain_payload = report.to_payload()

    async with app:
        drain_task = (
            asyncio.create_task(drainer()) if spec.drain_after is not None else None
        )
        start = time.perf_counter()
        await asyncio.gather(*(worker(lane) for lane in lanes))
        elapsed = time.perf_counter() - start
        if drain_task is not None:
            drain_gate.set()  # the trace may be shorter than the threshold
            await drain_task
        metrics = app.metrics()
    retry_stats = {"attempts": client.attempts, "retries": client.retries}
    return results, metrics, elapsed, drain_payload, retry_stats


def _sequential_pass(
    workload: Workload, ops: list[dict], served: dict[str, dict]
) -> tuple[dict[str, dict], float]:
    """The oracle: the acknowledged ops, in ``seq`` order, on a direct Session."""
    expected: dict[str, dict] = {}
    acknowledged = [op for op in ops if op["id"] in served]
    ordered = sorted(acknowledged, key=lambda op: served[op["id"]]["seq"])
    with Session(
        workload.graph, FacilitySet(workload.graph, iter(workload.facilities))
    ) as session:
        handle = None
        start = time.perf_counter()
        for op in ordered:
            seq = served[op["id"]]["seq"]
            if op["kind"] == "query":
                response = session.query(request_from_payload(op["request"]))
                expected[op["id"]] = {"seq": seq, **query_response_to_payload(response)}
            else:
                if handle is None:
                    handle = session.monitor(())
                response = handle.tick(tick_from_payload(op["updates"]))
                invalidated = session.invalidate_result_caches()
                expected[op["id"]] = {
                    "seq": seq,
                    "invalidated_services": invalidated,
                    **tick_response_to_payload(response),
                }
        elapsed = time.perf_counter() - start
    return expected, elapsed


def replay_serve_workload(spec: ServeReplaySpec) -> ServeReplayReport:
    """Replay a concurrent trace through the serving tier and verify it.

    Runs the served pass first (recording the tier's ``seq`` stamps), then
    the sequential oracle in that order, and compares every payload with
    wall-clock fields stripped.
    """
    workload = make_workload(spec.workload)
    ops = _serve_ops(spec, workload)
    served, metrics, served_seconds, drain, retry = asyncio.run(
        _serve_pass(spec, workload, ops)
    )
    expected, sequential_seconds = _sequential_pass(workload, ops, served)
    mismatched: list[str] = []
    mismatched_io: list[str] = []
    acknowledged = [op for op in ops if op["id"] in served]
    for op in acknowledged:
        got = _strip_wallclock(served[op["id"]])
        want = _strip_wallclock(expected[op["id"]])
        if _strip_io(got) != _strip_io(want):
            mismatched.append(op["id"])
        if _collect_io(got, []) != _collect_io(want, []):
            mismatched_io.append(op["id"])
    return ServeReplayReport(
        spec=spec,
        queries=sum(1 for op in acknowledged if op["kind"] == "query"),
        ticks=sum(1 for op in acknowledged if op["kind"] == "tick"),
        served_seconds=served_seconds,
        sequential_seconds=sequential_seconds,
        metrics=metrics,
        identical_payloads=not mismatched,
        mismatched_ops=mismatched,
        identical_io=not mismatched_io,
        mismatched_io_ops=mismatched_io,
        drain=drain,
        unserved_ops=len(ops) - len(acknowledged),
        retry=retry,
    )


def format_serve_report(report: ServeReplayReport) -> str:
    """Human-readable table of a serve replay (used by ``serve --replay``)."""
    spec = report.spec
    lines = [
        f"workload: {spec.workload.num_nodes} nodes, "
        f"{spec.workload.num_facilities} facilities, d={spec.workload.num_cost_types}; "
        f"{report.queries} queries ({spec.mix} mix, {spec.duplicates} duplicated) + "
        f"{report.ticks} update ticks over {spec.clients} concurrent clients",
        "",
        f"{'endpoint':<14} {'count':>6} {'p50 ms':>8} {'p90 ms':>8} {'p99 ms':>8} {'max ms':>8}",
    ]
    endpoints = report.metrics.get("endpoints", {})
    for label in sorted(endpoints):
        summary = endpoints[label]
        lines.append(
            f"{label:<14} {summary['count']:>6} {summary['p50_ms']:>8.2f} "
            f"{summary['p90_ms']:>8.2f} {summary['p99_ms']:>8.2f} {summary['max_ms']:>8.2f}"
        )
    admission = report.metrics.get("admission", {})
    lines.append("")
    lines.append(
        f"throughput: {report.operations_per_second:.1f} ops/s served "
        f"({report.served_seconds * 1000:.1f} ms wall-clock, "
        f"{report.overhead:.2f}x the sequential library pass)"
    )
    lines.append(
        f"admission: {admission.get('admitted', 0)} admitted, "
        f"{admission.get('rejected', 0)} rejected, "
        f"high water {admission.get('high_water', 0)}/{admission.get('capacity', 0)}"
    )
    lines.append(
        f"errors: {report.metrics.get('errors', 0)}, "
        f"timeouts: {report.metrics.get('timeouts', 0)}"
    )
    if report.retry is not None and report.retry.get("retries"):
        lines.append(
            f"retries: {report.retry['retries']} of {report.retry['attempts']} attempts"
        )
    if report.drain is not None:
        drain_verdict = "clean" if report.drain.get("clean") else "FORCED"
        lines.append(
            f"drain: {drain_verdict} after {report.operations} acknowledged ops "
            f"({report.unserved_ops} turned away, "
            f"{report.drain.get('waited_seconds', 0.0) * 1000:.1f} ms drain wait)"
        )
    verdict = "yes" if report.identical_payloads else "NO"
    lines.append(f"payloads identical to sequential replay: {verdict}")
    if report.mismatched_ops:
        lines.append("mismatched ops: " + ", ".join(report.mismatched_ops))
    io_verdict = "yes" if report.identical_io else "NO"
    lines.append(f"I/O counters identical to sequential replay: {io_verdict}")
    if report.mismatched_io_ops:
        lines.append("I/O-mismatched ops: " + ", ".join(report.mismatched_io_ops))
    return "\n".join(lines) + "\n"
