"""Time-dependent bench family: incremental re-profiling vs rebuild-every-tick.

A rush-hour :class:`~repro.datagen.EdgeCostStreamSpec` stream is replayed
against live subscriptions two ways:

* **incremental** — one long-lived :class:`~repro.monitor.MonitoringService`
  absorbs every tick through :meth:`apply_tick`: compiled edge vectors are
  patched in place and only the tick's stale subscriptions recompute.  An
  off-peak tick that re-profiles nothing costs nothing.
* **rebuild** — the straw man a system without the maintenance extension is
  stuck with: after every tick the edge costs are written into the graph and
  a *fresh* service is built from scratch (facility index, compiled graph,
  one full query per subscription), whether or not the tick changed anything.

Both legs must end with bit-identical subscription answers
(``results_identical``) — the bench is its own differential check — while
the logical accessor-request counters and wall-clock expose how much work
the incremental path avoids.  An optional third leg probes the departure
-time view of the *same* rush hour (``make_profile_network`` shares the
stream's seeded profile assignment): a profile-registered
:class:`~repro.api.Session` answers one skyline per tick instant and reports
the snapshot LRU's build/hit split.

Run via ``repro-mcn bench timedep``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.api.policy import ExecutionPolicy
from repro.api.session import Session
from repro.datagen.updates import EdgeCostStreamSpec, make_edge_cost_stream, make_profile_network
from repro.datagen.workload import Workload, WorkloadSpec, make_workload
from repro.errors import QueryError
from repro.monitor.service import MonitoringService
from repro.monitor.stream import EdgeCostUpdate, UpdateStream
from repro.network.facilities import FacilitySet
from repro.service.requests import QueryRequest, SkylineRequest, TopKRequest

__all__ = [
    "TimedepBenchSpec",
    "TimedepLeg",
    "TimedepSnapshotProbe",
    "TimedepReport",
    "run_timedep_bench",
    "format_timedep_report",
]


@dataclass(frozen=True)
class TimedepBenchSpec:
    """One timedep run: the monitored workload plus the rush-hour stream."""

    workload: WorkloadSpec = field(
        default_factory=lambda: WorkloadSpec(
            num_nodes=300, num_facilities=60, num_cost_types=2, num_queries=6, seed=7
        )
    )
    #: The default window runs well past the rush hour: a periodic
    #: re-profiler ticks all day, but congestion only moves around the peak,
    #: so most ticks are empty — exactly the regime where incremental
    #: maintenance wins over rebuilding.
    stream: EdgeCostStreamSpec = field(
        default_factory=lambda: EdgeCostStreamSpec(
            num_ticks=24, start_time=6.0, time_step=0.5
        )
    )
    k: int = 3
    probe_snapshots: bool = True

    def __post_init__(self):
        if self.workload.num_queries < 1:
            raise QueryError(
                f"need at least one subscription, got {self.workload.num_queries!r}"
            )
        if self.stream.num_ticks < 1:
            raise QueryError(
                f"need at least one tick to replay, got {self.stream.num_ticks!r}"
            )
        if self.k < 1:
            raise QueryError(f"k must be a positive integer, got {self.k!r}")

    def requests(self, workload: Workload) -> list[QueryRequest]:
        """The subscription load: queries alternate skyline / top-k."""
        dims = self.workload.num_cost_types
        weights = tuple(round(1.0 / dims, 9) for _ in range(dims))
        return [
            SkylineRequest(query)
            if index % 2 == 0
            else TopKRequest(query, self.k, weights=weights)
            for index, query in enumerate(workload.queries)
        ]


@dataclass(frozen=True)
class TimedepLeg:
    """One replay strategy's cost over the whole stream."""

    seconds: float
    total_requests: int
    adjacency_requests: int
    recomputations: int
    edge_cost_refreshes: int
    services_built: int

    def to_payload(self) -> dict:
        return {
            "seconds": round(self.seconds, 6),
            "total_requests": self.total_requests,
            "adjacency_requests": self.adjacency_requests,
            "recomputations": self.recomputations,
            "edge_cost_refreshes": self.edge_cost_refreshes,
            "services_built": self.services_built,
        }


@dataclass(frozen=True)
class TimedepSnapshotProbe:
    """Departure-time queries over the stream's rush hour, one per tick."""

    seconds: float
    queries: int
    builds: int
    hits: int
    evictions: int

    def to_payload(self) -> dict:
        return {
            "seconds": round(self.seconds, 6),
            "queries": self.queries,
            "builds": self.builds,
            "hits": self.hits,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class TimedepReport:
    """The full timedep verdict for one spec."""

    spec: TimedepBenchSpec
    subscriptions: int
    busy_ticks: int
    empty_ticks: int
    stream_updates: int
    incremental: TimedepLeg
    rebuild: TimedepLeg
    results_identical: bool
    probe: TimedepSnapshotProbe | None = None

    @property
    def work_ratio(self) -> float | None:
        """Rebuild-leg accessor requests per incremental-leg request."""
        if not self.incremental.total_requests:
            return None
        return self.rebuild.total_requests / self.incremental.total_requests

    def to_payload(self) -> dict:
        payload = {
            "spec": {
                "workload": {
                    "num_nodes": self.spec.workload.num_nodes,
                    "num_facilities": self.spec.workload.num_facilities,
                    "num_cost_types": self.spec.workload.num_cost_types,
                    "num_queries": self.spec.workload.num_queries,
                    "seed": self.spec.workload.seed,
                },
                "stream": {
                    "num_ticks": self.spec.stream.num_ticks,
                    "start_time": self.spec.stream.start_time,
                    "time_step": self.spec.stream.time_step,
                    "affected_fraction": self.spec.stream.affected_fraction,
                    "seed": self.spec.stream.seed,
                },
                "k": self.spec.k,
            },
            "subscriptions": self.subscriptions,
            "busy_ticks": self.busy_ticks,
            "empty_ticks": self.empty_ticks,
            "stream_updates": self.stream_updates,
            "incremental": self.incremental.to_payload(),
            "rebuild": self.rebuild.to_payload(),
            "results_identical": self.results_identical,
        }
        if self.work_ratio is not None:
            payload["work_ratio"] = round(self.work_ratio, 4)
        if self.probe is not None:
            payload["snapshot_probe"] = self.probe.to_payload()
        return payload


def _run_incremental_leg(
    spec: TimedepBenchSpec, stream: UpdateStream
) -> tuple[TimedepLeg, list[dict]]:
    workload = make_workload(spec.workload)
    facilities = FacilitySet(workload.graph, iter(workload.facilities))
    service = MonitoringService(workload.graph, facilities)
    subscription_ids = [
        service.subscribe(request) for request in spec.requests(workload)
    ]
    # Setup (initial subscription queries) stays outside the timed replay;
    # both legs start from fully-computed answers.
    io_before = service.access_statistics.snapshot()
    counters_before = service.statistics.snapshot()
    started = time.perf_counter()
    for tick in stream.ticks:
        service.apply_tick(tick)
    seconds = time.perf_counter() - started
    io = service.access_statistics
    counters = service.statistics
    signatures = [service.result_signature(sid) for sid in subscription_ids]
    service.close()
    return (
        TimedepLeg(
            seconds=seconds,
            total_requests=io.total_requests - io_before.total_requests,
            adjacency_requests=io.adjacency_requests - io_before.adjacency_requests,
            recomputations=counters.recomputations - counters_before.recomputations,
            edge_cost_refreshes=(
                counters.edge_cost_refreshes - counters_before.edge_cost_refreshes
            ),
            services_built=1,
        ),
        signatures,
    )


def _run_rebuild_leg(
    spec: TimedepBenchSpec, stream: UpdateStream
) -> tuple[TimedepLeg, list[dict]]:
    workload = make_workload(spec.workload)
    requests = spec.requests(workload)
    graph = workload.graph
    total_requests = 0
    adjacency_requests = 0
    recomputations = 0
    signatures: list[dict] = []
    started = time.perf_counter()
    for tick in stream.ticks:
        for update in tick.updates:
            graph.update_edge_costs(update.edge_id, list(update.costs))
        facilities = FacilitySet(graph, iter(workload.facilities))
        service = MonitoringService(graph, facilities)
        subscription_ids = [service.subscribe(request) for request in requests]
        io = service.access_statistics
        total_requests += io.total_requests
        adjacency_requests += io.adjacency_requests
        recomputations += len(subscription_ids)
        signatures = [service.result_signature(sid) for sid in subscription_ids]
        service.close()
    seconds = time.perf_counter() - started
    return (
        TimedepLeg(
            seconds=seconds,
            total_requests=total_requests,
            adjacency_requests=adjacency_requests,
            recomputations=recomputations,
            edge_cost_refreshes=0,
            services_built=len(stream.ticks),
        ),
        signatures,
    )


def _run_snapshot_probe(spec: TimedepBenchSpec) -> TimedepSnapshotProbe:
    workload = make_workload(spec.workload)
    network = make_profile_network(workload.graph, spec.stream)
    stream_spec = spec.stream
    # A quantum of two tick steps halves the distinct snapshots the probe
    # needs, so the LRU's hit path is exercised, not just its build path.
    policy = ExecutionPolicy(
        temporal="profiles",
        profile_source="rush",
        temporal_quantum=2.0 * stream_spec.time_step,
    )
    request = SkylineRequest(workload.queries[0])
    with Session(
        workload.graph, workload.facilities, profiles={"rush": network}
    ) as session:
        started = time.perf_counter()
        for tick_index in range(stream_spec.num_ticks):
            departure_time = stream_spec.start_time + tick_index * stream_spec.time_step
            session.query(
                replace(request, departure_time=departure_time), policy=policy
            )
        seconds = time.perf_counter() - started
        stats = session._temporal_for(session._resolve(policy)).statistics
    return TimedepSnapshotProbe(
        seconds=seconds,
        queries=stream_spec.num_ticks,
        builds=stats.builds,
        hits=stats.hits,
        evictions=stats.evictions,
    )


def run_timedep_bench(spec: TimedepBenchSpec) -> TimedepReport:
    """Replay one rush-hour stream incrementally and via rebuild-every-tick.

    The stream is generated once (against a throwaway workload instance) and
    replayed verbatim in both legs; each leg regenerates the workload from
    the spec so neither sees the other's mutations.
    """
    stream_source = make_workload(spec.workload)
    stream = make_edge_cost_stream(stream_source.graph, spec.stream)
    for tick in stream.ticks:
        for update in tick.updates:
            if not isinstance(update, EdgeCostUpdate):  # pragma: no cover
                raise QueryError("timedep streams carry only edge-cost updates")

    incremental, incremental_signatures = _run_incremental_leg(spec, stream)
    rebuild, rebuild_signatures = _run_rebuild_leg(spec, stream)
    probe = _run_snapshot_probe(spec) if spec.probe_snapshots else None

    busy_ticks = sum(1 for tick in stream.ticks if len(tick))
    return TimedepReport(
        spec=spec,
        subscriptions=spec.workload.num_queries,
        busy_ticks=busy_ticks,
        empty_ticks=len(stream.ticks) - busy_ticks,
        stream_updates=sum(len(tick) for tick in stream.ticks),
        incremental=incremental,
        rebuild=rebuild,
        results_identical=incremental_signatures == rebuild_signatures,
        probe=probe,
    )


def format_timedep_report(report: TimedepReport) -> str:
    """Human-readable table for ``repro-mcn bench timedep``."""
    workload = report.spec.workload
    stream = report.spec.stream
    lines = [
        f"workload: {workload.num_nodes} nodes, d={workload.num_cost_types}, "
        f"{workload.num_facilities} facilities, {report.subscriptions} subscriptions",
        f"stream: {stream.num_ticks} ticks from t={stream.start_time} "
        f"(step {stream.time_step}), {report.stream_updates} edge re-profilings, "
        f"{report.busy_ticks} busy / {report.empty_ticks} empty ticks",
        "",
        f"{'leg':<14} {'seconds':>9} {'requests':>10} {'adjacency':>10} "
        f"{'recomputes':>10} {'services':>9}",
    ]
    for name, leg in (("incremental", report.incremental), ("rebuild", report.rebuild)):
        lines.append(
            f"{name:<14} {leg.seconds:>9.3f} {leg.total_requests:>10} "
            f"{leg.adjacency_requests:>10} {leg.recomputations:>10} "
            f"{leg.services_built:>9}"
        )
    lines.append("")
    if report.work_ratio is not None:
        lines.append(
            f"rebuild-every-tick does {report.work_ratio:.2f}x the accessor "
            "requests of the incremental path"
        )
    else:
        lines.append(
            "incremental replay issued no accessor requests (all ticks off-peak)"
        )
    lines.append(
        "final answers identical across legs: "
        + ("yes" if report.results_identical else "NO")
    )
    if report.probe is not None:
        probe = report.probe
        lines.append(
            f"snapshot probe: {probe.queries} departure-time queries in "
            f"{probe.seconds:.3f}s — {probe.builds} snapshot builds, "
            f"{probe.hits} LRU hits, {probe.evictions} evictions"
        )
    return "\n".join(lines) + "\n"
