"""Conventional skyline algorithms over fully materialised cost vectors.

These are the classic main-memory/disk skyline methods the paper surveys in
Section II-A.  They assume every tuple's attributes are directly available
— which is exactly why they do not solve the MCN skyline problem by
themselves, but they are the natural post-processing step of the
straightforward baseline and the oracle used in the test suite.

All functions accept a mapping ``key -> cost tuple`` and return the set of
keys whose vectors are not dominated by any other vector.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from repro.errors import QueryError
from repro.network.costs import dominates

__all__ = ["bnl_skyline", "sfs_skyline", "dc_skyline", "is_skyline_member"]

Key = Hashable


def _validate(points: Mapping[Key, Sequence[float]]) -> int:
    dimensions = None
    for vector in points.values():
        if dimensions is None:
            dimensions = len(vector)
        elif len(vector) != dimensions:
            raise QueryError("all cost vectors must have the same dimensionality")
    return dimensions or 0


def bnl_skyline(points: Mapping[Key, Sequence[float]]) -> set[Key]:
    """Block-nested-loops skyline (Börzsönyi et al.): compare against a window."""
    _validate(points)
    window: list[tuple[Key, tuple[float, ...]]] = []
    for key, vector in points.items():
        vector = tuple(vector)
        dominated = False
        survivors: list[tuple[Key, tuple[float, ...]]] = []
        for other_key, other_vector in window:
            if dominates(other_vector, vector):
                dominated = True
                survivors = window
                break
            if not dominates(vector, other_vector):
                survivors.append((other_key, other_vector))
        if dominated:
            continue
        survivors.append((key, vector))
        window = survivors
    return {key for key, _ in window}


def sfs_skyline(points: Mapping[Key, Sequence[float]]) -> set[Key]:
    """Sort-filter skyline (Chomicki et al.): presort by the sum of costs.

    After sorting by a monotone scoring function, a tuple can only be
    dominated by tuples that precede it, so a single pass with a growing
    skyline window suffices.
    """
    _validate(points)
    ordered = sorted(points.items(), key=lambda item: (sum(item[1]), tuple(item[1])))
    skyline: list[tuple[Key, tuple[float, ...]]] = []
    result: set[Key] = set()
    for key, vector in ordered:
        vector = tuple(vector)
        if any(dominates(other, vector) for _, other in skyline):
            continue
        skyline.append((key, vector))
        result.add(key)
    return result


def dc_skyline(points: Mapping[Key, Sequence[float]]) -> set[Key]:
    """Divide-and-conquer skyline: split on the first attribute's median value and merge.

    The split is by *value*, not by index: every point in the right half has a
    strictly larger first attribute than every point in the left half, so the
    left skyline is final and right-half survivors only need to be checked
    against it.  Blocks whose first attribute is constant fall back to the
    brute-force base case (they cannot be value-split).
    """
    dimensions = _validate(points)
    items = [(key, tuple(vector)) for key, vector in points.items()]
    if not items or dimensions == 0:
        return set()

    def brute(block: list[tuple[Key, tuple[float, ...]]]) -> list[tuple[Key, tuple[float, ...]]]:
        keep = []
        for key, vector in block:
            if not any(
                dominates(other_vector, vector)
                for other_key, other_vector in block
                if other_key != key
            ):
                keep.append((key, vector))
        return keep

    def solve(block: list[tuple[Key, tuple[float, ...]]]) -> list[tuple[Key, tuple[float, ...]]]:
        if len(block) <= 8:
            return brute(block)
        block = sorted(block, key=lambda item: item[1][0])
        pivot = block[len(block) // 2][1][0]
        left = [item for item in block if item[1][0] < pivot]
        right = [item for item in block if item[1][0] >= pivot]
        if not left:
            left = [item for item in block if item[1][0] <= pivot]
            right = [item for item in block if item[1][0] > pivot]
            if not right:
                return brute(block)
        left_skyline = solve(left)
        right_skyline = solve(right)
        merged = list(left_skyline)
        for key, vector in right_skyline:
            if not any(dominates(other_vector, vector) for _, other_vector in left_skyline):
                merged.append((key, vector))
        return merged

    return {key for key, _ in solve(items)}


def is_skyline_member(
    key: Key, points: Mapping[Key, Sequence[float]]
) -> bool:
    """Whether the vector under ``key`` is dominated by no other vector."""
    vector = tuple(points[key])
    return not any(
        dominates(tuple(other), vector)
        for other_key, other in points.items()
        if other_key != key
    )
