"""Multi-criteria Pareto path computation (label-correcting).

Section II-D of the paper contrasts the MCN skyline with the operations-
research problem of computing the *Pareto set of paths* between a fixed
source and a fixed destination: a path dominates another if none of its d
costs is larger (and at least one is smaller).  This module implements a
label-correcting solver for that problem — it is not needed by the MCN
skyline/top-k algorithms, but it rounds out the related-work substrate, is
used by one of the examples, and its results cross-check the per-cost
shortest paths (every single-cost optimum appears among the Pareto labels).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.errors import GraphError
from repro.network.costs import CostVector, dominates, dominates_or_equal
from repro.network.graph import MultiCostGraph, NodeId

__all__ = ["ParetoPath", "pareto_paths"]


@dataclass(frozen=True)
class ParetoPath:
    """One non-dominated path between the query's source and destination."""

    nodes: tuple[NodeId, ...]
    costs: CostVector


def _insert_label(labels: list[tuple[float, ...]], candidate: tuple[float, ...]) -> bool:
    """Add ``candidate`` to a node's label set unless (weakly) dominated.

    Existing labels dominated by the candidate are pruned.  Returns whether
    the candidate was inserted (and therefore needs to be explored further).
    """
    for existing in labels:
        if dominates_or_equal(existing, candidate):
            return False
    labels[:] = [label for label in labels if not dominates(candidate, label)]
    labels.append(candidate)
    return True


def pareto_paths(
    graph: MultiCostGraph,
    source: NodeId,
    target: NodeId,
    *,
    max_labels_per_node: int = 512,
) -> list[ParetoPath]:
    """All Pareto-optimal paths from ``source`` to ``target``.

    A label-correcting search maintains, per node, the set of non-dominated
    cost vectors discovered so far; labels are explored in increasing order
    of their cost sum.  ``max_labels_per_node`` bounds the label sets to keep
    worst-case behaviour manageable on adversarial inputs (the bound is far
    above what road networks produce in practice; exceeding it raises).

    Paths whose cost vectors tie exactly are reported once.
    """
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source}")
    if not graph.has_node(target):
        raise GraphError(f"unknown node {target}")
    dimensions = graph.num_cost_types
    zero = tuple([0.0] * dimensions)
    labels: dict[NodeId, list[tuple[float, ...]]] = {source: [zero]}
    tiebreak = itertools.count()
    heap: list[tuple[float, int, NodeId, tuple[float, ...], tuple[NodeId, ...]]] = [
        (0.0, next(tiebreak), source, zero, (source,))
    ]
    target_paths: dict[tuple[float, ...], tuple[NodeId, ...]] = {}
    while heap:
        _priority, _tie, node, costs, path = heapq.heappop(heap)
        if costs not in labels.get(node, []):
            continue  # this label was dominated after being pushed
        if node == target:
            target_paths.setdefault(costs, path)
            continue
        for neighbor, edge in graph.neighbors(node):
            new_costs = tuple(c + w for c, w in zip(costs, edge.costs))
            node_labels = labels.setdefault(neighbor, [])
            if _insert_label(node_labels, new_costs):
                if len(node_labels) > max_labels_per_node:
                    raise GraphError(
                        f"Pareto label set of node {neighbor} exceeded {max_labels_per_node} entries"
                    )
                heapq.heappush(
                    heap,
                    (sum(new_costs), next(tiebreak), neighbor, new_costs, path + (neighbor,)),
                )
    surviving = labels.get(target, [])
    return [
        ParetoPath(nodes=target_paths[costs], costs=CostVector(costs))
        for costs in surviving
        if costs in target_paths
    ]
