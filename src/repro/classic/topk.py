"""Classic top-k algorithms over sorted attribute lists (Fagin et al.).

The threshold algorithm (TA) and its no-random-access variant (NRA) are the
reference point the paper positions its top-k method against (Section II-B).
They operate on ``d`` lists, each sorted in increasing cost order, and a
monotone aggregate function; both are implemented here over in-memory lists
so the MCN top-k results can be cross-checked against a completely different
computation strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Mapping, Sequence

from repro.core.aggregates import AggregateFunction
from repro.errors import QueryError

__all__ = ["SortedCostLists", "threshold_algorithm", "no_random_access_algorithm"]

Key = Hashable


@dataclass(frozen=True)
class SortedCostLists:
    """``d`` lists of ``(key, cost)`` pairs, each sorted by increasing cost."""

    lists: tuple[tuple[tuple[Key, float], ...], ...]
    costs: Mapping[Key, tuple[float, ...]]

    @classmethod
    def from_cost_vectors(cls, vectors: Mapping[Key, Sequence[float]]) -> "SortedCostLists":
        """Build the sorted lists from a mapping ``key -> cost vector``."""
        if not vectors:
            return cls(lists=(), costs={})
        dimensions = len(next(iter(vectors.values())))
        lists = []
        for index in range(dimensions):
            ordered = tuple(
                sorted(((key, float(vector[index])) for key, vector in vectors.items()), key=lambda p: (p[1], str(p[0])))
            )
            lists.append(ordered)
        return cls(lists=tuple(lists), costs={key: tuple(v) for key, v in vectors.items()})

    @property
    def dimensions(self) -> int:
        return len(self.lists)

    def __len__(self) -> int:
        return len(self.costs)


def threshold_algorithm(
    lists: SortedCostLists, aggregate: AggregateFunction, k: int
) -> list[tuple[Key, float]]:
    """The threshold algorithm (TA) with random access to the full cost vectors.

    Lists are popped round-robin; a popped key's exact score is computed via
    random access.  The search stops when ``k`` results have scores no larger
    than the threshold ``f(t_1, ..., t_d)`` built from the next list heads.
    """
    if k < 1:
        raise QueryError("k must be a positive integer")
    if len(lists) == 0:
        return []
    positions = [0] * lists.dimensions
    scores: dict[Key, float] = {}
    while True:
        progressed = False
        for index in range(lists.dimensions):
            ordered = lists.lists[index]
            if positions[index] >= len(ordered):
                continue
            key, _cost = ordered[positions[index]]
            positions[index] += 1
            progressed = True
            if key not in scores:
                scores[key] = aggregate(lists.costs[key])
        best = sorted(scores.items(), key=lambda item: (item[1], str(item[0])))[:k]
        threshold_vector = []
        exhausted = False
        for index in range(lists.dimensions):
            ordered = lists.lists[index]
            if positions[index] >= len(ordered):
                exhausted = True
                break
            threshold_vector.append(ordered[positions[index]][1])
        if len(best) >= min(k, len(lists.costs)):
            if exhausted:
                return best
            threshold = aggregate(threshold_vector)
            if best and best[-1][1] <= threshold:
                return best
        if not progressed:
            return best


def no_random_access_algorithm(
    lists: SortedCostLists, aggregate: AggregateFunction, k: int
) -> list[tuple[Key, float]]:
    """The no-random-access (NRA) variant: only sequential accesses, bound-based stop.

    Scores are bracketed by lower/upper bounds built from the costs seen so
    far and the current list heads; the algorithm stops when the k best lower
    bounds cannot be beaten by any other object's upper bound.
    """
    if k < 1:
        raise QueryError("k must be a positive integer")
    if len(lists) == 0:
        return []
    dimensions = lists.dimensions
    positions = [0] * dimensions
    seen: dict[Key, list[float | None]] = {}
    while True:
        progressed = False
        heads = []
        for index in range(dimensions):
            ordered = lists.lists[index]
            if positions[index] < len(ordered):
                key, cost = ordered[positions[index]]
                positions[index] += 1
                progressed = True
                seen.setdefault(key, [None] * dimensions)[index] = cost
            heads.append(
                ordered[positions[index]][1] if positions[index] < len(ordered) else float("inf")
            )
        lower_bounds = {}
        upper_bounds = {}
        for key, values in seen.items():
            lower_bounds[key] = aggregate([v if v is not None else heads[i] for i, v in enumerate(values)])
            upper = [v if v is not None else None for v in values]
            if any(v is None for v in upper) and any(h == float("inf") for i, h in enumerate(heads) if values[i] is None):
                upper_bounds[key] = float("inf")
            else:
                upper_bounds[key] = aggregate(
                    [v if v is not None else heads[i] for i, v in enumerate(values)]
                ) if all(v is not None for v in values) else float("inf")
        complete = {key: aggregate([float(v) for v in values]) for key, values in seen.items() if all(v is not None for v in values)}
        best = sorted(complete.items(), key=lambda item: (item[1], str(item[0])))[:k]
        if len(best) >= min(k, len(lists.costs)):
            kth = best[-1][1] if best else float("inf")
            others_can_beat = any(
                lower_bounds[key] < kth
                for key in seen
                if key not in {b[0] for b in best}
            )
            unseen_can_beat = aggregate(heads) < kth if all(h < float("inf") for h in heads) else False
            if not others_can_beat and not unseen_can_beat:
                return best
        if not progressed:
            return sorted(complete.items(), key=lambda item: (item[1], str(item[0])))[:k]
