"""Classic preference-query and Pareto-path algorithms used as baselines and oracles."""

from repro.classic.mcpp import ParetoPath, pareto_paths
from repro.classic.skyline import bnl_skyline, dc_skyline, is_skyline_member, sfs_skyline
from repro.classic.topk import (
    SortedCostLists,
    no_random_access_algorithm,
    threshold_algorithm,
)

__all__ = [
    "ParetoPath",
    "SortedCostLists",
    "bnl_skyline",
    "dc_skyline",
    "is_skyline_member",
    "no_random_access_algorithm",
    "pareto_paths",
    "sfs_skyline",
    "threshold_algorithm",
]
