"""Command-line interface: ``repro-mcn``.

Sub-commands:

* ``demo`` — generate a small workload, run a skyline and a top-k query with
  both algorithms and print the results with their I/O statistics.
* ``experiment <name>`` — run one of the Section-VI experiments (``fig8a`` ...
  ``fig12`` plus the two ablations) and print its table.
* ``serve`` — the asyncio serving tier: listen on HTTP/1.1 over a generated
  workload, or (``--replay``) fire a concurrent trace through the in-process
  transport and verify it bit-identical against a sequential
  :class:`~repro.api.Session` replay.
* ``serve-batch`` — replay a workload trace through the batch
  :class:`~repro.service.QueryService` and compare it against one-shot
  engine calls (throughput, latency percentiles, page-read savings).
* ``monitor`` — replay a facility-update stream through the continuous
  :class:`~repro.monitor.MonitoringService` and compare incremental
  maintenance against recompute-every-tick.
* ``bench perf`` — run the pinned perf-baseline suite (accessor path vs the
  compiled-graph kernel, side by side) and write ``BENCH_4.json``.
* ``build-dataset`` — stream a grid/small-world workload straight into an
  on-disk dataset pack (never materialising the graph in RAM), ready for
  ``Session(dataset_path=...)``.
* ``inspect-dataset`` — print a pack's catalog and verify its SHA-256.
* ``list`` — list the available experiments.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from collections.abc import Sequence

from repro.api import ExecutionPolicy, Session
from repro.bench.config import DEFAULT_SCALE, SMALL_SCALE, ExperimentScale
from repro.bench.driver import (
    MonitorReplaySpec,
    ReplaySpec,
    ServeReplaySpec,
    format_monitor_report,
    format_replay_report,
    format_serve_report,
    replay_serve_workload,
    replay_update_stream,
    replay_workload,
)
from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.perf import (
    compare_perf_reports,
    format_perf_comparison,
    format_perf_report,
    load_perf_baseline,
    run_perf_suite,
    write_perf_report,
)
from repro.bench.reporting import format_series_table, series_to_csv, summarize_speedups
from repro.datagen.road_network import PackedDatasetSpec, build_packed_dataset
from repro.datagen.updates import UpdateStreamSpec
from repro.datagen.workload import WorkloadSpec, make_workload
from repro.errors import ReproError
from repro.serve import HttpServer, JobJournal, ServeApp, ServeConfig
from repro.storage import DEFAULT_PAGE_SIZE, open_dataset

__all__ = ["main", "build_parser"]

_SCALES: dict[str, ExperimentScale] = {"small": SMALL_SCALE, "default": DEFAULT_SCALE}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-mcn`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-mcn",
        description="Skyline and top-k preference queries in multi-cost transportation networks",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run a small end-to-end demonstration")
    demo.add_argument("--nodes", type=int, default=900, help="approximate number of network nodes")
    demo.add_argument("--facilities", type=int, default=300, help="number of facilities")
    demo.add_argument("--cost-types", type=int, default=3, help="number of cost types d")
    demo.add_argument("--k", type=int, default=4, help="k of the top-k query")
    demo.add_argument("--seed", type=int, default=7, help="random seed")

    experiment = commands.add_parser("experiment", help="run one Section-VI experiment")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment / figure name")
    experiment.add_argument("--scale", choices=sorted(_SCALES), default="small", help="population scale")
    experiment.add_argument("--csv", action="store_true", help="emit CSV instead of a table")

    serve = commands.add_parser(
        "serve-batch",
        help="replay a workload through the batch query service and report savings",
    )
    serve.add_argument("--nodes", type=int, default=900, help="approximate number of network nodes")
    serve.add_argument("--facilities", type=int, default=300, help="number of facilities")
    serve.add_argument("--cost-types", type=int, default=3, help="number of cost types d")
    serve.add_argument("--queries", type=int, default=100, help="number of queries in the trace")
    serve.add_argument("--k", type=int, default=4, help="k of the top-k requests")
    serve.add_argument(
        "--mix",
        choices=("skyline", "topk", "mixed"),
        default="mixed",
        help="query mix of the trace",
    )
    serve.add_argument("--seed", type=int, default=7, help="random seed")
    serve.add_argument("--page-size", type=int, default=2048, help="storage page size in bytes")
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the batch across N parallel workers (1 = sequential only)",
    )
    serve.add_argument(
        "--routing",
        choices=("round-robin", "locality"),
        default="round-robin",
        help="how requests are routed to shards (locality groups network-close queries)",
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="pool kind backing the sharded run",
    )
    serve.add_argument(
        "--fast-path",
        action="store_true",
        help="also replay through the compiled-graph kernel and report it side by side",
    )

    serve_tier = commands.add_parser(
        "serve",
        help="the async serving tier: listen over HTTP, or run the load-replay check",
    )
    serve_tier.add_argument("--nodes", type=int, default=300, help="approximate number of network nodes")
    serve_tier.add_argument("--facilities", type=int, default=80, help="number of facilities")
    serve_tier.add_argument("--cost-types", type=int, default=3, help="number of cost types d")
    serve_tier.add_argument("--queries", type=int, default=16, help="query locations in the workload")
    serve_tier.add_argument(
        "--mix",
        choices=("skyline", "topk", "mixed"),
        default="mixed",
        help="query mix of the replay trace",
    )
    serve_tier.add_argument("--k", type=int, default=4, help="k of the top-k requests")
    serve_tier.add_argument("--seed", type=int, default=7, help="random seed")
    serve_tier.add_argument(
        "--replay",
        action="store_true",
        help="run the async load-replay differential check instead of listening",
    )
    serve_tier.add_argument(
        "--clients", type=int, default=8, help="concurrent clients of the replay"
    )
    serve_tier.add_argument(
        "--ticks", type=int, default=4, help="facility-update ticks in the replay"
    )
    serve_tier.add_argument(
        "--updates-per-tick", type=int, default=3, help="facility updates per tick"
    )
    serve_tier.add_argument(
        "--max-in-flight", type=int, default=8, help="admission-control capacity"
    )
    serve_tier.add_argument(
        "--timeout", type=float, default=60.0, help="per-request timeout in seconds"
    )
    serve_tier.add_argument("--host", default="127.0.0.1", help="listen address (listen mode)")
    serve_tier.add_argument(
        "--port", type=int, default=8737, help="listen port (listen mode; 0 = ephemeral)"
    )
    serve_tier.add_argument(
        "--drain-deadline",
        type=float,
        default=5.0,
        help="seconds a SIGTERM/SIGINT drain waits for in-flight work",
    )
    serve_tier.add_argument(
        "--drain-after",
        type=int,
        default=None,
        help="replay mode: start draining after this many acknowledged ops",
    )
    serve_tier.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal batch acknowledgements and ticks to this JSONL file "
        "(recovered on restart)",
    )

    monitor = commands.add_parser(
        "monitor",
        help="replay a facility-update stream through the monitoring service",
    )
    monitor.add_argument("--nodes", type=int, default=900, help="approximate number of network nodes")
    monitor.add_argument("--facilities", type=int, default=300, help="number of facilities")
    monitor.add_argument("--cost-types", type=int, default=3, help="number of cost types d")
    monitor.add_argument(
        "--subscriptions", type=int, default=8, help="number of long-lived subscriptions"
    )
    monitor.add_argument("--ticks", type=int, default=25, help="number of update ticks")
    monitor.add_argument(
        "--updates-per-tick", type=int, default=5, help="facility updates per tick"
    )
    monitor.add_argument(
        "--mix",
        choices=("skyline", "topk", "mixed"),
        default="mixed",
        help="query mix of the subscriptions",
    )
    monitor.add_argument("--k", type=int, default=4, help="k of the top-k subscriptions")
    monitor.add_argument(
        "--locality",
        type=float,
        default=0.5,
        help="fraction of inserts placed next to existing facilities",
    )
    monitor.add_argument("--seed", type=int, default=7, help="random seed")
    monitor.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the fallback recompute passes across N workers (1 = sequential)",
    )
    monitor.add_argument(
        "--routing",
        choices=("round-robin", "locality"),
        default="round-robin",
        help="how fallback requests are routed to shards",
    )
    monitor.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="thread",
        help="pool kind backing the sharded fallback passes",
    )

    bench = commands.add_parser(
        "bench", help="performance harnesses (perf-baseline trajectory)"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    perf = bench_commands.add_parser(
        "perf",
        help="run the pinned perf suite (accessor vs compiled kernel) and write BENCH_4.json",
    )
    perf.add_argument(
        "--smoke",
        action="store_true",
        help="miniature populations so the suite finishes in seconds (CI)",
    )
    perf.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="replays of each query trace per path (default: 3 full, 1 smoke)",
    )
    perf.add_argument(
        "--output",
        default=None,
        help="where to write the JSON payload (default: BENCH_5.json; '-' skips writing)",
    )
    perf.add_argument(
        "--against",
        default=None,
        metavar="BASELINE",
        help="compare against a pinned BENCH_<n>.json and fail on >10%% "
        "median regression (speedups always; absolute latency at equal scale)",
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRACTION",
        help="allowed fractional erosion before --against fails the run "
        "(default 0.10; smoke-scale medians jitter far more than full-scale "
        "ones, so CI self-baselines compare with a loose tolerance)",
    )
    cold = bench_commands.add_parser(
        "cold-cache",
        help="stream a pack to disk, re-open cold, and measure FileDisk vs "
        "SimulatedDisk wall-clock and page-read parity",
    )
    cold.add_argument("--rows", type=int, default=64, help="grid rows")
    cold.add_argument("--cols", type=int, default=64, help="grid columns")
    cold.add_argument("--cost-types", type=int, default=2, help="number of cost types d")
    cold.add_argument("--facilities", type=int, default=256, help="number of facilities")
    cold.add_argument("--seed", type=int, default=7, help="random seed")
    cold.add_argument(
        "--page-size", type=int, default=DEFAULT_PAGE_SIZE, help="disk page size in bytes"
    )
    cold.add_argument(
        "--buffer-fraction",
        type=float,
        default=0.01,
        help="LRU buffer capacity as a fraction of the MCN page count",
    )
    cold.add_argument("--queries", type=int, default=16, help="cold skyline queries to run")
    cold.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the materialised SimulatedDisk parity leg (required for "
        "datasets too large to hold in RAM)",
    )
    cold.add_argument(
        "--pack",
        default=None,
        metavar="PATH",
        help="write (and keep) the pack here instead of a deleted temp file",
    )
    cold.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the report payload as JSON",
    )
    timedep = bench_commands.add_parser(
        "timedep",
        help="replay a rush-hour edge-cost stream: incremental re-profiling "
        "vs rebuild-every-tick, with a departure-time snapshot probe",
    )
    timedep.add_argument("--nodes", type=int, default=300, help="graph nodes")
    timedep.add_argument("--facilities", type=int, default=60, help="number of facilities")
    timedep.add_argument("--cost-types", type=int, default=2, help="number of cost types d")
    timedep.add_argument(
        "--subscriptions", type=int, default=6,
        help="live subscriptions (alternating skyline / top-k)",
    )
    timedep.add_argument("--seed", type=int, default=7, help="random seed")
    timedep.add_argument("--ticks", type=int, default=24, help="stream ticks to replay")
    timedep.add_argument(
        "--start-time", type=float, default=6.0, help="first tick instant"
    )
    timedep.add_argument(
        "--time-step", type=float, default=0.5, help="time between ticks"
    )
    timedep.add_argument(
        "--affected-fraction",
        type=float,
        default=0.25,
        help="fraction of edges with a rush-hour profile",
    )
    timedep.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the departure-time snapshot-LRU probe leg",
    )
    timedep.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the report payload as JSON",
    )

    build_ds = commands.add_parser(
        "build-dataset",
        help="stream a grid/small-world dataset straight into an on-disk pack",
    )
    build_ds.add_argument("output", help="path of the pack file to write")
    build_ds.add_argument("--rows", type=int, default=64, help="grid rows")
    build_ds.add_argument("--cols", type=int, default=64, help="grid columns")
    build_ds.add_argument("--cost-types", type=int, default=2, help="number of cost types d")
    build_ds.add_argument("--facilities", type=int, default=256, help="number of facilities")
    build_ds.add_argument(
        "--street-density",
        type=float,
        default=0.3,
        help="probability a horizontal street exists (row 0 is always complete)",
    )
    build_ds.add_argument(
        "--shortcut-fraction",
        type=float,
        default=0.005,
        help="long-range shortcut edges as a fraction of the node count",
    )
    build_ds.add_argument("--seed", type=int, default=7, help="random seed")
    build_ds.add_argument(
        "--page-size", type=int, default=DEFAULT_PAGE_SIZE, help="disk page size in bytes"
    )

    inspect_ds = commands.add_parser(
        "inspect-dataset", help="print a dataset pack's catalog and verify its checksum"
    )
    inspect_ds.add_argument("path", help="path of the pack file to read")
    inspect_ds.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the SHA-256 content verification (headers are still validated)",
    )

    commands.add_parser("list", help="list the available experiments")
    return parser


def _run_demo(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        num_nodes=args.nodes,
        num_facilities=args.facilities,
        num_cost_types=args.cost_types,
        num_queries=1,
        seed=args.seed,
    )
    workload = make_workload(spec)
    # One Session owns the dataset; the demo pulls the engine + storage out
    # of it because it deliberately compares *cold* per-algorithm runs (the
    # facade's cached batch service would share expansions between them).
    session = Session(
        workload.graph,
        workload.facilities,
        policy=ExecutionPolicy(residency="disk", page_size=1024),
    )
    engine = session.engine_for()
    storage = session.storage_for()
    query = workload.queries[0]
    print("workload:", workload.describe())
    print("storage:", storage.describe() if storage else {})
    print("query at", query.describe(workload.graph))
    for algorithm in ("lsa", "cea"):
        storage.reset_statistics(clear_buffer=True)  # type: ignore[union-attr]
        result = engine.skyline(query, algorithm=algorithm)
        io = result.statistics.io
        print(
            f"[skyline/{algorithm}] {len(result)} facilities, "
            f"{io.page_reads} page reads, {io.buffer_hits} buffer hits, "
            f"{result.statistics.elapsed_seconds * 1000:.1f} ms"
        )
    weights = engine.random_weights()
    for algorithm in ("lsa", "cea"):
        storage.reset_statistics(clear_buffer=True)  # type: ignore[union-attr]
        result = engine.top_k(query, args.k, aggregate=weights, algorithm=algorithm)
        io = result.statistics.io
        ranking = ", ".join(f"p{item.facility_id} ({item.score:.1f})" for item in result)
        print(
            f"[top-{args.k}/{algorithm}] {ranking} | {io.page_reads} page reads, "
            f"{result.statistics.elapsed_seconds * 1000:.1f} ms"
        )
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    series = run_experiment(args.name, _SCALES[args.scale])
    if args.csv:
        print(series_to_csv(series), end="")
    else:
        print(format_series_table(series), end="")
        speedups = summarize_speedups(series)
        if speedups:
            print()
            print(speedups)
    return 0


def _run_serve_batch(args: argparse.Namespace) -> int:
    try:
        spec = ReplaySpec(
            workload=WorkloadSpec(
                num_nodes=args.nodes,
                num_facilities=args.facilities,
                num_cost_types=args.cost_types,
                num_queries=args.queries,
                seed=args.seed,
            ),
            mix=args.mix,
            k=args.k,
            page_size=args.page_size,
            workers=args.workers,
            routing=args.routing.replace("-", "_"),
            executor=args.executor,
            fast_path=args.fast_path,
        )
        report = replay_workload(spec)
    except ReproError as error:
        print(f"serve-batch: {error}", file=sys.stderr)
        return 2
    print(format_replay_report(report), end="")
    return 0 if report.identical_results and report.counters_consistent else 1


def _run_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "cold-cache":
        return _run_bench_cold_cache(args)
    if args.bench_command == "timedep":
        return _run_bench_timedep(args)
    try:
        report = run_perf_suite(smoke=args.smoke, repeats=args.repeats)
    except ReproError as error:
        print(f"bench perf: {error}", file=sys.stderr)
        return 2
    print(format_perf_report(report), end="")
    output = args.output
    if output is None:
        output = "BENCH_5.json"
    if output != "-":
        write_perf_report(report, output)
        print(f"wrote {output}")
    regressed = False
    if args.against is not None:
        try:
            baseline = load_perf_baseline(args.against)
            regressions = compare_perf_reports(
                report.to_payload(), baseline, tolerance=args.tolerance
            )
        except (ReproError, OSError, json.JSONDecodeError) as error:
            print(f"bench perf: {error}", file=sys.stderr)
            return 2
        print(format_perf_comparison(regressions, baseline_label=args.against), end="")
        regressed = bool(regressions)
    return 0 if report.all_identical and report.all_io_identical and not regressed else 1


def _run_bench_cold_cache(args: argparse.Namespace) -> int:
    from repro.bench.coldcache import (
        ColdCacheSpec,
        format_cold_cache_report,
        run_cold_cache_bench,
    )

    try:
        spec = ColdCacheSpec(
            dataset=PackedDatasetSpec(
                rows=args.rows,
                cols=args.cols,
                num_cost_types=args.cost_types,
                num_facilities=args.facilities,
                seed=args.seed,
                page_size=args.page_size,
            ),
            buffer_fraction=args.buffer_fraction,
            num_queries=args.queries,
            compare_simulated=not args.no_compare,
        )
        report = run_cold_cache_bench(
            spec, pack_path=args.pack, keep_pack=args.pack is not None
        )
    except (ReproError, OSError) as error:
        print(f"bench cold-cache: {error}", file=sys.stderr)
        return 2
    print(format_cold_cache_report(report), end="")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if report.io_identical is False or report.results_identical is False:
        return 1
    return 0


def _run_bench_timedep(args: argparse.Namespace) -> int:
    from repro.bench.timedep import (
        TimedepBenchSpec,
        format_timedep_report,
        run_timedep_bench,
    )
    from repro.datagen.updates import EdgeCostStreamSpec

    try:
        spec = TimedepBenchSpec(
            workload=WorkloadSpec(
                num_nodes=args.nodes,
                num_facilities=args.facilities,
                num_cost_types=args.cost_types,
                num_queries=args.subscriptions,
                seed=args.seed,
            ),
            stream=EdgeCostStreamSpec(
                num_ticks=args.ticks,
                start_time=args.start_time,
                time_step=args.time_step,
                affected_fraction=args.affected_fraction,
                seed=args.seed,
            ),
            probe_snapshots=not args.no_probe,
        )
        report = run_timedep_bench(spec)
    except ReproError as error:
        print(f"bench timedep: {error}", file=sys.stderr)
        return 2
    print(format_timedep_report(report), end="")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0 if report.results_identical else 1


def _run_serve(args: argparse.Namespace) -> int:
    workload_spec = WorkloadSpec(
        num_nodes=args.nodes,
        num_facilities=args.facilities,
        num_cost_types=args.cost_types,
        num_queries=args.queries,
        seed=args.seed,
    )
    if args.replay:
        try:
            spec = ServeReplaySpec(
                workload=workload_spec,
                mix=args.mix,
                k=args.k,
                clients=args.clients,
                ticks=args.ticks,
                updates_per_tick=args.updates_per_tick,
                max_in_flight=args.max_in_flight,
                timeout_seconds=args.timeout,
                drain_after=args.drain_after,
                journal_path=args.journal,
            )
            report = replay_serve_workload(spec)
        except ReproError as error:
            print(f"serve: {error}", file=sys.stderr)
            return 2
        print(format_serve_report(report), end="")
        return 0 if report.clean else 1

    async def listen() -> int:
        workload = make_workload(workload_spec)
        session = Session(workload.graph, workload.facilities)
        journal = (
            None
            if args.journal is None
            else JobJournal(args.journal, fingerprint=session.dataset_fingerprint())
        )
        app = ServeApp(
            session,
            config=ServeConfig(
                max_in_flight=args.max_in_flight,
                request_timeout_seconds=args.timeout,
                drain_deadline_seconds=args.drain_deadline,
            ),
            journal=journal,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        async with app, HttpServer(app, host=args.host, port=args.port) as server:
            recovered = app.last_recovery
            if recovered and (recovered["jobs"] or recovered["ticks_reapplied"]):
                print(
                    f"recovered journal: {recovered['jobs']} jobs "
                    f"({recovered['reexecuted_jobs']} re-executed), "
                    f"{recovered['ticks_reapplied']} ticks re-applied"
                )
            print(f"serving {workload.describe()}")
            print(
                f"listening on http://{args.host}:{server.port} "
                "(SIGTERM/Ctrl-C drains, then stops)"
            )
            for route in app.describe_surface()["routes"]:
                print(f"  {route['method']:<6} {route['path']}")
            await stop.wait()
            # Stop accepting sockets, then drain the app: in-flight requests
            # and queued jobs finish (or the deadline forces the close).
            report = await app.drain()
        verdict = "drained clean" if report.clean else "drain deadline forced the close"
        print(f"stopped: {verdict} ({report.waited_seconds * 1000:.1f} ms)")
        return 0 if report.clean else 3

    try:
        return asyncio.run(listen())
    except KeyboardInterrupt:  # pragma: no cover - signal handler beats this
        print("stopped")
        return 0


def _run_monitor(args: argparse.Namespace) -> int:
    try:
        spec = MonitorReplaySpec(
            workload=WorkloadSpec(
                num_nodes=args.nodes,
                num_facilities=args.facilities,
                num_cost_types=args.cost_types,
                num_queries=args.subscriptions,
                seed=args.seed,
            ),
            stream=UpdateStreamSpec(
                num_ticks=args.ticks,
                updates_per_tick=args.updates_per_tick,
                locality=args.locality,
                seed=args.seed + 1,
            ),
            subscriptions=args.subscriptions,
            mix=args.mix,
            k=args.k,
            workers=args.workers,
            routing=args.routing.replace("-", "_"),
            executor=args.executor,
        )
        report = replay_update_stream(spec)
    except ReproError as error:
        print(f"monitor: {error}", file=sys.stderr)
        return 2
    print(format_monitor_report(report), end="")
    return 0 if report.identical_results else 1


def _run_build_dataset(args: argparse.Namespace) -> int:
    try:
        spec = PackedDatasetSpec(
            rows=args.rows,
            cols=args.cols,
            num_cost_types=args.cost_types,
            num_facilities=args.facilities,
            street_density=args.street_density,
            shortcut_fraction=args.shortcut_fraction,
            seed=args.seed,
            page_size=args.page_size,
        )
        catalog = build_packed_dataset(spec, args.output)
    except (ReproError, OSError) as error:
        print(f"build-dataset: {error}", file=sys.stderr)
        return 2
    print(f"wrote {args.output}")
    for key, value in catalog.describe().items():
        print(f"  {key}: {value}")
    return 0


def _run_inspect_dataset(args: argparse.Namespace) -> int:
    try:
        with open_dataset(args.path, verify_checksum=not args.no_verify) as dataset:
            description = dataset.catalog.describe()
    except (ReproError, OSError) as error:
        print(f"inspect-dataset: {error}", file=sys.stderr)
        return 2
    print(args.path)
    for key, value in description.items():
        print(f"  {key}: {value}")
    verified = "skipped" if args.no_verify else "verified"
    print(f"  sha256: {verified}")
    return 0


def _run_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        description, _factory = EXPERIMENTS[name]
        print(f"{name.ljust(width)}  {description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-mcn`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "serve-batch":
        return _run_serve_batch(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "monitor":
        return _run_monitor(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "build-dataset":
        return _run_build_dataset(args)
    if args.command == "inspect-dataset":
        return _run_inspect_dataset(args)
    return _run_list()


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
