"""Convenience builders and validators for multi-cost networks."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import GraphError
from repro.network.graph import MultiCostGraph, NodeId

__all__ = ["graph_from_edge_list", "validate_graph"]


def graph_from_edge_list(
    num_cost_types: int,
    edges: Sequence[tuple[NodeId, NodeId, Sequence[float]]],
    *,
    coordinates: Mapping[NodeId, tuple[float, float]] | None = None,
    directed: bool = False,
) -> MultiCostGraph:
    """Build a graph from ``(u, v, costs)`` tuples, creating nodes on demand.

    ``coordinates`` optionally supplies ``node -> (x, y)`` positions; nodes
    without coordinates default to the origin.
    """
    coordinates = coordinates or {}
    graph = MultiCostGraph(num_cost_types, directed=directed)
    for u, v, costs in edges:
        for node in (u, v):
            if not graph.has_node(node):
                x, y = coordinates.get(node, (0.0, 0.0))
                graph.add_node(node, x, y)
        graph.add_edge(u, v, costs)
    return graph


def validate_graph(graph: MultiCostGraph, *, require_connected: bool = True) -> list[str]:
    """Check structural health of a graph; return a list of problems found.

    With ``require_connected`` (the default), disconnection is reported as a
    problem — the paper's algorithms are correct on disconnected graphs but
    facilities in other components are simply unreachable, which is usually
    a dataset mistake.
    """
    problems: list[str] = []
    if graph.num_nodes == 0:
        problems.append("graph has no nodes")
    if graph.num_edges == 0:
        problems.append("graph has no edges")
    isolated = [node.node_id for node in graph.nodes() if graph.degree(node.node_id) == 0]
    if isolated:
        problems.append(f"{len(isolated)} isolated node(s), e.g. {isolated[:5]}")
    zero_cost_edges = [
        edge.edge_id for edge in graph.edges() if all(value == 0 for value in edge.costs)
    ]
    if zero_cost_edges:
        problems.append(f"{len(zero_cost_edges)} edge(s) with an all-zero cost vector")
    if require_connected and graph.num_nodes and not graph.is_connected():
        problems.append("graph is not connected")
    return problems
