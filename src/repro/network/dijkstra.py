"""Single-cost shortest-path primitives (Dijkstra's algorithm).

These are the building blocks the paper relies on (Section II-C): shortest
path between two locations under one cost type, and single-source cost maps
used by the "straightforward" baseline that performs ``d`` complete network
expansions before running a conventional skyline algorithm.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import GraphError, LocationError
from repro.network.costs import CostVector
from repro.network.facilities import FacilityId, FacilitySet
from repro.network.graph import MultiCostGraph, NodeId
from repro.network.location import NetworkLocation
from repro.network.paths import Path

__all__ = [
    "single_source_node_costs",
    "single_source_facility_costs",
    "all_facility_cost_vectors",
    "shortest_path_between_nodes",
]


def single_source_node_costs(
    graph: MultiCostGraph, source: NetworkLocation, cost_index: int
) -> dict[NodeId, float]:
    """Network distance from ``source`` to every reachable node under one cost type."""
    _check_cost_index(graph, cost_index)
    distances: dict[NodeId, float] = {}
    heap: list[tuple[float, NodeId]] = []
    for node, costs in source.anchor_costs(graph):
        heapq.heappush(heap, (costs[cost_index], node))
    while heap:
        dist, node = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        for neighbor, edge in graph.neighbors(node):
            if neighbor not in distances:
                heapq.heappush(heap, (dist + edge.costs[cost_index], neighbor))
    return distances


def single_source_facility_costs(
    graph: MultiCostGraph,
    facilities: FacilitySet,
    source: NetworkLocation,
    cost_index: int,
) -> dict[FacilityId, float]:
    """Network distance from ``source`` to every reachable facility under one cost type.

    A facility on edge ``(u, v)`` is reachable through either end-node with a
    pro-rated partial weight; when the source lies on the same edge, the
    direct along-edge route is also considered.
    """
    node_costs = single_source_node_costs(graph, source, cost_index)
    result: dict[FacilityId, float] = {}
    for facility in facilities:
        edge = graph.edge(facility.edge_id)
        best = float("inf")
        for end_node in (edge.u, edge.v):
            if graph.directed and end_node != edge.u:
                continue
            if end_node in node_costs:
                partial = edge.partial_costs(end_node, facility.offset)[cost_index]
                best = min(best, node_costs[end_node] + partial)
        same_edge = source.edge_id == facility.edge_id
        forward = not graph.directed or facility.offset >= source.offset
        if same_edge and forward:
            direct = source.costs_to_point_on_same_edge(graph, facility.offset)
            if direct is not None:
                best = min(best, direct[cost_index])
        if best < float("inf"):
            result[facility.facility_id] = best
    return result


def all_facility_cost_vectors(
    graph: MultiCostGraph, facilities: FacilitySet, source: NetworkLocation
) -> dict[FacilityId, CostVector]:
    """The full d-dimensional cost vector of every reachable facility.

    This is the brute-force computation underlying the straightforward
    baseline of Section IV: one complete expansion per cost type.
    """
    per_cost: list[dict[FacilityId, float]] = [
        single_source_facility_costs(graph, facilities, source, i)
        for i in range(graph.num_cost_types)
    ]
    vectors: dict[FacilityId, CostVector] = {}
    for facility in facilities:
        fid = facility.facility_id
        if all(fid in costs for costs in per_cost):
            vectors[fid] = CostVector(costs[fid] for costs in per_cost)
    return vectors


def shortest_path_between_nodes(
    graph: MultiCostGraph, source: NodeId, target: NodeId, cost_index: int
) -> Path:
    """Shortest path between two nodes under one cost type, with full cost vector.

    Raises :class:`GraphError` when the target is unreachable.
    """
    _check_cost_index(graph, cost_index)
    if not graph.has_node(source):
        raise GraphError(f"unknown node {source}")
    if not graph.has_node(target):
        raise GraphError(f"unknown node {target}")
    predecessors: dict[NodeId, NodeId | None] = {}
    heap: list[tuple[float, NodeId, NodeId | None]] = [(0.0, source, None)]
    while heap:
        dist, node, parent = heapq.heappop(heap)
        if node in predecessors:
            continue
        predecessors[node] = parent
        if node == target:
            break
        for neighbor, edge in graph.neighbors(node):
            if neighbor not in predecessors:
                heapq.heappush(heap, (dist + edge.costs[cost_index], neighbor, node))
    if target not in predecessors:
        raise GraphError(f"node {target} is unreachable from {source}")
    nodes: list[NodeId] = []
    current: NodeId | None = target
    while current is not None:
        nodes.append(current)
        current = predecessors[current]
    nodes.reverse()
    return Path.from_node_sequence(graph, nodes)


def _check_cost_index(graph: MultiCostGraph, cost_index: int) -> None:
    if not 0 <= cost_index < graph.num_cost_types:
        raise LocationError(
            f"cost index {cost_index} out of range for a {graph.num_cost_types}-cost network"
        )
