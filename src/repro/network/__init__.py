"""Multi-cost network substrate: graphs, facilities, locations, shortest paths."""

from repro.network.accessor import (
    AccessStatistics,
    AdjacencyRecord,
    FacilityRecord,
    FetchOnceCache,
    GraphAccessor,
    InMemoryAccessor,
)
from repro.network.builder import graph_from_edge_list, validate_graph
from repro.network.compiled import CompiledGraph
from repro.network.costs import CostVector, dominates, dominates_or_equal
from repro.network.dijkstra import (
    all_facility_cost_vectors,
    shortest_path_between_nodes,
    single_source_facility_costs,
    single_source_node_costs,
)
from repro.network.facilities import Facility, FacilityId, FacilitySet
from repro.network.graph import Edge, EdgeId, MultiCostGraph, Node, NodeId
from repro.network.interop import from_networkx, to_networkx
from repro.network.io import read_facilities, read_graph, write_facilities, write_graph
from repro.network.location import NetworkLocation
from repro.network.paths import Path

__all__ = [
    "AccessStatistics",
    "AdjacencyRecord",
    "CompiledGraph",
    "CostVector",
    "Edge",
    "EdgeId",
    "Facility",
    "FacilityId",
    "FacilityRecord",
    "FacilitySet",
    "FetchOnceCache",
    "GraphAccessor",
    "InMemoryAccessor",
    "MultiCostGraph",
    "NetworkLocation",
    "Node",
    "NodeId",
    "Path",
    "all_facility_cost_vectors",
    "dominates",
    "dominates_or_equal",
    "from_networkx",
    "graph_from_edge_list",
    "to_networkx",
    "read_facilities",
    "read_graph",
    "shortest_path_between_nodes",
    "single_source_facility_costs",
    "single_source_node_costs",
    "validate_graph",
    "write_facilities",
    "write_graph",
]
