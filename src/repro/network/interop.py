"""Interoperability with networkx graphs.

Road-network data frequently arrives as a :mod:`networkx` graph (e.g. from
OSMnx exports).  These helpers convert between ``networkx.Graph`` /
``networkx.DiGraph`` objects and :class:`~repro.network.graph.MultiCostGraph`
so that such data can be queried directly, and conversely so that an MCN can
be handed to the networkx ecosystem for analysis or drawing.

networkx is an optional dependency: the module imports it lazily and raises a
clear error when it is missing.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import GraphError
from repro.network.graph import MultiCostGraph

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - exercised only without networkx
        raise GraphError(
            "networkx is required for graph conversion; install it with 'pip install networkx'"
        ) from exc
    return networkx


def from_networkx(
    nx_graph,
    cost_attributes: Sequence[str],
    *,
    length_attribute: str | None = None,
    x_attribute: str = "x",
    y_attribute: str = "y",
) -> MultiCostGraph:
    """Build a :class:`MultiCostGraph` from a networkx graph.

    Parameters
    ----------
    nx_graph:
        A ``networkx.Graph`` or ``networkx.DiGraph`` whose nodes are integers
        (or integer-convertible) and whose edges carry one numeric attribute
        per cost type.  Multigraphs are rejected — collapse parallel edges
        first (keep the cheapest, or aggregate however the application needs).
    cost_attributes:
        The edge-attribute names to use as the d cost types, in order.
    length_attribute:
        Optional edge attribute holding the physical segment length used to
        pro-rate facility/query offsets; defaults to the first cost type.
    x_attribute, y_attribute:
        Node attributes holding coordinates (optional; default to 0.0).
    """
    networkx = _require_networkx()
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported; collapse parallel edges first")
    if not cost_attributes:
        raise GraphError("at least one cost attribute is required")
    directed = nx_graph.is_directed()
    graph = MultiCostGraph(len(cost_attributes), directed=directed)
    for node, data in nx_graph.nodes(data=True):
        node_id = _as_node_id(node)
        graph.add_node(node_id, float(data.get(x_attribute, 0.0)), float(data.get(y_attribute, 0.0)))
    for u, v, data in nx_graph.edges(data=True):
        costs = []
        for attribute in cost_attributes:
            if attribute not in data:
                raise GraphError(f"edge ({u}, {v}) is missing cost attribute {attribute!r}")
            costs.append(float(data[attribute]))
        length = None
        if length_attribute is not None:
            if length_attribute not in data:
                raise GraphError(f"edge ({u}, {v}) is missing length attribute {length_attribute!r}")
            length = float(data[length_attribute])
        graph.add_edge(_as_node_id(u), _as_node_id(v), costs, length=length)
    return graph


def to_networkx(graph: MultiCostGraph, *, cost_names: Sequence[str] | None = None):
    """Convert a :class:`MultiCostGraph` to a networkx (Di)Graph.

    Each edge carries one attribute per cost type (named ``cost_0`` ... or the
    provided ``cost_names``), plus ``length`` and ``edge_id``; each node
    carries ``x`` and ``y``.
    """
    networkx = _require_networkx()
    if cost_names is not None and len(cost_names) != graph.num_cost_types:
        raise GraphError(
            f"expected {graph.num_cost_types} cost names, got {len(cost_names)}"
        )
    names = list(cost_names) if cost_names is not None else [
        f"cost_{index}" for index in range(graph.num_cost_types)
    ]
    nx_graph = networkx.DiGraph() if graph.directed else networkx.Graph()
    for node in graph.nodes():
        nx_graph.add_node(node.node_id, x=node.x, y=node.y)
    for edge in graph.edges():
        attributes = {name: cost for name, cost in zip(names, edge.costs)}
        attributes["length"] = edge.length
        attributes["edge_id"] = edge.edge_id
        nx_graph.add_edge(edge.u, edge.v, **attributes)
    return nx_graph


def _as_node_id(node) -> int:
    if isinstance(node, bool):
        raise GraphError(f"node identifiers must be integers, got {node!r}")
    if isinstance(node, int):
        return node
    try:
        return int(node)
    except (TypeError, ValueError):
        raise GraphError(
            f"node identifiers must be integers or integer-convertible, got {node!r}"
        ) from None
