"""Path objects: sequences of nodes/edges with their accumulated cost vectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.errors import GraphError
from repro.network.costs import CostVector
from repro.network.graph import Edge, MultiCostGraph, NodeId

__all__ = ["Path"]


@dataclass(frozen=True)
class Path:
    """A path through the MCN with its total cost under every cost type.

    ``nodes`` are the traversed nodes in order; ``costs`` is the accumulated
    d-dimensional cost (including any partial edge weights at the two ends
    when the path starts or finishes in the middle of an edge).
    """

    nodes: tuple[NodeId, ...]
    costs: CostVector

    @property
    def num_hops(self) -> int:
        """Number of full node-to-node hops on the path."""
        return max(len(self.nodes) - 1, 0)

    def cost(self, cost_index: int) -> float:
        """Total cost under the given cost type."""
        return self.costs[cost_index]

    @classmethod
    def from_node_sequence(cls, graph: MultiCostGraph, nodes: Sequence[NodeId]) -> "Path":
        """Build a path from consecutive nodes, summing the connecting edges' costs.

        Raises :class:`GraphError` when two consecutive nodes are not adjacent.
        """
        if not nodes:
            raise GraphError("a path needs at least one node")
        total = CostVector.zeros(graph.num_cost_types)
        for u, v in zip(nodes, nodes[1:]):
            edge = graph.edge_between(u, v)
            if edge is None:
                raise GraphError(f"nodes {u} and {v} are not adjacent")
            total = total + edge.costs
        return cls(tuple(nodes), total)

    def __repr__(self) -> str:
        chain = " -> ".join(str(n) for n in self.nodes)
        return f"Path({chain}; costs={self.costs!r})"
