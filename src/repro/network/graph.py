"""The multi-cost network (MCN) graph model.

An MCN is a road network ``G = {V, E, W}`` where every edge carries a
``d``-dimensional cost vector.  Nodes optionally carry planar coordinates
(the algorithms never use them — only the data generators and examples do).
Edges are undirected by default; directed graphs are supported as the paper
notes the extension is trivial.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro.errors import GraphError
from repro.network.costs import CostVector

__all__ = ["Node", "Edge", "MultiCostGraph"]

#: How many cost-changed edge ids the graph remembers; consumers that fall
#: further behind than this must rebuild instead of patching.
_CHANGELOG_LIMIT = 1024

NodeId = int
EdgeId = int


@dataclass(frozen=True)
class Node:
    """A network node (road intersection).

    Coordinates are optional: the query algorithms rely purely on
    connectivity, but the synthetic generators and plotting helpers use them.
    """

    node_id: NodeId
    x: float = 0.0
    y: float = 0.0


@dataclass(frozen=True)
class Edge:
    """A network edge (road segment) between ``u`` and ``v``.

    ``costs`` is the d-dimensional cost vector of the full segment.
    ``length`` is the segment's physical length used to pro-rate partial
    weights at facilities and query locations; it defaults to the first
    cost component when not supplied explicitly.
    """

    edge_id: EdgeId
    u: NodeId
    v: NodeId
    costs: CostVector
    length: float

    def other_end(self, node: NodeId) -> NodeId:
        """Return the end-node opposite to ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"node {node} is not an end-node of edge {self.edge_id}")

    def partial_costs(self, from_node: NodeId, distance_along: float) -> CostVector:
        """Cost vector of the partial segment starting at ``from_node``.

        ``distance_along`` is measured from the edge's first end-node ``u``
        (the convention used by the facility file of the storage scheme).
        """
        if not 0.0 <= distance_along <= self.length + 1e-12:
            raise GraphError(
                f"offset {distance_along} outside edge {self.edge_id} of length {self.length}"
            )
        if self.length == 0:
            return CostVector.zeros(self.costs.dimensions)
        if from_node == self.u:
            fraction = distance_along / self.length
        elif from_node == self.v:
            fraction = (self.length - distance_along) / self.length
        else:
            raise GraphError(f"node {from_node} is not an end-node of edge {self.edge_id}")
        return self.costs.scale(fraction)


@dataclass
class _AdjacencyEntry:
    neighbor: NodeId
    edge_id: EdgeId


class MultiCostGraph:
    """A multi-cost network: nodes, edges and d-dimensional edge costs.

    The graph is the in-memory "source of truth"; the simulated disk layout
    (:class:`repro.storage.NetworkStorage`) is built from it, and the
    in-memory accessor (:class:`repro.network.accessor.InMemoryAccessor`)
    reads it directly.
    """

    def __init__(self, num_cost_types: int, *, directed: bool = False):
        if num_cost_types < 1:
            raise GraphError("an MCN needs at least one cost type")
        self._num_cost_types = num_cost_types
        self._directed = directed
        self._nodes: dict[NodeId, Node] = {}
        self._edges: dict[EdgeId, Edge] = {}
        self._adjacency: dict[NodeId, list[_AdjacencyEntry]] = {}
        self._next_edge_id = 0
        self._costs_revision = 0
        self._cost_log: deque[EdgeId] = deque(maxlen=_CHANGELOG_LIMIT)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, node_id: NodeId, x: float = 0.0, y: float = 0.0) -> Node:
        """Add a node; re-adding an existing id with the same coordinates is a no-op."""
        existing = self._nodes.get(node_id)
        node = Node(node_id, float(x), float(y))
        if existing is not None:
            if existing != node:
                raise GraphError(f"node {node_id} already exists with different coordinates")
            return existing
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        return node

    def add_edge(
        self,
        u: NodeId,
        v: NodeId,
        costs: Sequence[float] | CostVector,
        *,
        length: float | None = None,
        edge_id: EdgeId | None = None,
    ) -> Edge:
        """Add an edge between existing nodes ``u`` and ``v``.

        For undirected graphs the edge is traversable in both directions
        with the same cost vector (the paper's default assumption).
        """
        if u not in self._nodes:
            raise GraphError(f"unknown end-node {u}")
        if v not in self._nodes:
            raise GraphError(f"unknown end-node {v}")
        if u == v:
            raise GraphError("self-loop edges are not allowed in a road network")
        vector = costs if isinstance(costs, CostVector) else CostVector(costs)
        if vector.dimensions != self._num_cost_types:
            raise GraphError(
                f"edge cost vector has {vector.dimensions} components, expected {self._num_cost_types}"
            )
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id} already exists")
        self._next_edge_id = max(self._next_edge_id, edge_id) + 1
        if length is None:
            length = vector[0] if vector[0] > 0 else 1.0
        if length <= 0:
            raise GraphError("edge length must be positive")
        edge = Edge(edge_id, u, v, vector, float(length))
        self._edges[edge_id] = edge
        self._adjacency[u].append(_AdjacencyEntry(v, edge_id))
        if not self._directed:
            self._adjacency[v].append(_AdjacencyEntry(u, edge_id))
        return edge

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def update_edge_costs(self, edge_id: EdgeId, costs: Sequence[float] | CostVector) -> Edge:
        """Replace an edge's cost vector in place (topology and length keep).

        This is the primitive behind time-varying re-profiling: the edge's
        end-nodes, id and physical ``length`` are untouched (so facility
        offsets stay valid), only the d-dimensional cost vector changes.
        Every call bumps :attr:`costs_revision` and records the edge id in a
        bounded changelog consumed by :meth:`changed_edges_since` (the
        compiled snapshot patches exactly the touched edges).
        """
        old = self.edge(edge_id)
        vector = costs if isinstance(costs, CostVector) else CostVector(costs)
        if vector.dimensions != self._num_cost_types:
            raise GraphError(
                f"edge cost vector has {vector.dimensions} components, "
                f"expected {self._num_cost_types}"
            )
        edge = Edge(edge_id, old.u, old.v, vector, old.length)
        self._edges[edge_id] = edge
        self._costs_revision += 1
        self._cost_log.append(edge_id)
        return edge

    @property
    def costs_revision(self) -> int:
        """A counter bumped by every :meth:`update_edge_costs` call."""
        return self._costs_revision

    def changed_edges_since(self, revision: int) -> list[EdgeId] | None:
        """The edge ids whose costs changed after ``revision`` (oldest first).

        Returns ``[]`` when the caller is current, the (possibly repeating)
        edge ids when the bounded changelog still covers the gap, and
        ``None`` when it overflowed — the caller must rebuild from scratch.
        A revision *ahead* of the graph's is a caller bug and raises.
        """
        if revision > self._costs_revision:
            raise GraphError(
                f"revision {revision} is ahead of the graph's revision {self._costs_revision}"
            )
        needed = self._costs_revision - revision
        if needed == 0:
            return []
        if needed > len(self._cost_log):
            return None
        return list(self._cost_log)[-needed:]

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_cost_types(self) -> int:
        """The number of cost types ``d``."""
        return self._num_cost_types

    @property
    def directed(self) -> bool:
        """Whether edges are one-way."""
        return self._directed

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[NodeId]:
        return iter(self._nodes.keys())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: EdgeId) -> bool:
        return edge_id in self._edges

    def node(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node {node_id}") from None

    def edge(self, edge_id: EdgeId) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge {edge_id}") from None

    def neighbors(self, node_id: NodeId) -> list[tuple[NodeId, Edge]]:
        """Outgoing ``(neighbor, edge)`` pairs of ``node_id``."""
        if node_id not in self._adjacency:
            raise GraphError(f"unknown node {node_id}")
        return [(entry.neighbor, self._edges[entry.edge_id]) for entry in self._adjacency[node_id]]

    def degree(self, node_id: NodeId) -> int:
        if node_id not in self._adjacency:
            raise GraphError(f"unknown node {node_id}")
        return len(self._adjacency[node_id])

    def edge_between(self, u: NodeId, v: NodeId) -> Edge | None:
        """Return one edge connecting ``u`` to ``v`` (or ``None``)."""
        if u not in self._adjacency:
            raise GraphError(f"unknown node {u}")
        for entry in self._adjacency[u]:
            if entry.neighbor == v:
                return self._edges[entry.edge_id]
        return None

    def is_connected(self) -> bool:
        """True if every node is reachable from every other (ignoring direction)."""
        if not self._nodes:
            return True
        undirected: dict[NodeId, set[NodeId]] = {nid: set() for nid in self._nodes}
        for edge in self._edges.values():
            undirected[edge.u].add(edge.v)
            undirected[edge.v].add(edge.u)
        start = next(iter(self._nodes))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in undirected[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return len(seen) == len(self._nodes)

    def total_cost_statistics(self) -> dict[str, list[float]]:
        """Per-cost-type minimum / mean / maximum over all edges (for reporting)."""
        d = self._num_cost_types
        minima = [float("inf")] * d
        maxima = [0.0] * d
        totals = [0.0] * d
        for edge in self._edges.values():
            for i, value in enumerate(edge.costs):
                minima[i] = min(minima[i], value)
                maxima[i] = max(maxima[i], value)
                totals[i] += value
        count = max(len(self._edges), 1)
        return {
            "min": minima,
            "max": maxima,
            "mean": [total / count for total in totals],
        }

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"MultiCostGraph({kind}, d={self._num_cost_types}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )
