"""Cost vectors for multi-cost networks.

An edge of a multi-cost network (MCN) carries ``d`` non-negative costs, one
per *cost type* (Euclidean length, driving time, walking time, toll fee...).
This module provides a small immutable :class:`CostVector` value type plus
the dominance test used throughout the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import GraphError

__all__ = ["CostVector", "dominates", "dominates_or_equal"]


class CostVector(Sequence[float]):
    """An immutable vector of ``d`` non-negative costs.

    The class behaves like a read-only sequence of floats and supports the
    arithmetic needed by the algorithms: component-wise addition, scaling
    (used to split an edge cost at a facility or query location) and the
    Pareto-dominance test.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[float]):
        values = tuple(float(v) for v in values)
        if not values:
            raise GraphError("a cost vector needs at least one component")
        for value in values:
            if value < 0:
                raise GraphError(f"cost values must be non-negative, got {value}")
        self._values = values

    @classmethod
    def zeros(cls, dimensions: int) -> "CostVector":
        """Return the all-zero vector with ``dimensions`` components."""
        return cls([0.0] * dimensions)

    @property
    def values(self) -> tuple[float, ...]:
        """The raw tuple of cost values."""
        return self._values

    @property
    def dimensions(self) -> int:
        """Number of cost types ``d``."""
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __getitem__(self, index):  # type: ignore[override]
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CostVector):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" for v in self._values)
        return f"CostVector({inner})"

    def __add__(self, other: "CostVector | Sequence[float]") -> "CostVector":
        other_values = tuple(other)
        if len(other_values) != len(self._values):
            raise GraphError("cannot add cost vectors of different dimensionality")
        return CostVector(a + b for a, b in zip(self._values, other_values))

    def scale(self, factor: float) -> "CostVector":
        """Return the vector scaled by ``factor`` (used for partial edge weights)."""
        if factor < 0:
            raise GraphError("scale factor must be non-negative")
        return CostVector(v * factor for v in self._values)

    def dominates(self, other: "CostVector | Sequence[float]") -> bool:
        """True if this vector Pareto-dominates ``other`` (<= everywhere, < somewhere)."""
        return dominates(self._values, tuple(other))

    def dominates_or_equal(self, other: "CostVector | Sequence[float]") -> bool:
        """True if this vector is component-wise no larger than ``other``."""
        return dominates_or_equal(self._values, tuple(other))


def dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """Pareto dominance: ``first`` <= ``second`` everywhere and < somewhere.

    This is the dominance relation of Definition "MCN skyline" in the paper:
    a facility dominates another if it is no more expensive to reach under
    every cost type and strictly cheaper under at least one.
    """
    if len(first) != len(second):
        raise GraphError("cannot compare cost vectors of different dimensionality")
    strictly_smaller = False
    for a, b in zip(first, second):
        if a > b:
            return False
        if a < b:
            strictly_smaller = True
    return strictly_smaller


def dominates_or_equal(first: Sequence[float], second: Sequence[float]) -> bool:
    """True if ``first`` is component-wise no larger than ``second``."""
    if len(first) != len(second):
        raise GraphError("cannot compare cost vectors of different dimensionality")
    return all(a <= b for a, b in zip(first, second))
