"""The graph-accessor protocol shared by all query algorithms.

The paper's algorithms never touch the graph directly: every adjacency list,
every list of facilities on an edge and every facility-tree probe goes
through an *accessor*.  Two implementations exist:

* :class:`InMemoryAccessor` (this module) — reads the in-memory
  :class:`~repro.network.graph.MultiCostGraph`; useful for pure-algorithm
  work and for unit tests.  It still counts logical accesses so that the
  access-sharing property of CEA can be verified without the disk simulator.
* :class:`repro.storage.NetworkStorage` — the disk-resident storage scheme
  of Figure 2 with a simulated page store and LRU buffer; it counts page
  reads, which dominate the paper's reported processing time.

Both expose the same methods, so LSA/CEA/top-k are written once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Protocol, runtime_checkable

from repro.errors import FacilityError
from repro.network.facilities import FacilityId, FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph, NodeId

__all__ = [
    "AdjacencyRecord",
    "FacilityRecord",
    "AccessStatistics",
    "GraphAccessor",
    "InMemoryAccessor",
    "FetchOnceCache",
]


class AdjacencyRecord(NamedTuple):
    """One entry of a node's adjacency list, as returned by an accessor."""

    neighbor: NodeId
    edge_id: EdgeId
    costs: tuple[float, ...]
    length: float
    first_node: NodeId  # the edge's canonical first end-node (offsets are measured from it)
    facility_count: int


class FacilityRecord(NamedTuple):
    """One entry of an edge's facility list."""

    facility_id: FacilityId
    edge_id: EdgeId
    offset: float  # distance from the edge's first end-node


@dataclass
class AccessStatistics:
    """Counters of the logical and physical work done through an accessor."""

    adjacency_requests: int = 0
    facility_requests: int = 0
    facility_tree_requests: int = 0
    page_reads: int = 0
    buffer_hits: int = 0

    def reset(self) -> None:
        self.adjacency_requests = 0
        self.facility_requests = 0
        self.facility_tree_requests = 0
        self.page_reads = 0
        self.buffer_hits = 0

    @property
    def total_requests(self) -> int:
        return self.adjacency_requests + self.facility_requests + self.facility_tree_requests

    def snapshot(self) -> "AccessStatistics":
        """A copy of the current counters (used to diff before/after a query)."""
        return AccessStatistics(
            adjacency_requests=self.adjacency_requests,
            facility_requests=self.facility_requests,
            facility_tree_requests=self.facility_tree_requests,
            page_reads=self.page_reads,
            buffer_hits=self.buffer_hits,
        )

    def since(self, earlier: "AccessStatistics") -> "AccessStatistics":
        """The counter deltas accumulated since ``earlier`` was snapshotted."""
        return AccessStatistics(
            adjacency_requests=self.adjacency_requests - earlier.adjacency_requests,
            facility_requests=self.facility_requests - earlier.facility_requests,
            facility_tree_requests=self.facility_tree_requests - earlier.facility_tree_requests,
            page_reads=self.page_reads - earlier.page_reads,
            buffer_hits=self.buffer_hits - earlier.buffer_hits,
        )

    def accumulate(self, other: "AccessStatistics") -> None:
        """Add ``other``'s counters into this one (merging per-shard reports)."""
        self.adjacency_requests += other.adjacency_requests
        self.facility_requests += other.facility_requests
        self.facility_tree_requests += other.facility_tree_requests
        self.page_reads += other.page_reads
        self.buffer_hits += other.buffer_hits


@runtime_checkable
class GraphAccessor(Protocol):
    """What the LSA/CEA/top-k algorithms need from the data layer."""

    @property
    def num_cost_types(self) -> int:
        """Number of cost types ``d`` of the underlying MCN."""

    @property
    def statistics(self) -> AccessStatistics:
        """Cumulative access counters."""

    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        """The adjacency list of a node (one accessor request)."""

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        """The facilities lying on an edge (one accessor request)."""

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        """The edge a facility lies on (a facility-tree probe)."""


class InMemoryAccessor:
    """Accessor over the in-memory graph and facility set.

    Counts logical requests only; there is no page model here.  Used directly
    by the pure-algorithm API and as the backing store of the disk simulator.
    """

    def __init__(self, graph: MultiCostGraph, facilities: FacilitySet):
        if facilities.graph is not graph:
            raise FacilityError("facility set was built for a different graph")
        self._graph = graph
        self._facilities = facilities
        self._stats = AccessStatistics()

    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def facilities(self) -> FacilitySet:
        return self._facilities

    @property
    def num_cost_types(self) -> int:
        return self._graph.num_cost_types

    @property
    def statistics(self) -> AccessStatistics:
        return self._stats

    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        self._stats.adjacency_requests += 1
        records = []
        for neighbor, edge in self._graph.neighbors(node_id):
            records.append(
                AdjacencyRecord(
                    neighbor=neighbor,
                    edge_id=edge.edge_id,
                    costs=edge.costs.values,
                    length=edge.length,
                    first_node=edge.u,
                    facility_count=len(self._facilities.on_edge(edge.edge_id)),
                )
            )
        return records

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        self._stats.facility_requests += 1
        return [
            FacilityRecord(facility.facility_id, facility.edge_id, facility.offset)
            for facility in self._facilities.on_edge(edge_id)
        ]

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        self._stats.facility_tree_requests += 1
        return self._facilities.edge_of(facility_id)

    def snapshot_view(self) -> "InMemoryAccessor":
        """A read-only sibling accessor sharing the graph, with fresh counters.

        The in-memory counterpart of
        :meth:`repro.storage.NetworkStorage.snapshot_view`: parallel shard
        workers each get their own accessor (and therefore isolated request
        counters) over the same immutable graph and facility set, without
        copying either.
        """
        return InMemoryAccessor(self._graph, self._facilities)


class FetchOnceCache:
    """Information-sharing wrapper: each node/edge is fetched at most once.

    This is the data-layer half of the Combined Expansion Algorithm (CEA):
    all ``d`` expansions route their requests through one cache, so the
    adjacency information of a node and the facility contents of an edge hit
    the underlying accessor (and therefore the disk) no more than once for
    the whole query, no matter how many expansions need them.
    """

    def __init__(self, accessor: GraphAccessor):
        self._accessor = accessor
        self._adjacency: dict[NodeId, list[AdjacencyRecord]] = {}
        self._edge_facilities: dict[EdgeId, list[FacilityRecord]] = {}
        self._facility_edges: dict[FacilityId, EdgeId] = {}

    @property
    def num_cost_types(self) -> int:
        return self._accessor.num_cost_types

    @property
    def statistics(self) -> AccessStatistics:
        return self._accessor.statistics

    @property
    def cached_nodes(self) -> int:
        """Number of distinct nodes whose adjacency has been fetched."""
        return len(self._adjacency)

    def adjacency(self, node_id: NodeId) -> list[AdjacencyRecord]:
        cached = self._adjacency.get(node_id)
        if cached is None:
            cached = self._accessor.adjacency(node_id)
            self._adjacency[node_id] = cached
        return cached

    def edge_facilities(self, edge_id: EdgeId) -> list[FacilityRecord]:
        cached = self._edge_facilities.get(edge_id)
        if cached is None:
            cached = self._accessor.edge_facilities(edge_id)
            self._edge_facilities[edge_id] = cached
        return cached

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        cached = self._facility_edges.get(facility_id)
        if cached is None:
            cached = self._accessor.facility_edge(facility_id)
            self._facility_edges[facility_id] = cached
        return cached
