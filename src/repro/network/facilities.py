"""Facilities (points of interest) located on the edges of an MCN.

Every facility lies on an edge at a given distance (``offset``) from the
edge's first end-node.  Its partial weight towards either end-node is
pro-rated by the offset, exactly as described in Section III of the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Mapping

from repro.errors import FacilityError, GraphError
from repro.network.graph import EdgeId, MultiCostGraph

__all__ = ["Facility", "FacilitySet"]

FacilityId = int

# How many recent mutations a set remembers for incremental snapshot
# refreshes; a consumer further behind than this falls back to a full
# rebuild.  Bounds the log's memory on unbounded update streams.
_CHANGELOG_LIMIT = 1024


@dataclass(frozen=True)
class Facility:
    """A point of interest on an MCN edge.

    ``offset`` is the distance from the edge's first end-node (``edge.u``),
    matching the ``|v_i p_m|`` field of the facility file in Figure 2 of the
    paper.  ``attributes`` holds optional non-spatial data (capacity, owner,
    price...), which the preference queries never look at but applications may.
    """

    facility_id: FacilityId
    edge_id: EdgeId
    offset: float
    attributes: Mapping[str, object] = field(default_factory=dict)


class FacilitySet:
    """The facility set ``P``: all points of interest, indexed by edge.

    The set validates each facility against the graph it belongs to (the edge
    must exist and the offset must lie within the edge length).
    """

    def __init__(self, graph: MultiCostGraph, facilities: Iterable[Facility] = ()):
        self._graph = graph
        self._facilities: dict[FacilityId, Facility] = {}
        self._by_edge: dict[EdgeId, list[FacilityId]] = {}
        self._revision = 0
        self._log: deque[Facility] = deque(maxlen=_CHANGELOG_LIMIT)
        for facility in facilities:
            self.add(facility)

    @property
    def graph(self) -> MultiCostGraph:
        """The graph these facilities live on."""
        return self._graph

    @property
    def revision(self) -> int:
        """Monotone mutation counter (bumped by every :meth:`add` / :meth:`remove`).

        Snapshot consumers — the compiled-graph fast path — record the
        revision they were derived from and rebuild their facility columns
        when it moved, so a mutated set can never be queried through a stale
        snapshot.
        """
        return self._revision

    def changed_facilities_since(self, revision: int) -> list[Facility] | None:
        """The facilities touched by every mutation after ``revision``.

        Each :meth:`add` / :meth:`remove` logs the facility it touched
        (revisions advance by exactly one per mutation).  Returns the
        touched facilities in mutation order, or ``None`` when ``revision``
        is further behind than the bounded changelog reaches — the caller
        must then rebuild from scratch.  Used by
        :meth:`repro.network.compiled.CompiledGraph.ensure_fresh` to refresh
        only the edges a tick actually mutated.
        """
        if revision > self._revision:
            raise FacilityError(
                f"revision {revision} is ahead of the set's revision {self._revision}"
            )
        needed = self._revision - revision
        if needed == 0:
            return []
        if needed > len(self._log):
            return None
        return list(self._log)[-needed:]

    def validate_placement(self, facility: Facility) -> None:
        """Raise :class:`FacilityError` when the placement is invalid.

        Checks that the edge exists and the offset lies within the edge
        length, ignoring the facility id — callers that simulate their own
        view of which ids are live (tick validation in the monitoring
        service) combine this with their own uniqueness check.
        """
        try:
            edge = self._graph.edge(facility.edge_id)
        except GraphError as exc:
            raise FacilityError(str(exc)) from exc
        if not 0.0 <= facility.offset <= edge.length + 1e-12:
            raise FacilityError(
                f"facility {facility.facility_id} offset {facility.offset} outside edge "
                f"{facility.edge_id} of length {edge.length}"
            )

    def validate_new(self, facility: Facility) -> None:
        """Raise :class:`FacilityError` if ``facility`` could not be added.

        Checks id uniqueness and placement without mutating the set — the
        maintenance layer validates whole update batches up front so a
        rejected update never leaves the set half-applied.
        """
        if facility.facility_id in self._facilities:
            raise FacilityError(f"facility id {facility.facility_id} already exists")
        self.validate_placement(facility)

    def add(self, facility: Facility) -> None:
        """Add a facility, validating its placement."""
        self.validate_new(facility)
        self._facilities[facility.facility_id] = facility
        self._by_edge.setdefault(facility.edge_id, []).append(facility.facility_id)
        self._revision += 1
        self._log.append(facility)

    def add_on_edge(
        self,
        facility_id: FacilityId,
        edge_id: EdgeId,
        offset: float,
        attributes: Mapping[str, object] | None = None,
    ) -> Facility:
        """Convenience constructor + :meth:`add` in one call."""
        facility = Facility(facility_id, edge_id, float(offset), dict(attributes or {}))
        self.add(facility)
        return facility

    def remove(self, facility_id: FacilityId) -> Facility:
        """Remove a facility and return it.

        Used by the incremental-maintenance extension; raises
        :class:`FacilityError` when the facility does not exist.
        """
        facility = self.facility(facility_id)
        del self._facilities[facility_id]
        remaining = [fid for fid in self._by_edge[facility.edge_id] if fid != facility_id]
        if remaining:
            self._by_edge[facility.edge_id] = remaining
        else:
            del self._by_edge[facility.edge_id]
        self._revision += 1
        self._log.append(facility)
        return facility

    def __len__(self) -> int:
        return len(self._facilities)

    def __iter__(self) -> Iterator[Facility]:
        return iter(self._facilities.values())

    def __contains__(self, facility_id: FacilityId) -> bool:
        return facility_id in self._facilities

    def facility(self, facility_id: FacilityId) -> Facility:
        try:
            return self._facilities[facility_id]
        except KeyError:
            raise FacilityError(f"unknown facility {facility_id}") from None

    def facility_ids(self) -> Iterator[FacilityId]:
        return iter(self._facilities.keys())

    def on_edge(self, edge_id: EdgeId) -> list[Facility]:
        """Facilities lying on the given edge, in insertion order."""
        return [self._facilities[fid] for fid in self._by_edge.get(edge_id, [])]

    def edge_of(self, facility_id: FacilityId) -> EdgeId:
        """The edge a facility lies on (the lookup served by the facility tree)."""
        return self.facility(facility_id).edge_id

    def edges_with_facilities(self) -> Iterator[EdgeId]:
        """Edges that host at least one facility."""
        return iter(self._by_edge.keys())

    def density(self) -> float:
        """Average number of facilities per edge (a sparsity measure used in reporting)."""
        if self._graph.num_edges == 0:
            return 0.0
        return len(self._facilities) / self._graph.num_edges
