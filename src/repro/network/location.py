"""Network locations: query points and other positions on an MCN.

A location is either *at a node* or *on an edge* at some offset from the
edge's first end-node.  The query location ``q`` of the paper's skyline and
top-k queries is a :class:`NetworkLocation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LocationError
from repro.network.costs import CostVector
from repro.network.facilities import Facility
from repro.network.graph import Edge, EdgeId, MultiCostGraph, NodeId

__all__ = ["NetworkLocation"]


@dataclass(frozen=True)
class NetworkLocation:
    """A position on the network: a node, or a point along an edge.

    Exactly one of the two construction helpers should be used:

    * :meth:`at_node` — the location coincides with a network node.
    * :meth:`on_edge` — the location lies ``offset`` away from the edge's
      first end-node, along the edge.
    """

    node_id: NodeId | None = None
    edge_id: EdgeId | None = None
    offset: float = 0.0

    @classmethod
    def at_node(cls, node_id: NodeId) -> "NetworkLocation":
        """A location exactly at a network node."""
        return cls(node_id=node_id)

    @classmethod
    def on_edge(cls, edge_id: EdgeId, offset: float) -> "NetworkLocation":
        """A location on an edge, ``offset`` away from the edge's first end-node."""
        return cls(edge_id=edge_id, offset=float(offset))

    @classmethod
    def of_facility(cls, facility: Facility) -> "NetworkLocation":
        """The location of a facility (on its edge, at its offset)."""
        return cls(edge_id=facility.edge_id, offset=facility.offset)

    @property
    def is_node(self) -> bool:
        """True if the location coincides with a node."""
        return self.node_id is not None

    def validate(self, graph: MultiCostGraph) -> None:
        """Raise :class:`LocationError` if the location does not exist on ``graph``."""
        if self.node_id is not None and self.edge_id is not None:
            raise LocationError("a location is either at a node or on an edge, not both")
        if self.node_id is not None:
            if not graph.has_node(self.node_id):
                raise LocationError(f"unknown node {self.node_id}")
            return
        if self.edge_id is None:
            raise LocationError("empty network location")
        if not graph.has_edge(self.edge_id):
            raise LocationError(f"unknown edge {self.edge_id}")
        edge = graph.edge(self.edge_id)
        if not 0.0 <= self.offset <= edge.length + 1e-12:
            raise LocationError(
                f"offset {self.offset} outside edge {self.edge_id} of length {edge.length}"
            )

    def anchor_costs(self, graph: MultiCostGraph) -> list[tuple[NodeId, CostVector]]:
        """Seed costs for a network expansion starting at this location.

        Returns ``(node, cost vector)`` pairs: the nodes from which a search
        can start and the cost of reaching each of them from the location.
        For a node location this is the node itself at zero cost; for an
        edge location it is both end-nodes with pro-rated partial weights
        (only the *first* end-node for directed graphs, since the edge can
        only be traversed forward).
        """
        self.validate(graph)
        if self.node_id is not None:
            return [(self.node_id, CostVector.zeros(graph.num_cost_types))]
        edge = graph.edge(self.edge_id)  # type: ignore[arg-type]
        anchors = [(edge.v, edge.partial_costs(edge.v, self.offset))]
        if not graph.directed:
            anchors.insert(0, (edge.u, edge.partial_costs(edge.u, self.offset)))
        return anchors

    def costs_to_point_on_same_edge(
        self, graph: MultiCostGraph, other_offset: float
    ) -> CostVector | None:
        """Direct along-edge cost to another point on the same edge, if applicable.

        Returns ``None`` when this location is at a node (no shared edge) —
        callers then rely on ordinary expansion through the end-nodes.
        """
        if self.edge_id is None:
            return None
        edge = graph.edge(self.edge_id)
        fraction = abs(other_offset - self.offset) / edge.length if edge.length else 0.0
        return edge.costs.scale(fraction)

    def describe(self, graph: MultiCostGraph) -> str:
        """Human-readable description used by the examples and CLI."""
        if self.node_id is not None:
            node = graph.node(self.node_id)
            return f"node {node.node_id} at ({node.x:.1f}, {node.y:.1f})"
        edge = graph.edge(self.edge_id)  # type: ignore[arg-type]
        return f"edge {edge.edge_id} ({edge.u}-{edge.v}) at offset {self.offset:.2f}/{edge.length:.2f}"
