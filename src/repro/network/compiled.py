"""Columnar (CSR) snapshots of a built network: the data side of the fast path.

Every query algorithm bottoms out in the NE primitive of Section II-C, whose
pure-Python inner loop spends most of its time materialising
:class:`~repro.network.accessor.AdjacencyRecord` /
:class:`~repro.network.accessor.FacilityRecord` objects and walking them
attribute by attribute.  A :class:`CompiledGraph` flattens the built network
once into contiguous ``array``-backed columns:

* **CSR adjacency** — per dense node an ``indptr`` range into parallel arc
  columns (dense neighbour index, dense edge index, per-cost-type edge cost,
  a forward/backward direction flag), one directed arc per traversal
  direction, in exactly the order the accessors return adjacency records;
* **columnar facility store** — facilities bucketed by dense edge as record
  tuples, with per-cost-type hot tables holding the *precomputed* pro-rated
  partial edge weight from either end-node, so the kernel en-heaps a
  facility with one float add instead of a divide and a multiply per pop
  (the precomputation uses the very same expressions as the legacy
  expansion, so the doubles are bit-identical); facility mutations patch
  only the buckets of the edges they touched, driven by the facility set's
  bounded changelog;
* **page plans** (only when compiled from a disk-resident
  :class:`~repro.storage.NetworkStorage`) — for every possible accessor
  request, the fixed page-id sequence that request reads.  Replaying a plan
  through an LRU buffer performs the same buffered reads as the
  record-materialising path, which is how the fast path keeps page-read and
  buffer-hit counters bit-identical without scanning page records.

The snapshot shares nothing mutable: one ``CompiledGraph`` can back every
shard worker of a parallel batch (fork workers inherit it copy-on-write,
thread workers read it concurrently) while each worker charges its own
buffer and counters.  Facility columns track the
:attr:`~repro.network.facilities.FacilitySet.revision` of the set they were
derived from and are rebuilt on demand by :meth:`CompiledGraph.ensure_fresh`;
the graph topology itself must stay static, exactly as the bulk-loaded
storage scheme already requires.
"""

from __future__ import annotations

from array import array

from repro.errors import QueryError
from repro.network.facilities import FacilityId, FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph, NodeId

__all__ = ["CompiledGraph"]


class CompiledGraph:
    """A read-only CSR snapshot of a graph + facility set (+ optional page plans)."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        *,
        storage: object | None = None,
    ):
        if facilities.graph is not graph:
            raise QueryError("facility set was built for a different graph")
        self._graph = graph
        self._facilities = facilities
        self._storage = storage
        self._build_topology()
        self._build_facility_store()
        self._adjacency_plans: list[tuple[int, ...]] | None = None
        self._facility_plans: list[tuple[int, ...]] | None = None
        self._facility_tree_plans: dict[FacilityId, tuple[int, ...]] | None = None
        if storage is not None:
            self._build_page_plans(storage)
        # Compile eagerly: kernels only bind at query time, so all one-time
        # derivation cost lands here rather than inside the first query.
        for cost_index in range(graph.num_cost_types):
            self.hot_arcs(cost_index)
            self.hot_facilities(cost_index)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_accessor(cls, accessor: object) -> "CompiledGraph":
        """Compile the network behind a data layer (in-memory or disk-resident).

        Storage accessors (and their snapshot views) yield a snapshot with
        page plans bound to their simulated disk; the in-memory accessor
        yields a plan-free snapshot whose charging is pure counter bumps.
        """
        # Imported lazily: repro.storage depends on repro.network.
        from repro.network.accessor import InMemoryAccessor
        from repro.storage.catalog import PackedNetworkStorage
        from repro.storage.scheme import NetworkStorage, StorageSnapshotView

        if isinstance(accessor, StorageSnapshotView):
            accessor = accessor.base
        if isinstance(accessor, NetworkStorage):
            return cls(accessor.graph, accessor.facilities, storage=accessor)
        if isinstance(accessor, PackedNetworkStorage):
            # Compilation walks the full in-memory topology, so a pack can
            # only feed the fast path when opened with its source graph
            # attached; the standalone bisect-backed views cannot be compiled.
            if not isinstance(accessor.graph, MultiCostGraph) or not isinstance(
                accessor.facilities, FacilitySet
            ):
                raise QueryError(
                    "cannot compile a packed dataset opened standalone; reopen it "
                    "with its source graph and facility set attached"
                )
            return cls(accessor.graph, accessor.facilities, storage=accessor)
        if isinstance(accessor, InMemoryAccessor):
            return cls(accessor.graph, accessor.facilities)
        raise QueryError(
            f"cannot compile a graph from a {type(accessor).__name__}; expected "
            "an InMemoryAccessor, a NetworkStorage, a PackedNetworkStorage or "
            "a StorageSnapshotView"
        )

    def _build_topology(self) -> None:
        graph = self._graph
        self._num_nodes_at_build = graph.num_nodes
        self._num_edges_at_build = graph.num_edges
        node_index: dict[NodeId, int] = {}
        node_ids = array("q")
        for node_id in graph.node_ids():
            node_index[node_id] = len(node_ids)
            node_ids.append(node_id)
        edge_index: dict[EdgeId, int] = {}
        edge_ids = array("q")
        edge_length = array("d")
        edge_costs: list[array] = [array("d") for _ in range(graph.num_cost_types)]
        for edge in graph.edges():
            edge_index[edge.edge_id] = len(edge_ids)
            edge_ids.append(edge.edge_id)
            edge_length.append(edge.length)
            for cost_index, value in enumerate(edge.costs.values):
                edge_costs[cost_index].append(value)

        indptr = array("q", [0])
        arc_neighbor = array("q")
        arc_edge = array("q")
        arc_forward = bytearray()
        arc_costs: list[array] = [array("d") for _ in range(graph.num_cost_types)]
        # Arcs are laid out in the exact order graph.neighbors() (and
        # therefore both accessors) return adjacency records, so a kernel
        # walking them pushes heap entries in the legacy push order — the
        # property that keeps tie-breaking, and hence results, bit-identical.
        for node_id in node_ids:
            for neighbor, edge in graph.neighbors(node_id):
                arc_neighbor.append(node_index[neighbor])
                arc_edge.append(edge_index[edge.edge_id])
                arc_forward.append(1 if node_id == edge.u else 0)
                for cost_index, value in enumerate(edge.costs.values):
                    arc_costs[cost_index].append(value)
            indptr.append(len(arc_neighbor))

        self.node_index = node_index
        self.node_ids = node_ids
        self.edge_index = edge_index
        self.edge_ids = edge_ids
        self.edge_length = edge_length
        self._edge_costs = edge_costs
        self.arc_indptr = indptr
        self.arc_neighbor = arc_neighbor
        self.arc_edge = arc_edge
        self.arc_forward = bytes(arc_forward)
        self.arc_costs = arc_costs
        self._costs_revision = graph.costs_revision
        # Per-cost hot arc structures (cost-dependent: patched per edge by
        # ensure_fresh when edge costs are re-profiled).
        self._hot_arcs: dict[int, list[tuple]] = {}
        # Dense edge -> incident dense nodes (topology-only, built lazily by
        # hot_facility_node_flags' maintenance).
        self._edge_nodes: list[tuple[int, ...]] | None = None

    def _build_facility_store(self) -> None:
        # One O(|F|) grouping pass over the set (iterating the set preserves
        # the per-edge order ``on_edge`` reports, because removals keep
        # relative order in both indexes).  The store is edge-bucketed
        # record tuples — the unit the per-cost hot tables and the
        # incremental refresh both work in.
        from repro.network.accessor import FacilityRecord  # lazy: avoids import cycle

        facilities = self._facilities
        edge_index = self.edge_index
        grouped: dict[int, list] = {}
        for facility in facilities:
            grouped.setdefault(edge_index[facility.edge_id], []).append(facility)
        edge_records: list[tuple] = [()] * self.num_edges
        facility_edge_of: dict[FacilityId, EdgeId] = {}
        for dense_edge, bucket in grouped.items():
            edge_id = self.edge_ids[dense_edge]
            edge_records[dense_edge] = tuple(
                FacilityRecord(facility.facility_id, edge_id, facility.offset)
                for facility in bucket
            )
            for facility in bucket:
                facility_edge_of[facility.facility_id] = edge_id
        self._edge_records = edge_records
        self.facility_edge_of = facility_edge_of
        self._hosting = set(grouped)
        self._facilities_revision = facilities.revision
        # Reconstructed AdjacencyRecord lists (see adjacency_records), keyed
        # by dense node.  facility_count is facility-set state, so the cache
        # follows the facility columns' revision, not the static topology.
        self._adj_records: dict[int, list] = {}
        self._adj_records_revision = facilities.revision
        # The facility store feeds the per-cost hot facility tables; a full
        # rebuild drops them (the arc structure is topology-only and survives).
        self._hot_facilities: dict[int, list[tuple]] = {}
        # Per-node "some incident edge hosts facilities" bitmap (see
        # hot_facility_node_flags); dropped with the store, patched on
        # incremental refreshes.
        self._fac_node_flags: bytearray | None = None

    def _facility_cells(self, dense_edge: int, cost_index: int) -> tuple[tuple, tuple]:
        """The (backward, forward) hot-table cells of one edge under one cost.

        Each cell is a tuple of ``(facility_id, key_delta, record)`` triples;
        the delta uses the same expressions the legacy expansion evaluates
        per pop (fraction first, then cost * fraction), hoisted to build
        time — identical IEEE operations, identical doubles.
        """
        records = self._edge_records[dense_edge]
        length = self.edge_length[dense_edge]
        edge_cost = self._edge_costs[cost_index][dense_edge]
        forward = []
        backward = []
        for record in records:
            if length > 0:
                fraction_fwd = record.offset / length
                fraction_bwd = (length - record.offset) / length
            else:
                fraction_fwd = fraction_bwd = 0.0
            forward.append((record.facility_id, edge_cost * fraction_fwd, record))
            backward.append((record.facility_id, edge_cost * fraction_bwd, record))
        return tuple(backward), tuple(forward)

    def _refresh_facility_edges(self, dense_edges: set[int]) -> None:
        """Re-derive the store and cached hot cells of the given edges only."""
        from repro.network.accessor import FacilityRecord  # lazy: avoids import cycle

        facilities = self._facilities
        # Drop the old id mappings first: a facility id deleted from one
        # edge and re-added on another in the same batch must not have its
        # fresh mapping clobbered by the stale edge's cleanup.
        for dense_edge in dense_edges:
            for record in self._edge_records[dense_edge]:
                self.facility_edge_of.pop(record.facility_id, None)
        for dense_edge in dense_edges:
            edge_id = self.edge_ids[dense_edge]
            records = tuple(
                FacilityRecord(facility.facility_id, edge_id, facility.offset)
                for facility in facilities.on_edge(edge_id)
            )
            self._edge_records[dense_edge] = records
            for record in records:
                self.facility_edge_of[record.facility_id] = edge_id
            if records:
                self._hosting.add(dense_edge)
            else:
                self._hosting.discard(dense_edge)
            for cost_index, table in self._hot_facilities.items():
                backward, forward = self._facility_cells(dense_edge, cost_index)
                table[dense_edge * 2] = backward
                table[dense_edge * 2 + 1] = forward
            self._patch_fac_node_flags(dense_edge)
            # Reconstructed adjacency records embed facility_count, so only
            # the nodes incident to a refreshed edge go stale — dropping
            # just those keeps mutation-heavy monitor ticks from rebuilding
            # the whole cache every revision.
            for node_idx in self._edge_endpoint_nodes()[dense_edge]:
                self._adj_records.pop(node_idx, None)
        self._facilities_revision = facilities.revision
        self._adj_records_revision = facilities.revision

    def _refresh_edge_costs(self, dense_edges: set[int]) -> None:
        """Patch every cost-dependent structure of the given edges, in place.

        The CSR arc-cost columns, the per-cost hot arc tuples of the incident
        nodes, the hot facility cells (their key deltas embed
        ``edge_cost * fraction``) and the reconstructed adjacency records all
        depend on edge costs; everything else — topology, facility store,
        page-plan machinery — is untouched.  Patching mutates the existing
        lists/arrays so kernels and layers that already bound them observe
        the new costs, exactly as facility patches behave.
        """
        graph = self._graph
        num_costs = self.num_cost_types
        edge_nodes = self._edge_endpoint_nodes()
        touched_nodes: set[int] = set()
        for dense_edge in dense_edges:
            edge = graph.edge(self.edge_ids[dense_edge])
            for cost_index, value in enumerate(edge.costs.values):
                self._edge_costs[cost_index][dense_edge] = value
            touched_nodes.update(edge_nodes[dense_edge])
        arc_edge = self.arc_edge
        arc_neighbor = self.arc_neighbor
        arc_forward = self.arc_forward
        indptr = self.arc_indptr
        for node_idx in touched_nodes:
            for arc in range(indptr[node_idx], indptr[node_idx + 1]):
                edge_idx = arc_edge[arc]
                if edge_idx in dense_edges:
                    for cost_index in range(num_costs):
                        self.arc_costs[cost_index][arc] = self._edge_costs[
                            cost_index
                        ][edge_idx]
            for cost_index, hot in self._hot_arcs.items():
                arc_cost = self.arc_costs[cost_index]
                hot[node_idx] = tuple(
                    (
                        arc_cost[arc],
                        arc_neighbor[arc],
                        arc_edge[arc] * 2 + arc_forward[arc],
                    )
                    for arc in range(indptr[node_idx], indptr[node_idx + 1])
                )
            self._adj_records.pop(node_idx, None)
        for dense_edge in dense_edges:
            for cost_index, table in self._hot_facilities.items():
                backward, forward = self._facility_cells(dense_edge, cost_index)
                table[dense_edge * 2] = backward
                table[dense_edge * 2 + 1] = forward
        self._costs_revision = graph.costs_revision

    def _edge_endpoint_nodes(self) -> list[tuple[int, ...]]:
        """Dense edge -> the dense nodes whose arc lists traverse it."""
        cached = self._edge_nodes
        if cached is not None:
            return cached
        touching: list[list[int]] = [[] for _ in range(self.num_edges)]
        arc_edge = self.arc_edge
        indptr = self.arc_indptr
        for node_idx in range(self.num_nodes):
            for arc in range(indptr[node_idx], indptr[node_idx + 1]):
                bucket = touching[arc_edge[arc]]
                if node_idx not in bucket:
                    bucket.append(node_idx)
        self._edge_nodes = [tuple(bucket) for bucket in touching]
        return self._edge_nodes

    def hot_facility_node_flags(self) -> bytearray:
        """Per-dense-node flag: some incident edge hosts facilities.

        The kernels' serving loops use this to take a facility-free fast
        branch when settling a node — in sparse-facility regimes that's
        nearly every settle.  The bitmap is facility-set state: it is
        dropped with the facility store and patched in place by the
        incremental refresh, so a kernel that bound it at construction sees
        mutations exactly as it sees the hot facility tables it also bound.
        """
        flags = self._fac_node_flags
        if flags is None:
            flags = bytearray(self.num_nodes)
            edge_nodes = self._edge_endpoint_nodes()
            for dense_edge in self._hosting:
                for node_idx in edge_nodes[dense_edge]:
                    flags[node_idx] = 1
            self._fac_node_flags = flags
        return flags

    def _patch_fac_node_flags(self, dense_edge: int) -> None:
        """Recompute the flag of every node incident to one refreshed edge."""
        flags = self._fac_node_flags
        if flags is None:
            return
        hosting = self._hosting
        arc_edge = self.arc_edge
        indptr = self.arc_indptr
        for node_idx in self._edge_endpoint_nodes()[dense_edge]:
            bit = 0
            for arc in range(indptr[node_idx], indptr[node_idx + 1]):
                if arc_edge[arc] in hosting:
                    bit = 1
                    break
            flags[node_idx] = bit

    def _build_page_plans(self, storage) -> None:
        self._adjacency_plans = [
            storage.adjacency_page_plan(node_id) for node_id in self.node_ids
        ]
        self._facility_plans = [
            storage.facility_page_plan(edge_id) for edge_id in self.edge_ids
        ]
        self._facility_tree_plans = {
            facility_id: storage.facility_tree_page_plan(facility_id)
            for facility_id in self.facility_edge_of
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def facilities(self) -> FacilitySet:
        return self._facilities

    @property
    def storage(self):
        """The :class:`~repro.storage.NetworkStorage` plans are bound to (or ``None``)."""
        return self._storage

    @property
    def num_cost_types(self) -> int:
        return self._graph.num_cost_types

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.edge_ids)

    @property
    def num_facilities(self) -> int:
        return len(self.facility_edge_of)

    @property
    def has_page_plans(self) -> bool:
        return self._adjacency_plans is not None

    @property
    def adjacency_plans(self) -> list[tuple[int, ...]] | None:
        """Per-dense-node page plans of an adjacency request (``None`` in-memory)."""
        return self._adjacency_plans

    @property
    def facility_plans(self) -> list[tuple[int, ...]] | None:
        """Per-dense-edge page plans of an edge-facilities request (``None`` in-memory)."""
        return self._facility_plans

    @property
    def facility_tree_plans(self) -> dict[FacilityId, tuple[int, ...]] | None:
        """Per-facility page plans of a facility-tree probe (``None`` in-memory)."""
        return self._facility_tree_plans

    @property
    def facilities_revision(self) -> int:
        """The facility-set revision the facility columns were derived from."""
        return self._facilities_revision

    @property
    def costs_revision(self) -> int:
        """The graph costs revision the cost columns were derived from."""
        return self._costs_revision

    def memoryview_columns(self) -> dict[str, memoryview]:
        """Zero-copy ``memoryview``\\ s over the core numeric columns.

        Handy for tests and external tooling that want to inspect (or hash)
        the snapshot without touching the ``array`` objects the kernels bind.
        """
        views = {
            "node_ids": memoryview(self.node_ids),
            "edge_ids": memoryview(self.edge_ids),
            "edge_length": memoryview(self.edge_length),
            "arc_indptr": memoryview(self.arc_indptr),
            "arc_neighbor": memoryview(self.arc_neighbor),
            "arc_edge": memoryview(self.arc_edge),
            "arc_forward": memoryview(self.arc_forward),
            "fac_indptr": memoryview(array("q", self._facility_indptr())),
            "fac_ids": memoryview(array("q", self._facility_ids())),
            "fac_offsets": memoryview(array("d", self._facility_offsets())),
        }
        for cost_index, column in enumerate(self.arc_costs):
            views[f"arc_costs[{cost_index}]"] = memoryview(column)
        return views

    def hot_arcs(self, cost_index: int) -> list[tuple]:
        """The kernel's per-cost-type arc structure (lazily derived, cached forever).

        One entry per dense node: a tuple of arc entries
        ``(edge_cost, neighbor_idx, cell)``, where ``cell`` encodes the arc's
        dense edge and traversal direction as ``edge_idx * 2 + forward``.
        The inner expansion loop iterates these prebuilt tuples directly —
        zero index arithmetic, zero per-arc column loads — while the CSR
        arrays remain the canonical (and candidate-mode) representation.
        Topology is static, so this cache is never invalidated; the
        facility-dependent half lives in :meth:`hot_facilities`, keyed by the
        same cells, so facility mutations patch only the cells they touch.
        """
        cached = self._hot_arcs.get(cost_index)
        if cached is not None:
            return cached
        arc_cost = self.arc_costs[cost_index]
        forward = self.arc_forward
        neighbors = self.arc_neighbor
        arc_edges = self.arc_edge
        indptr = self.arc_indptr
        hot: list[tuple] = []
        for node_idx in range(self.num_nodes):
            hot.append(
                tuple(
                    (
                        arc_cost[arc],
                        neighbors[arc],
                        arc_edges[arc] * 2 + forward[arc],
                    )
                    for arc in range(indptr[node_idx], indptr[node_idx + 1])
                )
            )
        self._hot_arcs[cost_index] = hot
        return hot

    def hot_facilities(self, cost_index: int) -> list[tuple]:
        """Per-cost facility lookup table keyed by :meth:`hot_arcs` cells.

        ``table[edge_idx * 2 + forward]`` is a (possibly empty) tuple of
        ``(facility_id, key_delta, record)`` triples for the facilities on
        that edge, with the pro-rated partial weight already resolved for
        the traversal direction; ``record`` is the
        :class:`~repro.network.accessor.FacilityRecord` a reported hit
        carries.  Mutations patch only the cells of the edges they touched
        (:meth:`ensure_fresh`), so mutation-heavy monitoring ticks stay
        cheap.
        """
        cached = self._hot_facilities.get(cost_index)
        if cached is not None:
            return cached
        table: list[tuple] = [()] * (2 * self.num_edges)
        for edge_idx in self._hosting:
            backward, forward = self._facility_cells(edge_idx, cost_index)
            table[edge_idx * 2] = backward
            table[edge_idx * 2 + 1] = forward
        self._hot_facilities[cost_index] = table
        return table

    def describe(self) -> dict[str, object]:
        """Size summary used by the CLI, docs and the perf harness."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "arcs": len(self.arc_neighbor),
            "facilities": self.num_facilities,
            "cost_types": self.num_cost_types,
            "page_plans": self.has_page_plans,
        }

    # ------------------------------------------------------------------ #
    # Freshness
    # ------------------------------------------------------------------ #
    def ensure_fresh(self) -> "CompiledGraph":
        """Re-derive the facility columns if the facility set mutated.

        Topology is required to be static (the same contract the bulk-loaded
        storage scheme imposes); a snapshot with page plans cannot follow
        facility mutations either, because the on-disk facility file it
        charges against is itself static.  Returns ``self`` for chaining.
        """
        if (
            self._graph.num_nodes != self._num_nodes_at_build
            or self._graph.num_edges != self._num_edges_at_build
        ):
            raise QueryError(
                "the graph gained nodes or edges after it was compiled; "
                "rebuild the CompiledGraph (topology must be static)"
            )
        if self._graph.costs_revision != self._costs_revision:
            if self._storage is not None:
                raise QueryError(
                    "edge costs mutated under a compiled graph with page plans; "
                    "the disk-resident network file is bulk-loaded and static, "
                    "so rebuild the storage and recompile"
                )
            changed_edges = self._graph.changed_edges_since(self._costs_revision)
            if changed_edges is None:
                # Too far behind the graph's bounded changelog: every edge
                # is suspect, so patch all of them (still in place).
                self._refresh_edge_costs(set(range(self.num_edges)))
            else:
                edge_index = self.edge_index
                self._refresh_edge_costs(
                    {edge_index[edge_id] for edge_id in changed_edges}
                )
        if self._facilities.revision == self._facilities_revision:
            return self
        if self._storage is not None:
            raise QueryError(
                "the facility set mutated under a compiled graph with page plans; "
                "the disk-resident facility file is bulk-loaded and static, so "
                "rebuild the storage and recompile"
            )
        changed = self._facilities.changed_facilities_since(self._facilities_revision)
        if changed is None:
            # Too far behind the set's bounded changelog: rebuild everything.
            self._build_facility_store()
            return self
        edge_index = self.edge_index
        self._refresh_facility_edges({edge_index[f.edge_id] for f in changed})
        return self

    # ------------------------------------------------------------------ #
    # Flat facility columns (derived views over the edge-bucketed store,
    # used by memoryview_columns and tests; the query path reads the hot
    # tables, never these)
    # ------------------------------------------------------------------ #
    def _facility_indptr(self) -> list[int]:
        indptr = [0]
        running = 0
        for dense_edge in range(self.num_edges):
            running += len(self._edge_records[dense_edge])
            indptr.append(running)
        return indptr

    def _facility_ids(self) -> list[int]:
        return [
            record.facility_id for bucket in self._edge_records for record in bucket
        ]

    def _facility_offsets(self) -> list[float]:
        return [record.offset for bucket in self._edge_records for record in bucket]

    def edge_facility_records(self, dense_edge: int) -> tuple:
        """The facility records on one dense edge (bucket order = accessor order)."""
        return self._edge_records[dense_edge]

    def adjacency_records(self, node_idx: int) -> list:
        """The exact adjacency list an accessor would return for a dense node.

        Reconstructed from the CSR columns — same values, same order, no
        accessor request.  This is how the batch service's charge layer
        keeps its cross-query record cache populated without routing reads
        through the base accessor: the list compares equal (and stays
        results-identical) to what :meth:`InMemoryAccessor.adjacency
        <repro.network.accessor.InMemoryAccessor.adjacency>` or the storage
        scheme would have produced.  Lists are cached per node for the
        lifetime of the facility columns; ``facility_count`` is facility-set
        state, so the cache is dropped whenever the columns refresh.
        """
        from repro.network.accessor import AdjacencyRecord  # lazy: avoids import cycle

        if self._adj_records_revision != self._facilities_revision:
            self._adj_records.clear()
            self._adj_records_revision = self._facilities_revision
        cached = self._adj_records.get(node_idx)
        if cached is not None:
            return cached
        node_ids = self.node_ids
        edge_ids = self.edge_ids
        edge_costs = self._edge_costs
        edge_length = self.edge_length
        edge_records = self._edge_records
        arc_edge = self.arc_edge
        arc_neighbor = self.arc_neighbor
        arc_forward = self.arc_forward
        node_id = node_ids[node_idx]
        num_costs = len(edge_costs)
        records = []
        for arc in range(self.arc_indptr[node_idx], self.arc_indptr[node_idx + 1]):
            edge_idx = arc_edge[arc]
            neighbor_id = node_ids[arc_neighbor[arc]]
            records.append(
                AdjacencyRecord(
                    neighbor=neighbor_id,
                    edge_id=edge_ids[edge_idx],
                    costs=tuple(edge_costs[ci][edge_idx] for ci in range(num_costs)),
                    length=edge_length[edge_idx],
                    first_node=node_id if arc_forward[arc] else neighbor_id,
                    facility_count=len(edge_records[edge_idx]),
                )
            )
        self._adj_records[node_idx] = records
        return records
