"""Period-sweep request types of the temporal subsystem.

A sweep is the paper's future-work query verbatim: the preferred (skyline
or top-k) facilities *for every time instance within a given period*.  The
period is sampled at an explicit, increasing sequence of instants — the
shape :func:`repro.timedep.queries._check_times` has always demanded — and
the validation now happens here, at request construction (and therefore at
payload decode), instead of surfacing mid-query.

Like the static request types of :mod:`repro.service.requests`, sweeps are
frozen, hashable and round-trip through plain-JSON payloads, so sweep
answers can be pinned as golden fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.aggregates import AggregateFunction
from repro.errors import QueryError
from repro.network.location import NetworkLocation
from repro.service.requests import (
    _aggregate_from_payload,
    _aggregate_to_payload,
    _check_algorithm,
    location_from_payload,
    location_to_payload,
)
from repro.timedep.queries import StableInterval, TimedResult, _check_times

__all__ = [
    "SkylineSweepRequest",
    "TopKSweepRequest",
    "SweepRequest",
    "sweep_request_to_payload",
    "sweep_request_from_payload",
    "timed_result_to_payload",
    "stable_interval_to_payload",
]


def _coerce_times(times: object) -> tuple[float, ...]:
    """Validate a sweep's sampled instants exactly as the period queries do."""
    if isinstance(times, (str, bytes)) or not hasattr(times, "__iter__"):
        raise QueryError(f"times must be a sequence of instants, got {times!r}")
    try:
        ordered = [float(time) for time in times]  # type: ignore[union-attr]
    except (TypeError, ValueError):
        raise QueryError(f"times must be numbers, got {times!r}") from None
    for time in ordered:
        if time != time or time in (float("inf"), float("-inf")):
            raise QueryError("sweep instants must be finite")
    return tuple(_check_times(ordered))


@dataclass(frozen=True)
class SkylineSweepRequest:
    """The MCN skyline at every sampled instant of a period."""

    location: NetworkLocation
    times: tuple[float, ...]
    algorithm: str = "cea"

    def __post_init__(self) -> None:
        _check_algorithm(self.algorithm)
        object.__setattr__(self, "times", _coerce_times(self.times))


@dataclass(frozen=True)
class TopKSweepRequest:
    """The MCN top-k at every sampled instant of a period."""

    location: NetworkLocation
    k: int
    times: tuple[float, ...]
    weights: tuple[float, ...] | None = None
    aggregate: AggregateFunction | None = None
    algorithm: str = "cea"

    def __post_init__(self) -> None:
        _check_algorithm(self.algorithm)
        if self.k < 1:
            raise QueryError("k must be a positive integer")
        if self.weights is not None and self.aggregate is not None:
            raise QueryError("pass either weights or an aggregate function, not both")
        if self.weights is not None and not isinstance(self.weights, tuple):
            object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        object.__setattr__(self, "times", _coerce_times(self.times))


SweepRequest = Union[SkylineSweepRequest, TopKSweepRequest]


# --------------------------------------------------------------------- #
# JSON-payload serialization (golden fixtures, serve-tier exposure)
# --------------------------------------------------------------------- #
def sweep_request_to_payload(request: SweepRequest) -> dict[str, object]:
    """A plain-JSON dictionary describing ``request``."""
    if isinstance(request, SkylineSweepRequest):
        return {
            "type": "skyline-sweep",
            "location": location_to_payload(request.location),
            "times": list(request.times),
            "algorithm": request.algorithm,
        }
    if isinstance(request, TopKSweepRequest):
        payload: dict[str, object] = {
            "type": "topk-sweep",
            "location": location_to_payload(request.location),
            "times": list(request.times),
            "algorithm": request.algorithm,
            "k": request.k,
        }
        if request.weights is not None:
            payload["weights"] = list(request.weights)
        if request.aggregate is not None:
            payload["aggregate"] = _aggregate_to_payload(request.aggregate)
        return payload
    raise QueryError(
        f"expected a SkylineSweepRequest or TopKSweepRequest, got {type(request).__name__}"
    )


def sweep_request_from_payload(payload: dict[str, object]) -> SweepRequest:
    """Rebuild a sweep request from a :func:`sweep_request_to_payload` dictionary."""
    kind = payload.get("type")
    try:
        if kind == "skyline-sweep":
            return SkylineSweepRequest(
                location=location_from_payload(payload["location"]),  # type: ignore[arg-type]
                times=payload["times"],  # type: ignore[arg-type]
                algorithm=str(payload.get("algorithm", "cea")),
            )
        if kind == "topk-sweep":
            weights = payload.get("weights")
            aggregate = payload.get("aggregate")
            return TopKSweepRequest(
                location=location_from_payload(payload["location"]),  # type: ignore[arg-type]
                k=int(payload["k"]),  # type: ignore[arg-type]
                times=payload["times"],  # type: ignore[arg-type]
                weights=tuple(float(w) for w in weights) if weights is not None else None,  # type: ignore[union-attr]
                aggregate=_aggregate_from_payload(aggregate) if aggregate is not None else None,  # type: ignore[arg-type]
                algorithm=str(payload.get("algorithm", "cea")),
            )
    except KeyError as missing:
        raise QueryError(f"{kind} sweep payload missing {missing}") from None
    raise QueryError(
        f"unknown sweep request type {kind!r}; expected 'skyline-sweep' or 'topk-sweep'"
    )


def timed_result_to_payload(result: TimedResult) -> dict[str, object]:
    """A plain-JSON dictionary pinning one sampled instant's answer."""
    return {"time": result.time, "facilities": list(result.facility_ids)}


def stable_interval_to_payload(interval: StableInterval) -> dict[str, object]:
    """A plain-JSON dictionary pinning one stable interval."""
    return {
        "start": interval.start,
        "end": interval.end,
        "facilities": list(interval.facility_ids),
    }
