"""Snapshot materialisation and reuse behind temporal policies.

A :class:`TemporalExecutor` owns the moving part of ``temporal="profiles"``
execution: it evaluates a :class:`~repro.timedep.TimeVaryingMCN` (the
session's registered profile set) into the ordinary static MCN valid at one
departure time, wraps it in a full static :class:`~repro.api.Session` stack
(engine, caches, optionally storage), and keeps a small LRU of those stacks
keyed by *quantised* departure time, so nearby requests share one warm
snapshot instead of re-materialising the graph per query.

Every cached stack remembers the base graph's cost revision and the live
facility set's revision at build time; a monitoring tick that re-profiles an
edge (:class:`~repro.monitor.EdgeCostUpdate`) or mutates the facility set
therefore invalidates the stack on its next use — the executor rebuilds it
from the current base state, which is exactly the "fresh static session over
the profile-evaluated snapshot" the temporal differential oracle pins.
"""

from __future__ import annotations

import math
import time as time_module
from collections import OrderedDict
from dataclasses import dataclass, replace as dataclasses_replace

from repro.api.policy import ExecutionPolicy
from repro.api.session import BatchResponse, Response, Session
from repro.errors import PolicyError, QueryError
from repro.network.accessor import AccessStatistics
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph
from repro.service.cache import CacheStatistics
from repro.service.requests import QueryRequest, SkylineRequest, TopKRequest
from repro.temporal.requests import (
    SkylineSweepRequest,
    SweepRequest,
    TopKSweepRequest,
)
from repro.timedep.network import TimeVaryingMCN, rebind_facilities
from repro.timedep.queries import StableInterval, TimedResult, stable_intervals

__all__ = ["SnapshotStatistics", "SweepResponse", "TemporalExecutor"]


@dataclass
class SnapshotStatistics:
    """How the executor's snapshot LRU behaved (the ``bench timedep`` metric).

    ``builds`` counts snapshot stacks materialised from scratch, ``hits``
    reuses of a warm cached stack, ``rebuilds`` stacks thrown away because
    the base graph's costs or the facility set moved underneath them, and
    ``evictions`` stacks dropped by the LRU bound.
    """

    builds: int = 0
    hits: int = 0
    rebuilds: int = 0
    evictions: int = 0


@dataclass(frozen=True)
class SweepResponse:
    """The answer to one period sweep.

    ``results`` holds the per-instant answers in time order; ``intervals``
    the maximal runs of consecutive instants sharing one answer (the
    paper's "stable intervals").  ``io`` sums the per-instant accessor
    deltas.
    """

    request: SweepRequest
    results: tuple[TimedResult, ...]
    intervals: tuple[StableInterval, ...]
    io: AccessStatistics
    elapsed_seconds: float
    policy: ExecutionPolicy

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


@dataclass
class _SnapshotEntry:
    session: Session
    facilities_revision: int
    costs_revision: int


class TemporalExecutor:
    """LRU of static snapshot stacks, keyed by quantised departure time."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        network: TimeVaryingMCN,
        *,
        quantum: float,
        cache_size: int,
    ):
        if network.base_graph is not graph:
            raise PolicyError(
                "the profile set was registered over a different base graph "
                "than the session's"
            )
        if quantum <= 0:
            raise PolicyError(f"temporal_quantum must be positive, got {quantum!r}")
        if cache_size < 1:
            raise PolicyError(f"temporal_cache_size must be positive, got {cache_size!r}")
        self._graph = graph
        self._facilities = facilities
        self._network = network
        self._quantum = float(quantum)
        self._cache_size = int(cache_size)
        self._entries: OrderedDict[int, _SnapshotEntry] = OrderedDict()
        self._statistics = SnapshotStatistics()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> TimeVaryingMCN:
        return self._network

    @property
    def statistics(self) -> SnapshotStatistics:
        return self._statistics

    @property
    def cached_times(self) -> tuple[float, ...]:
        """The quantised departure times currently held by the LRU."""
        return tuple(key * self._quantum for key in self._entries)

    def quantise(self, departure_time: float) -> float:
        """The snapshot time a request at ``departure_time`` is served from."""
        return self._quantum * math.floor(departure_time / self._quantum + 0.5)

    # ------------------------------------------------------------------ #
    # Snapshot stacks
    # ------------------------------------------------------------------ #
    def session_at(self, departure_time: float) -> Session:
        """The (cached) static session over the snapshot at ``departure_time``."""
        key = math.floor(departure_time / self._quantum + 0.5)
        entry = self._entries.get(key)
        if entry is not None:
            if (
                entry.facilities_revision == self._facilities.revision
                and entry.costs_revision == self._graph.costs_revision
            ):
                self._entries.move_to_end(key)
                self._statistics.hits += 1
                return entry.session
            # The base moved underneath the snapshot: rebuild from scratch.
            del self._entries[key]
            entry.session.close()
            self._statistics.rebuilds += 1
        snapshot = self._network.snapshot(key * self._quantum)
        rebound = rebind_facilities(snapshot, self._facilities)
        session = Session(snapshot, rebound)
        self._entries[key] = _SnapshotEntry(
            session=session,
            facilities_revision=self._facilities.revision,
            costs_revision=self._graph.costs_revision,
        )
        self._statistics.builds += 1
        while len(self._entries) > self._cache_size:
            _evicted_key, evicted = self._entries.popitem(last=False)
            evicted.session.close()
            self._statistics.evictions += 1
        return session

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    @staticmethod
    def strip(request: QueryRequest) -> QueryRequest:
        """The equivalent static request (``departure_time`` removed)."""
        if request.departure_time is None:
            return request
        return dataclasses_replace(request, departure_time=None)

    def query(self, request: QueryRequest, static_policy: ExecutionPolicy) -> Response:
        """Answer one departure-time request on its snapshot stack."""
        departure_time = request.departure_time
        if departure_time is None:
            raise QueryError("the temporal executor only serves departure-time requests")
        session = self.session_at(departure_time)
        inner = session.query(self.strip(request), policy=static_policy)
        # Re-carry the original (time-bearing) request; answer and I/O are
        # exactly what the snapshot session measured.
        return dataclasses_replace(inner, request=request)

    def run_batch(
        self, requests: list[QueryRequest], static_policy: ExecutionPolicy
    ) -> BatchResponse:
        """Answer a mixed batch, grouping consecutive same-snapshot requests.

        Each maximal run of consecutive requests that resolve to the same
        quantised departure time goes through that snapshot's batch service
        in one call, so intra-run cache sharing matches what a fresh static
        session would do for the same run.  Submission order is preserved.
        """
        start = time_module.perf_counter()
        responses: list[Response] = []
        io = AccessStatistics()
        cache = CacheStatistics()
        index = 0
        while index < len(requests):
            request = requests[index]
            if request.departure_time is None:
                raise QueryError(
                    "the temporal executor only serves departure-time requests"
                )
            key = math.floor(request.departure_time / self._quantum + 0.5)
            group = [request]
            end = index + 1
            while end < len(requests):
                candidate = requests[end]
                if candidate.departure_time is None:
                    break
                if math.floor(candidate.departure_time / self._quantum + 0.5) != key:
                    break
                group.append(candidate)
                end += 1
            session = self.session_at(group[0].departure_time)
            batch = session.run_batch(
                [self.strip(entry) for entry in group], policy=static_policy
            )
            for original, inner in zip(group, batch.responses):
                responses.append(dataclasses_replace(inner, request=original))
            io.accumulate(batch.io)
            cache.accumulate(batch.cache)
            index = end
        return BatchResponse(
            responses=tuple(responses),
            elapsed_seconds=time_module.perf_counter() - start,
            io=io,
            cache=cache,
            policy=static_policy,
        )

    def sweep(self, request: SweepRequest, static_policy: ExecutionPolicy) -> SweepResponse:
        """Answer one period sweep instant by instant, snapshot stacks reused.

        Per-instant answers mirror :func:`repro.timedep.queries.skyline_over_period`
        / :func:`~repro.timedep.queries.top_k_over_period` exactly: sorted
        facility ids for a skyline, rank order for a top-k.
        """
        start = time_module.perf_counter()
        results: list[TimedResult] = []
        io = AccessStatistics()
        for instant in request.times:
            session = self.session_at(instant)
            if isinstance(request, SkylineSweepRequest):
                response = session.query(
                    SkylineRequest(request.location, algorithm=request.algorithm),
                    policy=static_policy,
                )
                ids = tuple(sorted(response.result.facility_ids()))
            elif isinstance(request, TopKSweepRequest):
                response = session.query(
                    TopKRequest(
                        request.location,
                        request.k,
                        weights=request.weights,
                        aggregate=request.aggregate,
                        algorithm=request.algorithm,
                    ),
                    policy=static_policy,
                )
                ids = tuple(response.result.facility_ids())
            else:
                raise QueryError(
                    f"expected a sweep request, got {type(request).__name__}"
                )
            io.accumulate(response.io)
            results.append(TimedResult(instant, ids))
        return SweepResponse(
            request=request,
            results=tuple(results),
            intervals=tuple(stable_intervals(results)),
            io=io,
            elapsed_seconds=time_module.perf_counter() - start,
            policy=static_policy,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Tear down every cached snapshot stack (idempotent)."""
        entries, self._entries = self._entries, OrderedDict()
        for entry in entries.values():
            entry.session.close()
