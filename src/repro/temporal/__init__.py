"""The temporal subsystem: departure-time execution through the whole stack.

The source paper closes on preference queries in networks "where the costs
of the edges are functions of time".  The :mod:`repro.timedep` package has
long carried the building blocks — :class:`~repro.timedep.CostProfile`
multipliers, the :class:`~repro.timedep.TimeVaryingMCN` snapshot
materialiser and the sampled period queries — but nothing upstream could
reach them.  This package is the wiring:

* :class:`~repro.temporal.requests.SkylineSweepRequest` /
  :class:`~repro.temporal.requests.TopKSweepRequest` — period sweeps with
  the time-sequence validation moved to request construction;
* :class:`~repro.temporal.executor.TemporalExecutor` — the LRU of static
  snapshot stacks keyed by quantised departure time that answers
  ``departure_time``-bearing :class:`~repro.service.SkylineRequest` /
  :class:`~repro.service.TopKRequest` objects under
  ``ExecutionPolicy(temporal="profiles", profile_source=...)``;
* :class:`~repro.temporal.executor.SweepResponse` — per-instant answers
  plus the paper's stable intervals.

:class:`repro.api.Session` owns the executors (one per registered profile
set and temporal configuration) and routes requests here when its resolved
policy enables the subsystem; edge-cost re-profiling ticks
(:class:`~repro.monitor.EdgeCostUpdate`) invalidate cached snapshots
through the base graph's cost revision.
"""

from repro.temporal.executor import SnapshotStatistics, SweepResponse, TemporalExecutor
from repro.temporal.requests import (
    SkylineSweepRequest,
    SweepRequest,
    TopKSweepRequest,
    stable_interval_to_payload,
    sweep_request_from_payload,
    sweep_request_to_payload,
    timed_result_to_payload,
)

__all__ = [
    "SkylineSweepRequest",
    "SnapshotStatistics",
    "SweepRequest",
    "SweepResponse",
    "TemporalExecutor",
    "TopKSweepRequest",
    "stable_interval_to_payload",
    "sweep_request_from_payload",
    "sweep_request_to_payload",
    "timed_result_to_payload",
]
