"""The candidate set (CS) shared by the skyline and top-k algorithms.

Every facility encountered by one of the ``d`` expansions gets a
:class:`CandidateEntry` holding its partially-known cost vector.  A facility
is *pinned* once all ``d`` expansions have reported it, i.e. its complete
cost vector is known.  Dominance reasoning with unknown costs relies on the
incremental nature of network expansion: a cost not yet computed for a
candidate is guaranteed to be no smaller than the corresponding cost of any
facility already pinned (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from repro.errors import QueryError
from repro.network.accessor import FacilityRecord
from repro.network.costs import dominates
from repro.network.facilities import FacilityId
from repro.network.graph import EdgeId

__all__ = ["CandidateEntry", "CandidatePool"]


@dataclass
class CandidateEntry:
    """Book-keeping for one encountered facility."""

    facility_id: FacilityId
    costs: list[float | None]
    record: FacilityRecord
    encounter_order: int
    reported: bool = False
    eliminated: bool = False
    pin_order: int | None = None
    # Number of still-unknown cost components; -1 means "derive from costs"
    # (entries built by hand in tests).  Kept in sync by CandidatePool.observe
    # so is_pinned is O(1) — it is evaluated on every dominance probe.
    missing: int = -1
    _known_cache: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.missing < 0:
            self.missing = sum(1 for value in self.costs if value is None)

    @property
    def is_pinned(self) -> bool:
        """True once every cost component is known."""
        return self.missing == 0

    @property
    def is_resolved(self) -> bool:
        """True once the entry no longer needs attention (reported or eliminated)."""
        return self.reported or self.eliminated

    @property
    def known_costs(self) -> tuple[float, ...]:
        """The complete cost vector, asserting that the entry is pinned.

        Costs never change once pinned, so the tuple is built once and
        cached — dominance checks read it on every probe.
        """
        cached = self._known_cache
        if cached is not None:
            return cached
        if self.missing != 0:
            raise QueryError(f"facility {self.facility_id} is not pinned yet")
        cached = tuple(float(value) for value in self.costs)  # type: ignore[arg-type]
        self._known_cache = cached
        return cached

    def cost_tuple(self) -> tuple[float | None, ...]:
        return tuple(self.costs)

    def missing_indices(self) -> list[int]:
        return [index for index, value in enumerate(self.costs) if value is None]


class CandidatePool:
    """All facilities encountered so far, with pin/dominance logic."""

    def __init__(self, num_cost_types: int):
        if num_cost_types < 1:
            raise QueryError("the candidate pool needs at least one cost type")
        self._num_cost_types = num_cost_types
        self._entries: dict[FacilityId, CandidateEntry] = {}
        self._encounter_counter = 0
        self._pin_counter = 0
        self.dominance_checks = 0

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def observe(
        self, facility_id: FacilityId, cost_index: int, cost: float, record: FacilityRecord
    ) -> CandidateEntry:
        """Record that expansion ``cost_index`` reported ``facility_id`` at ``cost``.

        Creates the entry on first encounter.  Returns the (updated) entry;
        callers check :attr:`CandidateEntry.is_pinned` afterwards.
        """
        entry = self._entries.get(facility_id)
        if entry is None:
            costs: list[float | None] = [None] * self._num_cost_types
            entry = CandidateEntry(
                facility_id=facility_id,
                costs=costs,
                record=record,
                encounter_order=self._encounter_counter,
            )
            self._encounter_counter += 1
            self._entries[facility_id] = entry
        if entry.costs[cost_index] is None:
            entry.costs[cost_index] = cost
            entry.missing -= 1
            if entry.missing == 0 and entry.pin_order is None:
                entry.pin_order = self._pin_counter
                self._pin_counter += 1
        return entry

    # ------------------------------------------------------------------ #
    # Queries over the pool
    # ------------------------------------------------------------------ #
    def __contains__(self, facility_id: FacilityId) -> bool:
        return facility_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, facility_id: FacilityId) -> CandidateEntry:
        try:
            return self._entries[facility_id]
        except KeyError:
            raise QueryError(f"facility {facility_id} was never encountered") from None

    def entries(self) -> Iterator[CandidateEntry]:
        return iter(self._entries.values())

    def unresolved(self) -> list[CandidateEntry]:
        """Entries that are neither reported nor eliminated — the CS of the paper."""
        return [entry for entry in self._entries.values() if not entry.is_resolved]

    def unresolved_count(self) -> int:
        return sum(1 for entry in self._entries.values() if not entry.is_resolved)

    def unpinned_tracked(self) -> list[CandidateEntry]:
        """Entries whose cost vectors are still incomplete and not eliminated.

        This includes facilities already reported through the first-NN
        shortcut: the shrinking stage keeps tracking them because, once
        pinned, they may eliminate candidates (Section IV-A enhancement).
        """
        return [
            entry
            for entry in self._entries.values()
            if not entry.eliminated and not entry.is_pinned
        ]

    def candidate_edges(self, entries: Iterable[CandidateEntry]) -> dict[EdgeId, list[FacilityRecord]]:
        """Group the given entries' facility records by edge (for candidate-only expansion)."""
        grouped: dict[EdgeId, list[FacilityRecord]] = {}
        for entry in entries:
            grouped.setdefault(entry.record.edge_id, []).append(entry.record)
        return grouped

    def any_unresolved_missing_cost(self, cost_index: int) -> bool:
        """Whether some CS entry still lacks the given cost (expansion shutdown test)."""
        return any(
            entry.costs[cost_index] is None
            for entry in self._entries.values()
            if not entry.is_resolved
        )

    # ------------------------------------------------------------------ #
    # Dominance
    # ------------------------------------------------------------------ #
    def provably_dominates(self, pinned: CandidateEntry, candidate: CandidateEntry) -> bool:
        """Whether ``pinned`` is guaranteed to dominate ``candidate``.

        ``candidate`` may have unknown costs; each unknown cost is at least
        the corresponding cost of ``pinned`` (the expansion that would reveal
        it has already advanced past ``pinned``).  Dominance is therefore
        certain when ``pinned`` is no larger on every *known* component and
        strictly smaller on at least one of them.  Equality on all known
        components is *not* enough — the candidate's true vector could be an
        exact duplicate, which the skyline definition does not discard — so
        such candidates are kept until pinned (tie-safe refinement of the
        paper's footnote 4).
        """
        self.dominance_checks += 1
        pinned_costs = pinned.known_costs
        strictly_smaller = False
        for index, candidate_cost in enumerate(candidate.costs):
            if candidate_cost is None:
                continue
            if pinned_costs[index] > candidate_cost:
                return False
            if pinned_costs[index] < candidate_cost:
                strictly_smaller = True
        return strictly_smaller

    def eliminate_dominated(self, pinned: CandidateEntry) -> list[CandidateEntry]:
        """Eliminate every unresolved candidate provably dominated by ``pinned``."""
        eliminated = []
        for entry in self._entries.values():
            if entry.is_resolved or entry.facility_id == pinned.facility_id:
                continue
            if self.provably_dominates(pinned, entry):
                entry.eliminated = True
                eliminated.append(entry)
        return eliminated

    def potential_dominators(
        self, entry: CandidateEntry, frontiers: Sequence[float]
    ) -> list[CandidateEntry]:
        """Unpinned entries that might still dominate the pinned ``entry``.

        Such an entry ``e`` must be no larger than ``entry`` on every *known*
        component and strictly smaller on at least one of them, and each of
        its unknown components must still be able to tie ``entry``: the
        unknown cost is at least the expansion frontier ``frontiers[j]``, so
        whenever the frontier has strictly passed ``entry``'s cost in that
        dimension, ``e`` can no longer dominate.  Under the paper's no-ties
        assumption this list is always empty for a pinned facility; with
        exact cost ties it may not be, in which case reporting ``entry`` is
        deferred until these entries are resolved.
        """
        costs = entry.known_costs
        dominators = []
        for other in self._entries.values():
            if other.facility_id == entry.facility_id:
                continue
            if other.eliminated or other.is_pinned:
                continue
            self.dominance_checks += 1
            smaller_somewhere = False
            compatible = True
            for index, value in enumerate(other.costs):
                if value is None:
                    # The unknown cost is >= the frontier; it can only stay
                    # compatible with domination if it can still equal costs[index].
                    if frontiers[index] > costs[index] + 1e-12:
                        compatible = False
                        break
                    continue
                if value > costs[index]:
                    compatible = False
                    break
                if value < costs[index]:
                    smaller_somewhere = True
            if compatible and smaller_somewhere:
                dominators.append(other)
        return dominators

    def dominated_by_reported(self, entry: CandidateEntry) -> bool:
        """Exact dominance check of a pinned entry against other pinned, surviving facilities.

        The paper argues this check is unnecessary when no cost ties exist;
        we keep it (it is cheap) so that duplicate cost vectors are handled
        according to the formal skyline definition.  The check also covers
        pinned entries whose reporting is still deferred: if such an entry is
        later eliminated, its own dominator dominates ``entry`` transitively,
        so eliminating ``entry`` here remains correct.
        """
        costs = entry.known_costs
        for other in self._entries.values():
            if other.facility_id == entry.facility_id:
                continue
            if other.eliminated or not other.is_pinned:
                continue
            self.dominance_checks += 1
            if dominates(other.known_costs, costs):
                return True
        return False
