"""Core MCN preference-query algorithms: LSA, CEA, top-k, incremental top-k."""

from repro.core.aggregates import (
    AggregateFunction,
    MaxCost,
    WeightedLpNorm,
    WeightedSum,
    check_monotone,
)
from repro.core.baseline import baseline_cost_vectors, baseline_skyline, baseline_top_k
from repro.core.candidates import CandidateEntry, CandidatePool
from repro.core.engine import MCNQueryEngine
from repro.core.expansion import ExpansionSeeds, FacilityHit, NearestFacilityExpansion
from repro.core.incremental import IncrementalTopK
from repro.core.kernel import (
    DirectChargeLayer,
    ExpansionKernel,
    FetchOnceChargeLayer,
    ForwardingLayer,
    KernelDataLayer,
    make_kernel_data_layer,
)
from repro.core.maintenance import MaintenanceStatistics, SkylineMaintainer, TopKMaintainer
from repro.core.results import (
    QueryStatistics,
    RankedFacility,
    SkylineFacility,
    SkylineResult,
    TopKResult,
)
from repro.core.skyline import MCNSkylineSearch, ProbingPolicy, cea_skyline, lsa_skyline
from repro.core.topk import MCNTopKSearch, cea_top_k, lsa_top_k
from repro.core.vector import (
    NUMPY_AVAILABLE,
    ColumnarFrontier,
    VectorExpansionKernel,
    kernel_class_for,
)

__all__ = [
    "AggregateFunction",
    "CandidateEntry",
    "CandidatePool",
    "ColumnarFrontier",
    "NUMPY_AVAILABLE",
    "VectorExpansionKernel",
    "kernel_class_for",
    "DirectChargeLayer",
    "ExpansionKernel",
    "ExpansionSeeds",
    "FacilityHit",
    "FetchOnceChargeLayer",
    "ForwardingLayer",
    "IncrementalTopK",
    "KernelDataLayer",
    "make_kernel_data_layer",
    "MaintenanceStatistics",
    "MaxCost",
    "MCNQueryEngine",
    "SkylineMaintainer",
    "TopKMaintainer",
    "MCNSkylineSearch",
    "MCNTopKSearch",
    "NearestFacilityExpansion",
    "ProbingPolicy",
    "QueryStatistics",
    "RankedFacility",
    "SkylineFacility",
    "SkylineResult",
    "TopKResult",
    "WeightedLpNorm",
    "WeightedSum",
    "baseline_cost_vectors",
    "baseline_skyline",
    "baseline_top_k",
    "cea_skyline",
    "cea_top_k",
    "check_monotone",
    "lsa_skyline",
    "lsa_top_k",
]
