"""Incremental maintenance of skyline and top-k results under facility updates.

Section VII of the paper lists, as future work, "incrementally updating the
skyline or top-k set in the presence of facility/query location updates".
This module implements that extension for the common update mix of
location-based services — frequent insertions and deletions of facilities,
occasional query relocation:

* **Insertion** is handled incrementally: only the new facility's cost vector
  is computed (one early-terminating expansion per cost type) and the cached
  result is patched.
* **Deletion of a facility outside the current result** is free: an excluded
  facility is always dominated by (respectively scored worse than) a result
  member, so removing it cannot change the result.
* **Deletion of a result member** (and query relocation) falls back to a
  fresh CEA computation — the cases the paper leaves open.  The maintainers
  count how often each path is taken so applications can see the saving.

Both maintainers own a mutable :class:`~repro.network.facilities.FacilitySet`
and evaluate against the in-memory accessor (the disk-resident layout of
Figure 2 is bulk-loaded and static; rebuilding it belongs to a load pipeline,
not to query maintenance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregates import AggregateFunction
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.skyline import MCNSkylineSearch
from repro.core.topk import MCNTopKSearch
from repro.errors import FacilityError, QueryError
from repro.network.accessor import FacilityRecord, InMemoryAccessor
from repro.network.costs import dominates
from repro.network.facilities import Facility, FacilityId, FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["MaintenanceStatistics", "SkylineMaintainer", "TopKMaintainer"]


@dataclass
class MaintenanceStatistics:
    """How often each maintenance path was taken."""

    insertions: int = 0
    deletions: int = 0
    incremental_updates: int = 0
    recomputations: int = 0
    query_moves: int = 0


def _facility_cost_vector(
    accessor: InMemoryAccessor,
    graph: MultiCostGraph,
    query: NetworkLocation,
    facility: Facility,
) -> tuple[float, ...]:
    """The d-dimensional cost vector of one facility, via early-terminating expansions."""
    seeds = ExpansionSeeds.from_query(graph, query)
    record = FacilityRecord(facility.facility_id, facility.edge_id, facility.offset)
    costs = []
    for cost_index in range(graph.num_cost_types):
        expansion = NearestFacilityExpansion(accessor, seeds, cost_index)
        expansion.enter_candidate_mode({facility.edge_id: [record]})
        hit = expansion.next_facility()
        if hit is None:
            raise QueryError(
                f"facility {facility.facility_id} is unreachable from the query location"
            )
        costs.append(hit.cost)
    return tuple(costs)


class SkylineMaintainer:
    """Maintains ``sky(q)`` while facilities are inserted and deleted."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        query: NetworkLocation,
    ):
        self._graph = graph
        self._facilities = facilities
        self._query = query
        self._accessor = InMemoryAccessor(graph, facilities)
        self._skyline: dict[FacilityId, tuple[float, ...]] = {}
        self._statistics = MaintenanceStatistics()
        self._recompute()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def query(self) -> NetworkLocation:
        return self._query

    @property
    def statistics(self) -> MaintenanceStatistics:
        return self._statistics

    @property
    def skyline(self) -> dict[FacilityId, tuple[float, ...]]:
        """The current skyline: facility id -> complete cost vector."""
        return dict(self._skyline)

    def skyline_ids(self) -> set[FacilityId]:
        return set(self._skyline)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert(self, facility: Facility) -> bool:
        """Insert a facility; return True when the skyline changed."""
        self._facilities.add(facility)
        self._statistics.insertions += 1
        costs = _facility_cost_vector(self._accessor, self._graph, self._query, facility)
        self._statistics.incremental_updates += 1
        if any(dominates(existing, costs) for existing in self._skyline.values()):
            return False
        dominated = [
            fid for fid, existing in self._skyline.items() if dominates(costs, existing)
        ]
        for fid in dominated:
            del self._skyline[fid]
        self._skyline[facility.facility_id] = costs
        return True

    def delete(self, facility_id: FacilityId) -> bool:
        """Delete a facility; return True when the skyline changed."""
        if facility_id not in self._facilities:
            raise FacilityError(f"unknown facility {facility_id}")
        self._facilities.remove(facility_id)
        self._statistics.deletions += 1
        if facility_id not in self._skyline:
            # An excluded facility is dominated by some skyline member, so its
            # removal can never promote anything: nothing to do.
            self._statistics.incremental_updates += 1
            return False
        self._recompute()
        return True

    def move_query(self, query: NetworkLocation) -> None:
        """Relocate the query point (always recomputes)."""
        query.validate(self._graph)
        self._query = query
        self._statistics.query_moves += 1
        self._recompute()

    def _recompute(self) -> None:
        self._statistics.recomputations += 1
        search = MCNSkylineSearch(
            self._accessor, self._graph, self._query, share_accesses=True
        )
        result = search.run()
        self._skyline = {}
        for member in result:
            if all(value is not None for value in member.costs):
                self._skyline[member.facility_id] = member.complete_costs
            else:
                facility = self._facilities.facility(member.facility_id)
                self._skyline[member.facility_id] = _facility_cost_vector(
                    self._accessor, self._graph, self._query, facility
                )


class TopKMaintainer:
    """Maintains ``top(q)`` (k best facilities) while facilities are inserted and deleted."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        query: NetworkLocation,
        aggregate: AggregateFunction,
        k: int,
    ):
        if k < 1:
            raise QueryError("k must be a positive integer")
        self._graph = graph
        self._facilities = facilities
        self._query = query
        self._aggregate = aggregate
        self._k = k
        self._accessor = InMemoryAccessor(graph, facilities)
        self._top: list[tuple[float, FacilityId, tuple[float, ...]]] = []
        self._statistics = MaintenanceStatistics()
        self._recompute()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def statistics(self) -> MaintenanceStatistics:
        return self._statistics

    @property
    def k(self) -> int:
        return self._k

    def ranking(self) -> list[tuple[FacilityId, float]]:
        """The current top-k as ``(facility id, aggregate cost)`` pairs, best first."""
        return [(facility_id, score) for score, facility_id, _costs in self._top]

    def facility_ids(self) -> list[FacilityId]:
        return [facility_id for _score, facility_id, _costs in self._top]

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert(self, facility: Facility) -> bool:
        """Insert a facility; return True when the top-k changed."""
        self._facilities.add(facility)
        self._statistics.insertions += 1
        costs = _facility_cost_vector(self._accessor, self._graph, self._query, facility)
        score = self._aggregate(costs)
        self._statistics.incremental_updates += 1
        entry = (score, facility.facility_id, costs)
        if len(self._top) < self._k:
            self._top.append(entry)
            self._top.sort(key=lambda item: (item[0], item[1]))
            return True
        worst_score, _worst_id, _ = self._top[-1]
        if score < worst_score:
            self._top[-1] = entry
            self._top.sort(key=lambda item: (item[0], item[1]))
            return True
        return False

    def delete(self, facility_id: FacilityId) -> bool:
        """Delete a facility; return True when the top-k changed."""
        if facility_id not in self._facilities:
            raise FacilityError(f"unknown facility {facility_id}")
        self._facilities.remove(facility_id)
        self._statistics.deletions += 1
        if facility_id not in self.facility_ids():
            # A facility outside the top-k scores no better than the current
            # k-th member, so removing it cannot change the result.
            self._statistics.incremental_updates += 1
            return False
        self._recompute()
        return True

    def move_query(self, query: NetworkLocation) -> None:
        """Relocate the query point (always recomputes)."""
        query.validate(self._graph)
        self._query = query
        self._statistics.query_moves += 1
        self._recompute()

    def _recompute(self) -> None:
        self._statistics.recomputations += 1
        result = MCNTopKSearch(
            self._accessor, self._graph, self._query, self._aggregate, self._k, share_accesses=True
        ).run()
        self._top = [
            (item.score, item.facility_id, item.costs) for item in result
        ]
        self._top.sort(key=lambda item: (item[0], item[1]))
