"""Incremental maintenance of skyline and top-k results under facility updates.

Section VII of the paper lists, as future work, "incrementally updating the
skyline or top-k set in the presence of facility/query location updates".
This module implements that extension for the common update mix of
location-based services — frequent insertions and deletions of facilities,
occasional query relocation:

* **Insertion** is handled incrementally: the new facility's cost vector is
  priced in O(d) against lazily materialised settled-distance maps (node
  distances depend only on the graph and the query, never on the facility
  set, so they are computed once per query location and reused by every
  later insertion) and the cached result is patched.
* **Deletion of a facility outside the current result** is free: an excluded
  facility is always dominated by (respectively scored worse than) a result
  member, so removing it cannot change the result.
* **Deletion of a result member** (and query relocation) falls back to a
  fresh CEA computation — the cases the paper leaves open.  The maintainers
  count how often each path is taken so applications can see the saving.

Updates are *atomic*: an insertion validates its placement and computes the
new facility's cost vector **before** touching the
:class:`~repro.network.facilities.FacilitySet`, so a rejected update (bad
edge, bad offset, unreachable facility) leaves both the set and the
maintained result exactly as they were.

The continuous :class:`~repro.monitor.MonitoringService` layers many
maintainers over one *shared* facility set.  For that use the mutation is
split from the maintenance: the caller mutates the set once and notifies
every maintainer through :meth:`~SkylineMaintainer.note_insert` /
:meth:`~SkylineMaintainer.note_delete`, and the expensive fallback can be
deferred (``defer_recompute=True``) so one batched — optionally sharded —
CEA pass at the end of an update tick refreshes every stale maintainer via
:meth:`~SkylineMaintainer.refresh`.

Both maintainers evaluate against the in-memory accessor (the disk-resident
layout of Figure 2 is bulk-loaded and static; rebuilding it belongs to a
load pipeline, not to query maintenance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aggregates import AggregateFunction
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.kernel import make_kernel_data_layer
from repro.core.vector import kernel_class_for
from repro.core.results import SkylineResult, TopKResult
from repro.core.skyline import MCNSkylineSearch
from repro.core.topk import MCNTopKSearch
from repro.errors import FacilityError, QueryError
from repro.network.accessor import FetchOnceCache, InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.costs import dominates
from repro.network.facilities import Facility, FacilityId, FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["MaintenanceStatistics", "SkylineMaintainer", "TopKMaintainer"]


@dataclass
class MaintenanceStatistics:
    """How often each maintenance path was taken."""

    insertions: int = 0
    deletions: int = 0
    incremental_updates: int = 0
    recomputations: int = 0
    query_moves: int = 0
    edge_cost_refreshes: int = 0

    def snapshot(self) -> "MaintenanceStatistics":
        """A copy of the current counters (used to diff before/after a tick)."""
        return MaintenanceStatistics(
            insertions=self.insertions,
            deletions=self.deletions,
            incremental_updates=self.incremental_updates,
            recomputations=self.recomputations,
            query_moves=self.query_moves,
            edge_cost_refreshes=self.edge_cost_refreshes,
        )

    def since(self, earlier: "MaintenanceStatistics") -> "MaintenanceStatistics":
        """The counter deltas accumulated since ``earlier`` was snapshotted."""
        return MaintenanceStatistics(
            insertions=self.insertions - earlier.insertions,
            deletions=self.deletions - earlier.deletions,
            incremental_updates=self.incremental_updates - earlier.incremental_updates,
            recomputations=self.recomputations - earlier.recomputations,
            query_moves=self.query_moves - earlier.query_moves,
            edge_cost_refreshes=self.edge_cost_refreshes - earlier.edge_cost_refreshes,
        )

    def accumulate(self, other: "MaintenanceStatistics") -> None:
        """Add ``other``'s counters into this one (summing across subscriptions)."""
        self.insertions += other.insertions
        self.deletions += other.deletions
        self.incremental_updates += other.incremental_updates
        self.recomputations += other.recomputations
        self.query_moves += other.query_moves
        self.edge_cost_refreshes += other.edge_cost_refreshes


class _QueryDistanceMaps:
    """Full settled-distance maps from one query location, one per cost type.

    Node-to-query network distances depend only on the graph and the query —
    never on the facility set — so a maintainer computes them once (lazily,
    at the first insertion) and prices every later insertion in O(d) lookups
    instead of running a fresh early-terminating expansion per update.  The
    d full expansions share adjacency fetches through a
    :class:`~repro.network.accessor.FetchOnceCache`, exactly as CEA shares
    them within one query.

    The per-facility pricing replicates the expansion's own arithmetic
    (settled end-node distance plus the pro-rated partial edge weight, the
    direct along-edge path for facilities on the query's own edge, forward
    traversal only on directed graphs), so the values are bit-identical to
    what :class:`NearestFacilityExpansion` would report.
    """

    def __init__(
        self,
        accessor: InMemoryAccessor,
        graph: MultiCostGraph,
        query: NetworkLocation,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        self._accessor = accessor
        self._graph = graph
        self._compiled = compiled
        self._vector = vector
        self._seeds = ExpansionSeeds.from_query(graph, query)
        self._settled: list[dict[int, float]] | None = None

    def _materialise(self) -> list[dict[int, float]]:
        if self._settled is None:
            maps = []
            if self._compiled is not None:
                # The kernel fast path: candidate mode with no candidates
                # drains the node heap over the CSR columns.  The charge
                # layer mirrors the FetchOnceCache the legacy path uses, so
                # the accessor counters move identically.  No blanket
                # ensure_fresh(): settled distances never read the facility
                # columns (the query-edge facility slots a possibly stale
                # snapshot seeds are all discarded by the empty candidate
                # set), so skipping the refresh keeps per-update insertion
                # pricing from rebuilding facility columns on every
                # monitoring tick.  Arc columns *are* cost-dependent, so a
                # cost-revision drift alone forces the refresh.
                if self._compiled.costs_revision != self._graph.costs_revision:
                    self._compiled.ensure_fresh()
                layer = make_kernel_data_layer(
                    self._compiled, target=self._accessor, fetch_once=True
                )
                kernel_class = kernel_class_for(self._vector)
                for cost_index in range(self._graph.num_cost_types):
                    kernel = kernel_class(layer, self._seeds, cost_index)
                    kernel.enter_candidate_mode({})
                    while kernel.next_facility() is not None:  # pragma: no cover - no candidates
                        pass
                    maps.append(kernel.settled_costs)
            else:
                shared = FetchOnceCache(self._accessor)
                for cost_index in range(self._graph.num_cost_types):
                    expansion = NearestFacilityExpansion(shared, self._seeds, cost_index)
                    # No candidates: the expansion drains the whole node heap
                    # without ever reading a facility file.
                    expansion.enter_candidate_mode({})
                    while expansion.next_facility() is not None:  # pragma: no cover - no candidates
                        pass
                    maps.append(expansion.settled_costs)
            self._settled = maps
        return self._settled

    def cost_vector(self, facility: Facility) -> tuple[float, ...]:
        """The d-dimensional cost vector of ``facility`` from the query."""
        settled = self._materialise()
        edge = self._graph.edge(facility.edge_id)
        if edge.length > 0:
            fraction_u = facility.offset / edge.length
            fraction_v = (edge.length - facility.offset) / edge.length
        else:
            fraction_u = fraction_v = 0.0
        costs = []
        for cost_index in range(self._graph.num_cost_types):
            edge_cost = edge.costs.values[cost_index]
            best = self._direct_cost(facility, cost_index)
            via_u = settled[cost_index].get(edge.u)
            if via_u is not None:
                candidate = via_u + edge_cost * fraction_u
                if best is None or candidate < best:
                    best = candidate
            if not self._graph.directed:
                via_v = settled[cost_index].get(edge.v)
                if via_v is not None:
                    candidate = via_v + edge_cost * fraction_v
                    if best is None or candidate < best:
                        best = candidate
            if best is None:
                raise QueryError(
                    f"facility {facility.facility_id} is unreachable from the query location"
                )
            costs.append(best)
        return tuple(costs)

    def _direct_cost(self, facility: Facility, cost_index: int) -> float | None:
        """The along-edge cost for a facility on the query's own edge, if any."""
        seeds = self._seeds
        if seeds.query_edge != facility.edge_id or seeds.query_edge_costs is None:
            return None
        if seeds.directed and facility.offset < seeds.query_offset:
            return None
        length = seeds.query_edge_length
        fraction = abs(facility.offset - seeds.query_offset) / length if length else 0.0
        return seeds.query_edge_costs[cost_index] * fraction


class _MaintainerBase:
    """State and update plumbing shared by the two maintainers."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        query: NetworkLocation,
        accessor: InMemoryAccessor | None = None,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        self._graph = graph
        self._facilities = facilities
        self._query = query
        if accessor is None:
            accessor = InMemoryAccessor(graph, facilities)
        elif accessor.graph is not graph:
            raise QueryError("the accessor was built over a different graph")
        if compiled is not None:
            if compiled.graph is not graph:
                raise QueryError("the compiled graph was built over a different graph")
            if compiled.facilities is not facilities:
                raise QueryError(
                    "the compiled graph was built over a different facility set"
                )
        self._accessor = accessor
        self._compiled = compiled
        self._vector = vector
        self._distances = _QueryDistanceMaps(accessor, graph, query, compiled, vector)
        self._statistics = MaintenanceStatistics()
        self._stale = False

    def _search_compiled(self) -> CompiledGraph | None:
        """The compiled snapshot for a fallback search, refreshed if present."""
        if self._compiled is None:
            return None
        return self._compiled.ensure_fresh()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def query(self) -> NetworkLocation:
        return self._query

    @property
    def statistics(self) -> MaintenanceStatistics:
        return self._statistics

    @property
    def stale(self) -> bool:
        """True when a deferred fallback is pending; call :meth:`refresh`."""
        return self._stale

    # ------------------------------------------------------------------ #
    # Updates (mutating flavour: the maintainer owns the facility set)
    # ------------------------------------------------------------------ #
    def cost_vector(self, facility: Facility) -> tuple[float, ...]:
        """The cost vector ``facility`` would have, without mutating anything.

        Validates the placement and reachability of a prospective insertion
        (id uniqueness is the set's concern, checked when the facility is
        actually added — so this also prices delete-then-reinsert chains);
        the returned tuple can be passed back to :meth:`insert` /
        :meth:`note_insert` so the work is not repeated.
        """
        self._facilities.validate_placement(facility)
        return self._distances.cost_vector(facility)

    def insert(self, facility: Facility, *, costs: tuple[float, ...] | None = None) -> bool:
        """Insert a facility; return True when the result changed.

        The insertion is atomic: placement and reachability are validated
        (and the cost vector computed) *before* the facility set is touched,
        so a rejected insert leaves both the set and the result unchanged.
        """
        if costs is None and not self._stale:
            costs = self.cost_vector(facility)
        self._facilities.add(facility)
        return self.note_insert(facility, costs=costs)

    def delete(self, facility_id: FacilityId, *, defer_recompute: bool = False) -> bool:
        """Delete a facility; return True when the result changed."""
        if facility_id not in self._facilities:
            raise FacilityError(f"unknown facility {facility_id}")
        self._facilities.remove(facility_id)
        return self.note_delete(facility_id, defer_recompute=defer_recompute)

    # ------------------------------------------------------------------ #
    # Updates (notification flavour: the caller already mutated the set)
    # ------------------------------------------------------------------ #
    def note_insert(self, facility: Facility, *, costs: tuple[float, ...] | None = None) -> bool:
        """Patch the result for a facility the caller already added to the set.

        While the maintainer is stale (a deferred fallback is pending) the
        patch is skipped — the pending :meth:`refresh` sees the final set
        anyway, so incremental work in between would be thrown away.
        """
        self._statistics.insertions += 1
        if self._stale:
            return False
        if costs is None:
            costs = self._distances.cost_vector(facility)
        self._statistics.incremental_updates += 1
        return self._patch_insert(facility.facility_id, costs)

    def note_delete(self, facility_id: FacilityId, *, defer_recompute: bool = False) -> bool:
        """Patch the result for a facility the caller already removed from the set.

        Deleting a non-member is free (the cheap path).  Deleting a result
        member either recomputes immediately or, with ``defer_recompute``,
        marks the maintainer :attr:`stale` so the caller can batch one
        :meth:`refresh` for a whole update tick.
        """
        self._statistics.deletions += 1
        if self._stale:
            # The pending refresh resolves the final result either way; only
            # report a change when the facility was actually dropped from the
            # (partial) cached result.
            return self._drop_member(facility_id)
        if not self._drop_member(facility_id):
            # An excluded facility is dominated by (scored no better than) a
            # result member, so its removal can never promote anything.
            self._statistics.incremental_updates += 1
            return False
        if defer_recompute:
            self._stale = True
        else:
            self._recompute()
        return True

    def move_query(self, query: NetworkLocation, *, defer_recompute: bool = False) -> None:
        """Relocate the query point (always a fallback recomputation)."""
        query.validate(self._graph)
        self._query = query
        self._distances = _QueryDistanceMaps(
            self._accessor, self._graph, query, self._compiled, self._vector
        )
        self._statistics.query_moves += 1
        if defer_recompute:
            self._stale = True
        else:
            self._recompute()

    def note_edge_costs_changed(self, *, defer_recompute: bool = False) -> None:
        """React to edge cost-vector changes (always a fallback recomputation).

        Settled distance maps embed the edge costs they were expanded over,
        so any re-profiled edge invalidates them wholesale — there is no
        cheap incremental patch analogous to the facility cases.  The maps
        are rebuilt lazily (nothing is expanded until the next read) and the
        result is recomputed, immediately or deferred like the other hooks.
        """
        self._distances = _QueryDistanceMaps(
            self._accessor, self._graph, self._query, self._compiled, self._vector
        )
        self._statistics.edge_cost_refreshes += 1
        if defer_recompute:
            self._stale = True
        else:
            self._recompute()

    def refresh(self, result: SkylineResult | TopKResult | None = None) -> None:
        """Resolve a deferred fallback (or force a fresh computation).

        With ``result`` the maintainer installs an externally computed answer
        — this is how the monitoring service feeds one batched (optionally
        sharded) CEA pass back into many maintainers; the external pass still
        counts as a recomputation.  Without it the maintainer recomputes
        itself.
        """
        if result is None:
            self._recompute()
            return
        self._statistics.recomputations += 1
        self._install(result)
        self._stale = False

    # ------------------------------------------------------------------ #
    # Hooks implemented by the concrete maintainers
    # ------------------------------------------------------------------ #
    def _patch_insert(self, facility_id: FacilityId, costs: tuple[float, ...]) -> bool:
        raise NotImplementedError

    def _drop_member(self, facility_id: FacilityId) -> bool:
        """Remove ``facility_id`` from the result; True if it was a member."""
        raise NotImplementedError

    def _recompute(self) -> None:
        raise NotImplementedError

    def _install(self, result: SkylineResult | TopKResult) -> None:
        raise NotImplementedError

    def _guard_fresh(self) -> None:
        if self._stale:
            raise QueryError(
                "the maintained result is stale (a deferred fallback is pending); "
                "call refresh() before reading it"
            )


class SkylineMaintainer(_MaintainerBase):
    """Maintains ``sky(q)`` while facilities are inserted and deleted."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        query: NetworkLocation,
        *,
        accessor: InMemoryAccessor | None = None,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        super().__init__(graph, facilities, query, accessor, compiled, vector)
        self._skyline: dict[FacilityId, tuple[float, ...]] = {}
        self._recompute()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def skyline(self) -> dict[FacilityId, tuple[float, ...]]:
        """The current skyline: facility id -> complete cost vector."""
        self._guard_fresh()
        return dict(self._skyline)

    def skyline_ids(self) -> set[FacilityId]:
        self._guard_fresh()
        return set(self._skyline)

    # ------------------------------------------------------------------ #
    # Maintenance hooks
    # ------------------------------------------------------------------ #
    def _patch_insert(self, facility_id: FacilityId, costs: tuple[float, ...]) -> bool:
        if any(dominates(existing, costs) for existing in self._skyline.values()):
            return False
        dominated = [
            fid for fid, existing in self._skyline.items() if dominates(costs, existing)
        ]
        for fid in dominated:
            del self._skyline[fid]
        self._skyline[facility_id] = costs
        return True

    def _drop_member(self, facility_id: FacilityId) -> bool:
        if facility_id not in self._skyline:
            return False
        del self._skyline[facility_id]
        return True

    def _recompute(self) -> None:
        self._statistics.recomputations += 1
        search = MCNSkylineSearch(
            self._accessor,
            self._graph,
            self._query,
            share_accesses=True,
            compiled=self._search_compiled(),
            vector=self._vector,
        )
        self._install(search.run())

    def _install(self, result: SkylineResult) -> None:
        self._skyline = {}
        for member in result:
            if all(value is not None for value in member.costs):
                self._skyline[member.facility_id] = member.complete_costs
            else:
                facility = self._facilities.facility(member.facility_id)
                self._skyline[member.facility_id] = self._distances.cost_vector(facility)
        self._stale = False


class TopKMaintainer(_MaintainerBase):
    """Maintains ``top(q)`` (k best facilities) while facilities are inserted and deleted."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        query: NetworkLocation,
        aggregate: AggregateFunction,
        k: int,
        *,
        accessor: InMemoryAccessor | None = None,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        if k < 1:
            raise QueryError("k must be a positive integer")
        super().__init__(graph, facilities, query, accessor, compiled, vector)
        self._aggregate = aggregate
        self._k = k
        self._top: list[tuple[float, FacilityId, tuple[float, ...]]] = []
        self._recompute()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        return self._k

    @property
    def aggregate(self) -> AggregateFunction:
        """The aggregate function the ranking is maintained under."""
        return self._aggregate

    def ranking(self) -> list[tuple[FacilityId, float]]:
        """The current top-k as ``(facility id, aggregate cost)`` pairs, best first."""
        self._guard_fresh()
        return [(facility_id, score) for score, facility_id, _costs in self._top]

    def facility_ids(self) -> list[FacilityId]:
        self._guard_fresh()
        return [facility_id for _score, facility_id, _costs in self._top]

    # ------------------------------------------------------------------ #
    # Maintenance hooks
    # ------------------------------------------------------------------ #
    def _patch_insert(self, facility_id: FacilityId, costs: tuple[float, ...]) -> bool:
        score = self._aggregate(costs)
        entry = (score, facility_id, costs)
        if len(self._top) < self._k:
            self._top.append(entry)
            self._top.sort(key=lambda item: (item[0], item[1]))
            return True
        worst_score, worst_id, _ = self._top[-1]
        if (score, facility_id) < (worst_score, worst_id):
            self._top[-1] = entry
            self._top.sort(key=lambda item: (item[0], item[1]))
            return True
        return False

    def _drop_member(self, facility_id: FacilityId) -> bool:
        for index, (_score, member_id, _costs) in enumerate(self._top):
            if member_id == facility_id:
                del self._top[index]
                return True
        return False

    def _recompute(self) -> None:
        self._statistics.recomputations += 1
        result = MCNTopKSearch(
            self._accessor,
            self._graph,
            self._query,
            self._aggregate,
            self._k,
            share_accesses=True,
            compiled=self._search_compiled(),
            vector=self._vector,
        ).run()
        self._install(result)

    def _install(self, result: TopKResult) -> None:
        self._top = [
            (item.score, item.facility_id, item.costs) for item in result
        ]
        self._top.sort(key=lambda item: (item[0], item[1]))
        self._stale = False
