"""Result and statistics objects returned by the MCN preference queries."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.accessor import AccessStatistics
from repro.network.facilities import FacilityId

__all__ = [
    "QueryStatistics",
    "SkylineFacility",
    "SkylineResult",
    "RankedFacility",
    "TopKResult",
]


@dataclass
class QueryStatistics:
    """Work counters of one query execution.

    ``io`` holds the accessor counter deltas for the query (page reads and
    buffer hits when running against :class:`~repro.storage.NetworkStorage`,
    logical request counts for the in-memory accessor).
    """

    nn_retrievals: int = 0
    heap_pops: int = 0
    dominance_checks: int = 0
    candidates_considered: int = 0
    facilities_pinned: int = 0
    elapsed_seconds: float = 0.0
    io: AccessStatistics = field(default_factory=AccessStatistics)


@dataclass(frozen=True)
class SkylineFacility:
    """A facility reported in the skyline.

    ``costs`` contains the network distance under every cost type; components
    the search never needed to compute (possible for facilities reported via
    the first-nearest-neighbour shortcut) are ``None``.  ``pinned`` tells
    whether the full vector was computed.
    """

    facility_id: FacilityId
    costs: tuple[float | None, ...]
    pinned: bool

    @property
    def complete_costs(self) -> tuple[float, ...]:
        """The cost vector, asserting that it is fully known."""
        if any(value is None for value in self.costs):
            raise ValueError(f"facility {self.facility_id} has unknown cost components")
        return tuple(float(value) for value in self.costs)  # type: ignore[arg-type]


@dataclass
class SkylineResult:
    """The MCN skyline of a query location, in the order facilities were reported."""

    facilities: list[SkylineFacility]
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def facility_ids(self) -> set[FacilityId]:
        return {facility.facility_id for facility in self.facilities}

    def __len__(self) -> int:
        return len(self.facilities)

    def __iter__(self):
        return iter(self.facilities)


@dataclass(frozen=True)
class RankedFacility:
    """A facility reported by a top-k query, with its aggregate cost."""

    facility_id: FacilityId
    costs: tuple[float, ...]
    score: float


@dataclass
class TopKResult:
    """The k facilities with the smallest aggregate costs, in increasing score order."""

    facilities: list[RankedFacility]
    statistics: QueryStatistics = field(default_factory=QueryStatistics)

    def facility_ids(self) -> list[FacilityId]:
        return [facility.facility_id for facility in self.facilities]

    def scores(self) -> list[float]:
        return [facility.score for facility in self.facilities]

    def __len__(self) -> int:
        return len(self.facilities)

    def __iter__(self):
        return iter(self.facilities)
