"""The allocation-light NE inner loop over a compiled graph: ``ExpansionKernel``.

This is the compute side of the columnar fast path (the data side is
:class:`~repro.network.compiled.CompiledGraph`).  The kernel is a drop-in
replacement for :class:`~repro.core.expansion.NearestFacilityExpansion` —
same constructor shape, same ``next_facility`` / ``pop_step`` / ``head_key``
/ ``enter_candidate_mode`` surface, same settled/reported views — but its
inner loop walks CSR arrays:

* heap entries are flat 3-tuples ``(key, tiebreak, payload)`` — an int
  payload is a dense node index; a facility payload is the (shared, prebuilt)
  :class:`~repro.network.accessor.FacilityRecord` the eventual hit carries,
  so reporting allocates nothing;
* settled membership is a bytearray flag per dense node instead of a dict
  probe per relaxation;
* facility keys are one float add (``distance + precomputed delta``) instead
  of a divide, a multiply and three attribute loads per record.

**The logical I/O contract.**  The kernel performs *exactly* the data-layer
requests the legacy expansion performs, at the same points of the search —
it just routes them through a :class:`KernelDataLayer` that skips record
materialisation.  Three layers cover the three sharing regimes:

* :class:`DirectChargeLayer` — every request charges the base accessor (LSA);
* :class:`FetchOnceChargeLayer` — per-query dedup, first request charges
  (CEA's :class:`~repro.network.accessor.FetchOnceCache` semantics);
* :class:`ForwardingLayer` — every request is forwarded verbatim to an
  external accessor such as the batch service's
  :class:`~repro.service.CrossQueryExpansionCache`, so cross-query hit/miss
  accounting (and the underlying misses' page reads) stays bit-identical.

Charging against a disk-resident accessor replays the request's precomputed
page plan through the accessor's own LRU buffer — same pages, same order, so
page-read/buffer-hit counters cannot drift from the record path.  The
differential suite (``tests/test_kernel_differential.py``) pins all of this:
identical facility streams, identical settled maps, identical counters.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from types import MappingProxyType

from repro.core.expansion import ExpansionSeeds, FacilityHit
from repro.errors import QueryError
from repro.network.accessor import FacilityRecord, GraphAccessor, InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilityId
from repro.network.graph import EdgeId, NodeId
from repro.storage.catalog import PackedNetworkStorage
from repro.storage.scheme import NetworkStorage, StorageSnapshotView

__all__ = [
    "DirectChargeLayer",
    "ExpansionKernel",
    "FetchOnceChargeLayer",
    "ForwardingLayer",
    "KernelDataLayer",
    "make_kernel_data_layer",
]


class KernelDataLayer:
    """What an :class:`ExpansionKernel` needs from the I/O-accounting side.

    ``compiled`` supplies the data; the ``note_*`` hooks perform (only) the
    I/O accounting of a request, and are invoked at exactly the points the
    legacy expansion would invoke the corresponding accessor method.
    ``facility_edge`` additionally returns the edge id — the searches call
    it directly when preparing the shrinking stage.
    """

    __slots__ = ("compiled",)

    def __init__(self, compiled: CompiledGraph):
        self.compiled = compiled

    def note_adjacency(self, node_idx: int) -> None:
        raise NotImplementedError

    def note_edge_facilities(self, edge_idx: int) -> None:
        raise NotImplementedError

    def note_seed_edge(self, edge_id: EdgeId) -> None:
        raise NotImplementedError

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        raise NotImplementedError

    def batch_charges(self) -> tuple[str, object]:
        """How a batching kernel may fold this layer's request accounting.

        ``("count", stats)`` — every request is one unconditional counter
        increment; a kernel may tally locally and add the totals in bulk at
        its public-method boundaries.  ``("count_once", (stats, seen_nodes,
        seen_edges))`` — ditto, but deduplicated through the shared seen
        flags (CEA).  ``("generic", None)`` — the layer has per-request side
        effects (page-plan replay through an LRU buffer, forwarding to an
        external cache), so charges must stay synchronous per request.
        Counters are exact whenever no kernel method is mid-call either way.
        """
        return ("generic", None)


def _check_charge_pairing(compiled: CompiledGraph, target: GraphAccessor) -> None:
    """Reject a snapshot/accessor pairing whose charges could not be exact.

    Enforced in the charge-layer constructors (not just the factory) so a
    directly constructed layer can never silently mis-account I/O: plans
    compiled from one storage must charge that storage (or a snapshot view
    of it), and a plan-free snapshot must charge an in-memory accessor.
    """
    base = target.base if isinstance(target, StorageSnapshotView) else target
    if isinstance(base, (NetworkStorage, PackedNetworkStorage)):
        if compiled.storage is not base:
            raise QueryError(
                "the compiled graph's page plans were built over a different "
                "storage than the accessor being charged"
            )
    elif isinstance(base, InMemoryAccessor):
        if compiled.has_page_plans:
            raise QueryError(
                "a compiled graph with page plans cannot charge an in-memory accessor"
            )
    else:
        raise QueryError(
            f"cannot charge a {type(target).__name__} through the kernel fast path"
        )


class DirectChargeLayer(KernelDataLayer):
    """Charge the base accessor on *every* request (LSA semantics).

    For in-memory accessors a charge is one counter increment; for
    disk-resident accessors it additionally replays the request's page plan
    through the accessor's own buffer pool.
    """

    __slots__ = ("_stats", "_buffer", "_adj_plans", "_fac_plans", "_tree_plans")

    def __init__(self, compiled: CompiledGraph, target: GraphAccessor):
        super().__init__(compiled)
        _check_charge_pairing(compiled, target)
        self._stats = target.statistics
        if compiled.has_page_plans:
            self._buffer = target.buffer  # type: ignore[union-attr]
            self._adj_plans = compiled.adjacency_plans
            self._fac_plans = compiled.facility_plans
            self._tree_plans = compiled.facility_tree_plans
        else:
            self._buffer = None
            self._adj_plans = None
            self._fac_plans = None
            self._tree_plans = None

    def note_adjacency(self, node_idx: int) -> None:
        self._stats.adjacency_requests += 1
        plans = self._adj_plans
        if plans is not None:
            read = self._buffer.read
            for page_id in plans[node_idx]:
                read(page_id)

    def note_edge_facilities(self, edge_idx: int) -> None:
        self._stats.facility_requests += 1
        plans = self._fac_plans
        if plans is not None:
            read = self._buffer.read
            for page_id in plans[edge_idx]:
                read(page_id)

    def note_seed_edge(self, edge_id: EdgeId) -> None:
        self.note_edge_facilities(self.compiled.edge_index[edge_id])

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        self._stats.facility_tree_requests += 1
        plans = self._tree_plans
        if plans is not None:
            read = self._buffer.read
            for page_id in plans[facility_id]:
                read(page_id)
        return self.compiled.facility_edge_of[facility_id]

    def batch_charges(self) -> tuple[str, object]:
        if self._buffer is not None:
            return ("generic", None)
        return ("count", self._stats)


class FetchOnceChargeLayer(DirectChargeLayer):
    """Charge each node/edge/facility at most once per query (CEA semantics).

    Mirrors :class:`~repro.network.accessor.FetchOnceCache`: a repeated
    request is free and moves no counter (the cache serves it from memory).
    One instance is shared by all ``d`` expansions of a query.
    """

    __slots__ = ("_seen_nodes", "_seen_edges", "_seen_facilities")

    def __init__(self, compiled: CompiledGraph, target: GraphAccessor):
        super().__init__(compiled, target)
        self._seen_nodes = bytearray(compiled.num_nodes)
        self._seen_edges = bytearray(compiled.num_edges)
        self._seen_facilities: set[FacilityId] = set()

    def note_adjacency(self, node_idx: int) -> None:
        if self._seen_nodes[node_idx]:
            return
        self._seen_nodes[node_idx] = 1
        DirectChargeLayer.note_adjacency(self, node_idx)

    def note_edge_facilities(self, edge_idx: int) -> None:
        if self._seen_edges[edge_idx]:
            return
        self._seen_edges[edge_idx] = 1
        DirectChargeLayer.note_edge_facilities(self, edge_idx)

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        if facility_id in self._seen_facilities:
            return self.compiled.facility_edge_of[facility_id]
        self._seen_facilities.add(facility_id)
        return DirectChargeLayer.facility_edge(self, facility_id)

    def batch_charges(self) -> tuple[str, object]:
        if self._buffer is not None:
            return ("generic", None)
        return ("count_once", (self._stats, self._seen_nodes, self._seen_edges))


class ForwardingLayer(KernelDataLayer):
    """Forward every request verbatim to an external accessor, discarding records.

    This is how the kernel runs under the batch service's cross-query cache:
    the cache sees exactly the request stream the legacy expansions would
    send it, so its hit/miss counters — and the base accessor's I/O on
    misses — are untouched by the fast path.
    """

    __slots__ = ("_accessor", "_node_ids", "_edge_ids")

    def __init__(self, compiled: CompiledGraph, accessor: GraphAccessor):
        super().__init__(compiled)
        self._accessor = accessor
        self._node_ids = compiled.node_ids
        self._edge_ids = compiled.edge_ids

    def note_adjacency(self, node_idx: int) -> None:
        self._accessor.adjacency(self._node_ids[node_idx])

    def note_edge_facilities(self, edge_idx: int) -> None:
        self._accessor.edge_facilities(self._edge_ids[edge_idx])

    def note_seed_edge(self, edge_id: EdgeId) -> None:
        self._accessor.edge_facilities(edge_id)

    def facility_edge(self, facility_id: FacilityId) -> EdgeId:
        return self._accessor.facility_edge(facility_id)


def make_kernel_data_layer(
    compiled: CompiledGraph,
    *,
    target: GraphAccessor,
    external: GraphAccessor | None = None,
    fetch_once: bool = False,
) -> KernelDataLayer:
    """The data layer a search should hand its kernels.

    ``external`` (an injected data layer such as the cross-query cache) wins.
    An external accessor that knows how to charge itself without record
    materialisation may provide a ``kernel_charge_layer(compiled)`` hook
    returning a :class:`KernelDataLayer` (or ``None`` to decline) — the
    batch service's :class:`~repro.service.CrossQueryExpansionCache` does;
    anything else gets a :class:`ForwardingLayer`.  Otherwise ``target``
    (the engine's base accessor) is charged directly, deduplicated per query
    when ``fetch_once`` (the CEA regime).  Raises :class:`QueryError` when
    the snapshot and the target belong to different data layers (e.g. plans
    compiled from one storage charged against another).
    """
    if external is not None:
        maker = getattr(external, "kernel_charge_layer", None)
        if maker is not None:
            layer = maker(compiled)
            if layer is not None:
                return layer
        return ForwardingLayer(compiled, external)
    if fetch_once:
        return FetchOnceChargeLayer(compiled, target)
    return DirectChargeLayer(compiled, target)


class ExpansionKernel:
    """Incremental nearest-facility expansion over CSR columns.

    Behaviourally identical to
    :class:`~repro.core.expansion.NearestFacilityExpansion` constructed over
    the same seeds and data: facility hits arrive in the same order with the
    same keys, ``head_key``/``heap_pops`` evolve identically, and the data
    layer receives the identical request sequence.
    """

    __slots__ = (
        "_layer",
        "_seeds",
        "_cost_index",
        "_node_ids",
        "_edge_ids",
        "_indptr",
        "_arc_neighbor",
        "_arc_edge",
        "_arc_cost",
        "_arc_forward",
        "_edge_length",
        "_hot_arcs",
        "_hot_facs",
        "_heap",
        "_tiebreak",
        "_settled_flags",
        "_settled",
        "_reported",
        "_candidate_edges",
        "_allowed",
        "_heap_pops",
        "_facilities_retrieved",
    )

    def __init__(self, layer: KernelDataLayer, seeds: ExpansionSeeds, cost_index: int):
        compiled = layer.compiled
        if not 0 <= cost_index < compiled.num_cost_types:
            raise QueryError(
                f"cost index {cost_index} out of range for a "
                f"{compiled.num_cost_types}-cost network"
            )
        self._layer = layer
        self._seeds = seeds
        self._cost_index = cost_index
        self._node_ids = compiled.node_ids
        self._edge_ids = compiled.edge_ids
        self._indptr = compiled.arc_indptr
        self._arc_neighbor = compiled.arc_neighbor
        self._arc_edge = compiled.arc_edge
        self._arc_cost = compiled.arc_costs[cost_index]
        self._arc_forward = compiled.arc_forward
        self._edge_length = compiled.edge_length
        self._hot_arcs = compiled.hot_arcs(cost_index)
        self._hot_facs = compiled.hot_facilities(cost_index)
        self._heap: list[tuple[float, int, object]] = []
        self._tiebreak = 0
        self._settled_flags = bytearray(compiled.num_nodes)
        self._settled: dict[NodeId, float] = {}
        self._reported: dict[FacilityId, float] = {}
        self._candidate_edges: dict[EdgeId, list[FacilityRecord]] | None = None
        self._allowed: set[FacilityId] | None = None
        self._heap_pops = 0
        self._facilities_retrieved = 0
        self._seed()

    # ------------------------------------------------------------------ #
    # Introspection (mirror of the legacy expansion)
    # ------------------------------------------------------------------ #
    @property
    def cost_index(self) -> int:
        return self._cost_index

    @property
    def exhausted(self) -> bool:
        return not self._heap

    @property
    def reported_costs(self) -> Mapping[FacilityId, float]:
        """Facilities already returned (read-only live view)."""
        return MappingProxyType(self._reported)

    @property
    def settled_costs(self) -> Mapping[NodeId, float]:
        """Settled node distances keyed by *real* node id (read-only live view)."""
        return MappingProxyType(self._settled)

    @property
    def heap_pops(self) -> int:
        return self._heap_pops

    @property
    def facilities_retrieved(self) -> int:
        return self._facilities_retrieved

    def head_key(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")

    # ------------------------------------------------------------------ #
    # Candidate-only mode
    # ------------------------------------------------------------------ #
    def enter_candidate_mode(self, candidates: dict[EdgeId, list[FacilityRecord]]) -> None:
        """Restrict the expansion to the given candidate facilities.

        Semantics identical to the legacy expansion's candidate mode,
        including the re-seeding of candidates on the query's own edge —
        required for *externally* supplied records (facilities not yet in
        the compiled columns, e.g. a prospective insertion being priced).
        """
        self._candidate_edges = {
            edge: list(records) for edge, records in candidates.items()
        }
        self._allowed = {
            record.facility_id
            for records in candidates.values()
            for record in records
        }
        seeds = self._seeds
        if seeds.query_edge is not None:
            for record in self._candidate_edges.get(seeds.query_edge, []):
                cost = self._direct_cost_on_query_edge(record.offset)
                if cost is not None:
                    self._push_candidate(record, cost)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def next_facility(self) -> FacilityHit | None:
        """Retrieve the next nearest facility, or ``None`` when exhausted."""
        heap = self._heap
        pop = heapq.heappop
        reported = self._reported
        expand = self._expand_node
        pops = 0
        try:
            while heap:
                key, _tie, payload = pop(heap)
                pops += 1
                if type(payload) is int:
                    expand(payload, key)
                    continue
                facility_id = payload.facility_id
                if facility_id in reported:
                    continue
                allowed = self._allowed
                if allowed is not None and facility_id not in allowed:
                    continue
                reported[facility_id] = key
                self._facilities_retrieved += 1
                return FacilityHit(facility_id, key, self._cost_index, payload)
            return None
        finally:
            self._heap_pops += pops

    def pop_step(self) -> FacilityHit | None:
        """Pop and process a single heap element (shrinking-stage granularity)."""
        heap = self._heap
        if not heap:
            return None
        key, _tie, payload = heapq.heappop(heap)
        self._heap_pops += 1
        if type(payload) is int:
            self._expand_node(payload, key)
            return None
        facility_id = payload.facility_id
        if facility_id in self._reported:
            return None
        if self._allowed is not None and facility_id not in self._allowed:
            return None
        self._reported[facility_id] = key
        self._facilities_retrieved += 1
        return FacilityHit(facility_id, key, self._cost_index, payload)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _seed(self) -> None:
        compiled = self._layer.compiled
        cost_index = self._cost_index
        heap = self._heap
        for node, costs in self._seeds.anchors:
            self._tiebreak = tie = self._tiebreak + 1
            heapq.heappush(heap, (costs[cost_index], tie, compiled.node_index[node]))
        query_edge = self._seeds.query_edge
        if query_edge is not None:
            # The legacy expansion reads the query edge's facility list here
            # unconditionally (even when empty); charge the same request.
            self._layer.note_seed_edge(query_edge)
            # A validated query's edge is always in the snapshot (topology is
            # static); note_seed_edge would already have raised otherwise.
            edge_idx = compiled.edge_index[query_edge]
            for record in compiled.edge_facility_records(edge_idx):
                cost = self._direct_cost_on_query_edge(record.offset)
                if cost is not None:
                    self._push_candidate(record, cost)

    def _direct_cost_on_query_edge(self, offset: float) -> float | None:
        seeds = self._seeds
        if seeds.query_edge_costs is None:
            return None
        if seeds.directed and offset < seeds.query_offset:
            return None
        length = seeds.query_edge_length
        fraction = abs(offset - seeds.query_offset) / length if length else 0.0
        return seeds.query_edge_costs[self._cost_index] * fraction

    def _push_candidate(self, record: FacilityRecord, key: float) -> None:
        if record.facility_id in self._reported:
            return
        if self._allowed is not None and record.facility_id not in self._allowed:
            return
        self._tiebreak = tie = self._tiebreak + 1
        heapq.heappush(self._heap, (key, tie, record))

    def _expand_node(self, node_idx: int, distance: float) -> None:
        flags = self._settled_flags
        if flags[node_idx]:
            return
        flags[node_idx] = 1
        self._settled[self._node_ids[node_idx]] = distance
        note_adjacency = self._layer.note_adjacency
        note_adjacency(node_idx)
        if self._candidate_edges is not None:
            self._expand_node_candidates(node_idx, distance)
            return
        arcs = self._hot_arcs[node_idx]
        if not arcs:
            return
        heap = self._heap
        push = heapq.heappush
        tie = self._tiebreak
        reported = self._reported
        fac_table = self._hot_facs
        note_edge = self._layer.note_edge_facilities
        for edge_cost, neighbor, cell in arcs:
            if not flags[neighbor]:
                tie += 1
                push(heap, (distance + edge_cost, tie, neighbor))
            facs = fac_table[cell]
            if facs:
                note_edge(cell >> 1)
                for facility_id, delta, payload in facs:
                    if facility_id in reported:
                        continue
                    tie += 1
                    push(heap, (distance + delta, tie, payload))
        self._tiebreak = tie

    def _expand_node_candidates(self, node_idx: int, distance: float) -> None:
        """Candidate-mode arc walk over the CSR columns (the cold path).

        Candidate records may be external — facilities not present in the
        compiled columns, e.g. a prospective insertion being priced — so this
        path evaluates the legacy per-record arithmetic verbatim instead of
        the precomputed deltas.
        """
        indptr = self._indptr
        start = indptr[node_idx]
        end = indptr[node_idx + 1]
        heap = self._heap
        push = heapq.heappush
        tie = self._tiebreak
        flags = self._settled_flags
        neighbors = self._arc_neighbor
        arc_edge = self._arc_edge
        arc_cost = self._arc_cost
        forward = self._arc_forward
        reported = self._reported
        candidates = self._candidate_edges
        allowed = self._allowed
        for arc in range(start, end):
            edge_cost = arc_cost[arc]
            neighbor = neighbors[arc]
            if not flags[neighbor]:
                tie += 1
                push(heap, (distance + edge_cost, tie, neighbor))
            edge_idx = arc_edge[arc]
            records = candidates.get(self._edge_ids[edge_idx])
            if not records:
                continue
            length = self._edge_length[edge_idx]
            is_forward = forward[arc]
            for record in records:
                facility_id = record.facility_id
                if facility_id in reported:
                    continue
                if allowed is not None and facility_id not in allowed:
                    continue
                if length > 0:
                    if is_forward:
                        fraction = record.offset / length
                    else:
                        fraction = (length - record.offset) / length
                else:
                    fraction = 0.0
                tie += 1
                push(heap, (distance + edge_cost * fraction, tie, record))
        self._tiebreak = tie
