"""Incremental top-k: report facilities one by one without knowing ``k``.

This implements the incremental variant of Section V.  There is no shrinking
stage and nothing is ever eliminated: invoked ``|P|`` times the iterator
enumerates the whole facility set in increasing aggregate-cost order.  A
facility ``p`` is safe to report when

1. it is pinned (its complete cost vector is known),
2. it has the smallest aggregate cost among pinned, unreported facilities, and
3. every candidate encountered before ``p`` was pinned has an aggregate-cost
   lower bound (unknown costs replaced by the expansion frontiers) no smaller
   than ``f(p)``.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.core.aggregates import AggregateFunction
from repro.core.candidates import CandidateEntry, CandidatePool
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.kernel import make_kernel_data_layer
from repro.core.results import QueryStatistics, RankedFacility
from repro.core.vector import kernel_class_for
from repro.errors import QueryError
from repro.network.accessor import FetchOnceCache, GraphAccessor
from repro.network.compiled import CompiledGraph
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["IncrementalTopK"]


class IncrementalTopK(Iterator[RankedFacility]):
    """An iterator over facilities in increasing aggregate-cost order."""

    def __init__(
        self,
        accessor: GraphAccessor,
        graph: MultiCostGraph,
        query: NetworkLocation,
        aggregate: AggregateFunction,
        *,
        share_accesses: bool = True,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        if graph.num_cost_types != accessor.num_cost_types:
            raise QueryError("graph and accessor disagree on the number of cost types")
        self._aggregate = aggregate
        self._base_accessor = accessor
        seeds = ExpansionSeeds.from_query(graph, query)
        if compiled is not None:
            layer = make_kernel_data_layer(
                compiled, target=accessor, fetch_once=share_accesses
            )
            self._data_layer = layer
            kernel_class = kernel_class_for(vector)
            self._expansions = [
                kernel_class(layer, seeds, index)
                for index in range(accessor.num_cost_types)
            ]
        else:
            self._data_layer = FetchOnceCache(accessor) if share_accesses else accessor
            self._expansions = [
                NearestFacilityExpansion(self._data_layer, seeds, index)
                for index in range(accessor.num_cost_types)
            ]
        self._pool = CandidatePool(accessor.num_cost_types)
        self._scores: dict[int, float] = {}
        self._reported: set[int] = set()
        self._statistics = QueryStatistics()

    @property
    def statistics(self) -> QueryStatistics:
        return self._statistics

    def __iter__(self) -> "IncrementalTopK":
        return self

    def __next__(self) -> RankedFacility:
        start = time.perf_counter()
        io_before = self._base_accessor.statistics.snapshot()
        try:
            result = self._advance_until_reportable()
        finally:
            self._statistics.elapsed_seconds += time.perf_counter() - start
            io_delta = self._base_accessor.statistics.since(io_before)
            self._statistics.io.adjacency_requests += io_delta.adjacency_requests
            self._statistics.io.facility_requests += io_delta.facility_requests
            self._statistics.io.facility_tree_requests += io_delta.facility_tree_requests
            self._statistics.io.page_reads += io_delta.page_reads
            self._statistics.io.buffer_hits += io_delta.buffer_hits
        return result

    def take(self, count: int) -> list[RankedFacility]:
        """Convenience: the next ``count`` facilities (fewer if the set is exhausted)."""
        results = []
        for _ in range(count):
            try:
                results.append(next(self))
            except StopIteration:
                break
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _advance_until_reportable(self) -> RankedFacility:
        while True:
            candidate = self._best_reportable()
            if candidate is not None:
                entry, score = candidate
                self._reported.add(entry.facility_id)
                return RankedFacility(entry.facility_id, entry.known_costs, score)
            if not self._advance_one_step():
                remaining = self._best_pinned_unreported()
                if remaining is not None:
                    entry, score = remaining
                    self._reported.add(entry.facility_id)
                    return RankedFacility(entry.facility_id, entry.known_costs, score)
                raise StopIteration

    def _advance_one_step(self) -> bool:
        """Probe the next expansion (round-robin); return False when all are exhausted."""
        active = [index for index, exp in enumerate(self._expansions) if not exp.exhausted]
        if not active:
            return False
        index = min(active, key=lambda i: (self._expansions[i].facilities_retrieved, i))
        hit = self._expansions[index].next_facility()
        if hit is None:
            return True
        self._statistics.nn_retrievals += 1
        entry = self._pool.observe(hit.facility_id, hit.cost_index, hit.cost, hit.record)
        if entry.is_pinned and entry.facility_id not in self._scores:
            self._statistics.facilities_pinned += 1
            self._scores[entry.facility_id] = self._aggregate(entry.known_costs)
        return True

    def _best_pinned_unreported(self) -> tuple[CandidateEntry, float] | None:
        best: tuple[CandidateEntry, float] | None = None
        for facility_id, score in self._scores.items():
            if facility_id in self._reported:
                continue
            entry = self._pool.entry(facility_id)
            if best is None or score < best[1] or (score == best[1] and facility_id < best[0].facility_id):
                best = (entry, score)
        return best

    def _best_reportable(self) -> tuple[CandidateEntry, float] | None:
        """The best pinned, unreported facility — if it is provably the next result.

        The paper's condition (iii) only involves candidates encountered
        before the facility was pinned; checking *every* unpinned candidate
        (as done here) is slightly more conservative but equally correct —
        candidates encountered later are dominated by the pinned facility and
        therefore cannot have a smaller aggregate cost, so at worst the
        report is delayed by a few extra expansion steps.
        """
        best = self._best_pinned_unreported()
        if best is None:
            return None
        entry, score = best
        frontiers = [expansion.head_key() for expansion in self._expansions]
        for other in self._pool.entries():
            if other.is_pinned or other.facility_id == entry.facility_id:
                continue
            bound_vector = [
                value if value is not None else frontiers[index]
                for index, value in enumerate(other.costs)
            ]
            if any(value == float("inf") for value in bound_vector):
                continue
            if self._aggregate(bound_vector) < score:
                return None
        return entry, score
