"""Aggregate cost functions for MCN top-k queries.

The paper requires an *increasingly monotone* function ``f`` over the
d-dimensional cost vector of a facility: if every cost of ``p`` is no larger
than the corresponding cost of ``p'`` then ``f(p) <= f(p')``.  The weighted
sum used in the experiments (random coefficients in ``[0, 1]``) is the
default, but any monotone callable can be supplied.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.errors import QueryError

__all__ = [
    "AggregateFunction",
    "WeightedSum",
    "WeightedLpNorm",
    "MaxCost",
    "check_monotone",
]

AggregateFunction = Callable[[Sequence[float]], float]


@dataclass(frozen=True)
class WeightedSum:
    """``f(p) = sum_i alpha_i * c_i(p)`` with non-negative coefficients.

    This is the aggregate cost function of Section VI; coefficients are the
    relative importance of the cost types (e.g. 0.9 travel time / 0.1 toll in
    the logistics example of the introduction).
    """

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise QueryError("a weighted sum needs at least one weight")
        if any(w < 0 for w in self.weights):
            raise QueryError("weights must be non-negative")
        if all(w == 0 for w in self.weights):
            raise QueryError("at least one weight must be positive")

    def __call__(self, costs: Sequence[float]) -> float:
        if len(costs) != len(self.weights):
            raise QueryError(
                f"cost vector has {len(costs)} components, expected {len(self.weights)}"
            )
        return sum(w * c for w, c in zip(self.weights, costs))

    @classmethod
    def uniform(cls, dimensions: int) -> "WeightedSum":
        """Equal weights over ``dimensions`` cost types."""
        if dimensions < 1:
            raise QueryError("dimensions must be positive")
        return cls(tuple(1.0 / dimensions for _ in range(dimensions)))

    @classmethod
    def random(cls, dimensions: int, rng: random.Random | None = None) -> "WeightedSum":
        """Independently random coefficients in ``(0, 1]`` (the paper's setting)."""
        if dimensions < 1:
            raise QueryError("dimensions must be positive")
        rng = rng or random.Random()
        weights = tuple(max(rng.random(), 1e-6) for _ in range(dimensions))
        return cls(weights)


@dataclass(frozen=True)
class WeightedLpNorm:
    """``f(p) = (sum_i (alpha_i * c_i(p))^p)^(1/p)`` — monotone for p >= 1."""

    weights: tuple[float, ...]
    p: float = 2.0

    def __post_init__(self) -> None:
        if self.p < 1:
            raise QueryError("the Lp exponent must be >= 1 for monotonicity")
        if not self.weights or any(w < 0 for w in self.weights):
            raise QueryError("weights must be non-negative and non-empty")

    def __call__(self, costs: Sequence[float]) -> float:
        if len(costs) != len(self.weights):
            raise QueryError(
                f"cost vector has {len(costs)} components, expected {len(self.weights)}"
            )
        return sum((w * c) ** self.p for w, c in zip(self.weights, costs)) ** (1.0 / self.p)


@dataclass(frozen=True)
class MaxCost:
    """``f(p) = max_i alpha_i * c_i(p)`` — the bottleneck aggregate (monotone)."""

    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.weights or any(w < 0 for w in self.weights):
            raise QueryError("weights must be non-negative and non-empty")

    def __call__(self, costs: Sequence[float]) -> float:
        if len(costs) != len(self.weights):
            raise QueryError(
                f"cost vector has {len(costs)} components, expected {len(self.weights)}"
            )
        return max(w * c for w, c in zip(self.weights, costs))


def check_monotone(
    function: AggregateFunction, dimensions: int, *, samples: int = 200, seed: int = 0
) -> bool:
    """Empirically check increasing monotonicity on random dominated pairs.

    Used by the engine to reject obviously non-monotone user functions and by
    the test suite; a ``True`` result is evidence, not proof.
    """
    rng = random.Random(seed)
    for _ in range(samples):
        lower = [rng.uniform(0, 100) for _ in range(dimensions)]
        higher = [value + rng.uniform(0, 10) for value in lower]
        if function(lower) > function(higher) + 1e-9:
            return False
    return True
