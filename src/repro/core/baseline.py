"""The straightforward baseline of Section IV.

"A straightforward way to compute the skyline of a query location q is to
perform d complete network expansions from q to all facilities p in P, and
thus compute their cost vectors.  After that, the cost vectors can be
processed by any traditional skyline algorithm."

The same complete-expansion approach answers top-k queries by sorting all
facilities by aggregate cost.  The baseline reads the whole network once per
cost type (its weakness, and the motivation for LSA/CEA), but it is simple
and obviously correct — the test suite uses it as the oracle for both query
types, and the benchmark harness uses it as the reference competitor.
"""

from __future__ import annotations

import time

from repro.classic.skyline import bnl_skyline
from repro.core.aggregates import AggregateFunction
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.results import (
    QueryStatistics,
    RankedFacility,
    SkylineFacility,
    SkylineResult,
    TopKResult,
)
from repro.errors import QueryError
from repro.network.accessor import GraphAccessor
from repro.network.facilities import FacilityId
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["baseline_cost_vectors", "baseline_skyline", "baseline_top_k"]


def baseline_cost_vectors(
    accessor: GraphAccessor, graph: MultiCostGraph, query: NetworkLocation
) -> dict[FacilityId, tuple[float, ...]]:
    """Complete cost vectors of every reachable facility via d full expansions.

    Each expansion is run to exhaustion through the accessor, so the I/O
    counters reflect the baseline's cost of reading the entire database once
    per cost type.
    """
    if graph.num_cost_types != accessor.num_cost_types:
        raise QueryError("graph and accessor disagree on the number of cost types")
    seeds = ExpansionSeeds.from_query(graph, query)
    per_cost: list[dict[FacilityId, float]] = []
    for index in range(accessor.num_cost_types):
        expansion = NearestFacilityExpansion(accessor, seeds, index)
        while True:
            hit = expansion.next_facility()
            if hit is None:
                break
        per_cost.append(expansion.reported_costs)
    vectors: dict[FacilityId, tuple[float, ...]] = {}
    for facility_id in per_cost[0]:
        if all(facility_id in costs for costs in per_cost):
            vectors[facility_id] = tuple(costs[facility_id] for costs in per_cost)
    return vectors


def baseline_skyline(
    accessor: GraphAccessor, graph: MultiCostGraph, query: NetworkLocation
) -> SkylineResult:
    """MCN skyline by d complete expansions followed by a BNL skyline."""
    start = time.perf_counter()
    io_before = accessor.statistics.snapshot()
    vectors = baseline_cost_vectors(accessor, graph, query)
    skyline_ids = bnl_skyline(vectors)
    facilities = [
        SkylineFacility(facility_id=fid, costs=vectors[fid], pinned=True)
        for fid in sorted(skyline_ids)
    ]
    statistics = QueryStatistics(
        nn_retrievals=len(vectors) * graph.num_cost_types,
        candidates_considered=len(vectors),
        elapsed_seconds=time.perf_counter() - start,
        io=accessor.statistics.since(io_before),
    )
    return SkylineResult(facilities=facilities, statistics=statistics)


def baseline_top_k(
    accessor: GraphAccessor,
    graph: MultiCostGraph,
    query: NetworkLocation,
    aggregate: AggregateFunction,
    k: int,
) -> TopKResult:
    """MCN top-k by d complete expansions followed by a full sort."""
    if k < 1:
        raise QueryError("k must be a positive integer")
    start = time.perf_counter()
    io_before = accessor.statistics.snapshot()
    vectors = baseline_cost_vectors(accessor, graph, query)
    ranked = sorted(
        (
            RankedFacility(facility_id=fid, costs=costs, score=aggregate(costs))
            for fid, costs in vectors.items()
        ),
        key=lambda item: (item.score, item.facility_id),
    )
    statistics = QueryStatistics(
        nn_retrievals=len(vectors) * graph.num_cost_types,
        candidates_considered=len(vectors),
        elapsed_seconds=time.perf_counter() - start,
        io=accessor.statistics.since(io_before),
    )
    return TopKResult(facilities=ranked[:k], statistics=statistics)
