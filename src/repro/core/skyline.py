"""MCN skyline processing: the Local Search Algorithm and Combined Expansion Algorithm.

Both algorithms follow the growing/shrinking framework of Section IV:

* **Growing** — one incremental nearest-facility expansion per cost type is
  probed in round-robin order; every facility encountered becomes a
  candidate.  Growing ends when the first facility is *pinned* (reported by
  all ``d`` expansions), at which point every possible skyline member has
  already been encountered.
* **Shrinking** — expansions keep running but ignore newly encountered
  facilities; candidates are either pinned (and reported as skyline members)
  or eliminated by dominance.  The stage ends when the candidate set empties.

LSA and CEA share this control flow; they differ only in how expansions hit
the data layer.  LSA lets every expansion read the accessor independently
(the same node's adjacency may be fetched up to ``d`` times), while CEA
routes all expansions through a fetch-once cache so each node/edge is read
from disk at most once — the information-sharing idea of Section IV-B.

Both algorithms are *progressive*: iterate over :class:`MCNSkylineSearch` to
receive skyline facilities as soon as they are confirmed.
"""

from __future__ import annotations

import time
from enum import Enum
from collections.abc import Iterator

from repro.core.candidates import CandidateEntry, CandidatePool
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.kernel import make_kernel_data_layer
from repro.core.vector import kernel_class_for
from repro.core.results import QueryStatistics, SkylineFacility, SkylineResult
from repro.errors import QueryError
from repro.network.accessor import FetchOnceCache, GraphAccessor
from repro.network.compiled import CompiledGraph
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = [
    "ProbingPolicy",
    "MCNSkylineSearch",
    "lsa_skyline",
    "cea_skyline",
]


class ProbingPolicy(Enum):
    """How the next expansion to probe is chosen.

    The paper argues for round-robin (no cost type is favoured, so a facility
    is pinned early); the other two policies are provided for the ablation
    discussed around Figure 4.
    """

    ROUND_ROBIN = "round-robin"
    SMALLEST_FIRST = "smallest-first"
    LARGEST_FIRST = "largest-first"


class _Stage(Enum):
    GROWING = "growing"
    SHRINKING = "shrinking"


class MCNSkylineSearch:
    """Progressive skyline search over a multi-cost network.

    Parameters
    ----------
    accessor:
        Data layer (in-memory accessor or disk-resident storage).
    graph:
        The multi-cost graph the query location refers to (used only to seed
        the expansions with the query's edge / partial weights).
    query:
        The query location ``q``.
    share_accesses:
        ``False`` → LSA behaviour (independent expansions);
        ``True`` → CEA behaviour (fetch-once information sharing).
    first_nn_shortcut:
        Report the first nearest facility of every cost type immediately
        (they can never be dominated) — the enhancement of Section IV-A.
    probing:
        Expansion probing policy; round-robin is the paper's choice.
    data_layer:
        Optional accessor the expansions read through *instead of* the
        per-query choice implied by ``share_accesses``.  The batch service
        injects its cross-query :class:`~repro.service.CrossQueryExpansionCache`
        here so that fetched records survive from one query to the next;
        ``accessor`` remains the base data layer whose I/O counters are
        diffed for the query statistics.
    seeds:
        Optional precomputed :class:`~repro.core.expansion.ExpansionSeeds`
        for ``query`` (memoised by the service); computed on the fly when
        omitted.
    compiled:
        Optional :class:`~repro.network.compiled.CompiledGraph` snapshot.
        When given, the search runs its expansions on the columnar
        :class:`~repro.core.kernel.ExpansionKernel` fast path instead of the
        record-walking expansion — results and all I/O accounting are
        bit-identical, only wall-clock changes.
    """

    def __init__(
        self,
        accessor: GraphAccessor,
        graph: MultiCostGraph,
        query: NetworkLocation,
        *,
        share_accesses: bool = False,
        first_nn_shortcut: bool = True,
        probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
        data_layer: GraphAccessor | None = None,
        seeds: ExpansionSeeds | None = None,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        if graph.num_cost_types != accessor.num_cost_types:
            raise QueryError("graph and accessor disagree on the number of cost types")
        self._graph = graph
        self._query = query
        self._probing = probing
        self._first_nn_shortcut = first_nn_shortcut
        self._share_accesses = share_accesses
        self._base_accessor = accessor
        if seeds is None:
            seeds = ExpansionSeeds.from_query(graph, query)
        if compiled is not None:
            layer = make_kernel_data_layer(
                compiled, target=accessor, external=data_layer, fetch_once=share_accesses
            )
            kernel_class = kernel_class_for(vector)
            self._expansions = [
                kernel_class(layer, seeds, index)
                for index in range(accessor.num_cost_types)
            ]
            data_layer = layer
        else:
            if data_layer is None:
                data_layer = FetchOnceCache(accessor) if share_accesses else accessor
            self._expansions = [
                NearestFacilityExpansion(data_layer, seeds, index)
                for index in range(accessor.num_cost_types)
            ]
        self._data_layer = data_layer
        self._pool = CandidatePool(accessor.num_cost_types)
        self._stage = _Stage.GROWING
        self._active = [True] * accessor.num_cost_types
        self._saw_first_nn = [False] * accessor.num_cost_types
        self._statistics = QueryStatistics()
        self._finished = False
        self._reported: list[SkylineFacility] = []
        # Pinned entries whose reporting is deferred because an unpinned
        # candidate with (partially tied) smaller known costs might still
        # dominate them.  Empty whenever cost ties are absent.
        self._deferred: list[CandidateEntry] = []
        # All pinned entries, in pin order (used by the growing-stage exit test).
        self._pinned_entries: list[CandidateEntry] = []

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def statistics(self) -> QueryStatistics:
        return self._statistics

    @property
    def stage(self) -> str:
        """The current stage name ("growing" or "shrinking")."""
        return self._stage.value

    @property
    def expansions(self) -> tuple[NearestFacilityExpansion, ...]:
        """The per-cost-type expansions, exposing reusable state (settle costs)."""
        return tuple(self._expansions)

    def run(self) -> SkylineResult:
        """Execute the search to completion and return the full skyline."""
        start = time.perf_counter()
        io_before = self._base_accessor.statistics.snapshot()
        facilities = list(self._progressive())
        self._statistics.elapsed_seconds = time.perf_counter() - start
        self._statistics.io = self._base_accessor.statistics.since(io_before)
        self._statistics.dominance_checks = self._pool.dominance_checks
        self._statistics.candidates_considered = len(self._pool)
        self._statistics.heap_pops = sum(exp.heap_pops for exp in self._expansions)
        return SkylineResult(facilities=facilities, statistics=self._statistics)

    def __iter__(self) -> Iterator[SkylineFacility]:
        """Progressively yield skyline facilities as soon as they are confirmed."""
        return self._progressive()

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    def _progressive(self) -> Iterator[SkylineFacility]:
        if self._finished:
            yield from self._reported
            return
        while not self._finished:
            index = self._choose_expansion()
            if index is None:
                # Every expansion is exhausted or deactivated: whatever is
                # still unresolved can never be pinned, which (on a connected
                # network) only happens when there are no facilities at all.
                self._finished = True
                break
            yield from self._probe(index)
            if self._stage is _Stage.SHRINKING and self._pool.unresolved_count() == 0:
                self._finished = True
        yield from self._finalize_deferred()
        return

    def _choose_expansion(self) -> int | None:
        candidates = [
            index
            for index, expansion in enumerate(self._expansions)
            if self._active[index] and not expansion.exhausted
        ]
        if not candidates:
            return None
        if self._probing is ProbingPolicy.ROUND_ROBIN:
            # Probe the active expansion that has retrieved the fewest NNs so
            # far; with all expansions active this cycles 1..d like the paper.
            return min(candidates, key=lambda i: (self._expansions[i].facilities_retrieved, i))
        keys = {i: self._expansions[i].head_key() for i in candidates}
        if self._probing is ProbingPolicy.SMALLEST_FIRST:
            return min(candidates, key=lambda i: (keys[i], i))
        return max(candidates, key=lambda i: (keys[i], -i))

    def _probe(self, index: int) -> Iterator[SkylineFacility]:
        expansion = self._expansions[index]
        while True:
            hit = expansion.next_facility()
            if hit is None:
                self._active[index] = False
                return
            self._statistics.nn_retrievals += 1
            entry = self._pool.entry(hit.facility_id) if hit.facility_id in self._pool else None
            if entry is not None and entry.eliminated:
                # An eliminated candidate surfaced in another expansion's heap;
                # record nothing and keep probing for a useful NN.
                continue
            entry = self._pool.observe(hit.facility_id, hit.cost_index, hit.cost, hit.record)
            yield from self._after_observation(entry, index)
            return

    def _after_observation(self, entry: CandidateEntry, index: int) -> Iterator[SkylineFacility]:
        if (
            self._stage is _Stage.GROWING
            and self._first_nn_shortcut
            and not self._saw_first_nn[index]
        ):
            self._saw_first_nn[index] = True
            cost = entry.costs[index]
            # The first NN of a cost type cannot be dominated (nothing is
            # cheaper under that cost).  With exact ties another facility at
            # the very same distance could dominate it, so the shortcut is
            # only taken when the expansion frontier has strictly passed it.
            if not entry.reported and self._expansions[index].head_key() > cost:
                entry.reported = True
                yield self._emit(entry)
        if entry.is_pinned:
            yield from self._handle_pinned(entry)
        yield from self._flush_deferred()
        if self._stage is _Stage.GROWING:
            self._maybe_enter_shrinking()
        if self._stage is _Stage.SHRINKING:
            self._deactivate_finished_expansions()

    def _maybe_enter_shrinking(self) -> None:
        """End the growing stage once it is safe to stop admitting new candidates.

        The paper ends growing at the first pinned facility.  With exact cost
        ties a facility whose vector ties the pinned one in *every* dimension
        might not have been encountered yet, so we additionally wait until
        every expansion frontier has strictly passed the costs of some pinned
        facility — at that point any facility never encountered is strictly
        more expensive in all dimensions and therefore dominated.  Without
        ties this condition holds at the very next heap pop, so the behaviour
        matches the paper.
        """
        frontiers = self._frontiers()
        for entry in self._pinned_entries:
            costs = entry.known_costs
            if all(frontier > cost for frontier, cost in zip(frontiers, costs)):
                self._enter_shrinking()
                return

    def _handle_pinned(self, entry: CandidateEntry) -> Iterator[SkylineFacility]:
        self._statistics.facilities_pinned += 1
        self._pinned_entries.append(entry)
        if not entry.reported:
            if self._pool.dominated_by_reported(entry):
                entry.eliminated = True
            elif self._pool.potential_dominators(entry, self._frontiers()):
                self._deferred.append(entry)
            else:
                entry.reported = True
                yield self._emit(entry)
        if entry.reported:
            self._pool.eliminate_dominated(entry)

    def _frontiers(self) -> list[float]:
        return [expansion.head_key() for expansion in self._expansions]

    def _flush_deferred(self) -> Iterator[SkylineFacility]:
        """Retry deferred pinned entries until no further progress is possible."""
        progressed = True
        while progressed and self._deferred:
            progressed = False
            still_deferred: list[CandidateEntry] = []
            frontiers = self._frontiers()
            for entry in self._deferred:
                if entry.eliminated:
                    progressed = True
                    continue
                if self._pool.dominated_by_reported(entry):
                    entry.eliminated = True
                    progressed = True
                    continue
                if self._pool.potential_dominators(entry, frontiers):
                    still_deferred.append(entry)
                    continue
                entry.reported = True
                yield self._emit(entry)
                self._pool.eliminate_dominated(entry)
                progressed = True
            self._deferred = still_deferred

    def _finalize_deferred(self) -> Iterator[SkylineFacility]:
        """Resolve any entries still deferred when the expansions ran dry.

        Once no expansion can advance, every reachable facility's costs are
        final, so a deferred entry is either dominated by a pinned facility
        (eliminate it) or a genuine skyline member (report it).
        """
        yield from self._flush_deferred()
        for entry in self._deferred:
            if entry.eliminated or entry.reported:
                continue
            if self._pool.dominated_by_reported(entry):
                entry.eliminated = True
            else:
                entry.reported = True
                yield self._emit(entry)
        self._deferred = []

    def _enter_shrinking(self) -> None:
        self._stage = _Stage.SHRINKING
        tracked = self._pool.unpinned_tracked()
        # Probe the facility tree once per tracked facility to learn its edge
        # (the paper's shrinking-stage preparation), then switch every
        # expansion to candidate-only mode so facility pages of other edges
        # are no longer read.
        for entry in tracked:
            self._data_layer.facility_edge(entry.facility_id)
        candidate_edges = self._pool.candidate_edges(tracked)
        for expansion in self._expansions:
            expansion.enter_candidate_mode(candidate_edges)
        self._deactivate_finished_expansions()

    def _deactivate_finished_expansions(self) -> None:
        needed = self._deferred_dominator_dims()
        for index, expansion in enumerate(self._expansions):
            if index in needed:
                # A dimension required to resolve a deferred entry must keep
                # (or resume) expanding even if every unresolved entry has it.
                if not expansion.exhausted:
                    self._active[index] = True
                continue
            if self._active[index] and not self._pool.any_unresolved_missing_cost(index):
                self._active[index] = False

    def _deferred_dominator_dims(self) -> set[int]:
        """Cost dimensions still unknown for potential dominators of deferred entries.

        A deferred pinned entry waits on unpinned candidates that might still
        dominate it.  Such a candidate can be *reported* already (via the
        first-NN shortcut) and therefore invisible to
        ``any_unresolved_missing_cost`` — but its missing costs must still be
        expanded, or the deferred entry can never be resolved exactly and
        would be mis-reported at finalisation.  Only exact cost ties ever
        populate ``_deferred``, so this is empty (and free) otherwise.
        """
        pending = [e for e in self._deferred if not e.eliminated and not e.reported]
        if not pending:
            return set()
        frontiers = self._frontiers()
        needed: set[int] = set()
        for entry in pending:
            for dominator in self._pool.potential_dominators(entry, frontiers):
                needed.update(dominator.missing_indices())
        return needed

    def _emit(self, entry: CandidateEntry) -> SkylineFacility:
        facility = SkylineFacility(
            facility_id=entry.facility_id,
            costs=entry.cost_tuple(),
            pinned=entry.is_pinned,
        )
        self._reported.append(facility)
        return facility


def lsa_skyline(
    accessor: GraphAccessor,
    graph: MultiCostGraph,
    query: NetworkLocation,
    *,
    first_nn_shortcut: bool = True,
    probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
) -> SkylineResult:
    """Compute the MCN skyline with the Local Search Algorithm (Section IV-A)."""
    search = MCNSkylineSearch(
        accessor,
        graph,
        query,
        share_accesses=False,
        first_nn_shortcut=first_nn_shortcut,
        probing=probing,
    )
    return search.run()


def cea_skyline(
    accessor: GraphAccessor,
    graph: MultiCostGraph,
    query: NetworkLocation,
    *,
    first_nn_shortcut: bool = True,
    probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
) -> SkylineResult:
    """Compute the MCN skyline with the Combined Expansion Algorithm (Section IV-B)."""
    search = MCNSkylineSearch(
        accessor,
        graph,
        query,
        share_accesses=True,
        first_nn_shortcut=first_nn_shortcut,
        probing=probing,
    )
    return search.run()
