"""Incremental nearest-facility network expansion (the NE primitive).

This is the disk-based adaptation of Dijkstra's algorithm described in
Section II-C of the paper (network expansion, Papadias et al. [1]): starting
from the query location, nodes are de-heaped in increasing network distance
under *one* cost type; whenever a node is expanded, the facilities lying on
its incident edges are also en-heaped, so facilities pop in increasing
distance order — the next nearest facility can be retrieved incrementally.

One :class:`NearestFacilityExpansion` exists per cost type.  LSA runs ``d``
independent expansions over the same accessor; CEA runs the same expansions
through a :class:`~repro.network.accessor.FetchOnceCache`, so each node's
adjacency list and each edge's facility list reach the disk at most once.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from dataclasses import dataclass
from types import MappingProxyType
from typing import NamedTuple

from repro.errors import QueryError
from repro.network.accessor import FacilityRecord, GraphAccessor
from repro.network.facilities import FacilityId
from repro.network.graph import EdgeId, MultiCostGraph, NodeId
from repro.network.location import NetworkLocation

__all__ = ["FacilityHit", "ExpansionSeeds", "NearestFacilityExpansion"]


class FacilityHit(NamedTuple):
    """The next nearest facility returned by an expansion."""

    facility_id: FacilityId
    cost: float
    cost_index: int
    record: FacilityRecord


@dataclass(frozen=True)
class ExpansionSeeds:
    """Where an expansion starts: anchor nodes and the query's own edge.

    ``anchors`` maps the nodes reachable directly from the query location to
    the d-dimensional partial cost of reaching them.  When the query lies in
    the middle of an edge, ``query_edge`` identifies that edge so the
    expansion can also consider the facilities on it via the direct
    along-edge route.
    """

    anchors: tuple[tuple[NodeId, tuple[float, ...]], ...]
    query_edge: EdgeId | None
    query_offset: float
    query_edge_costs: tuple[float, ...] | None
    query_edge_length: float
    directed: bool

    @classmethod
    def from_query(cls, graph: MultiCostGraph, query: NetworkLocation) -> "ExpansionSeeds":
        """Compute the seeds of a query location on ``graph``."""
        query.validate(graph)
        anchors = tuple(
            (node, costs.values) for node, costs in query.anchor_costs(graph)
        )
        if query.edge_id is None:
            return cls(anchors, None, 0.0, None, 0.0, graph.directed)
        edge = graph.edge(query.edge_id)
        return cls(
            anchors,
            query.edge_id,
            query.offset,
            edge.costs.values,
            edge.length,
            graph.directed,
        )


class NearestFacilityExpansion:
    """Incremental nearest-facility search from a query location under one cost type."""

    def __init__(self, accessor: GraphAccessor, seeds: ExpansionSeeds, cost_index: int):
        if not 0 <= cost_index < accessor.num_cost_types:
            raise QueryError(
                f"cost index {cost_index} out of range for a {accessor.num_cost_types}-cost network"
            )
        self._accessor = accessor
        self._seeds = seeds
        self._cost_index = cost_index
        # Heap entries are flat 4-tuples (key, tiebreak, ident, record);
        # ``record`` is None for node entries, so no separate kind field is
        # needed.  The tiebreak is a plain int counter: it makes every entry
        # unique (comparisons never reach ``record``) and resolves equal keys
        # in push order, exactly as the paper's round-robin probing expects.
        self._heap: list[tuple[float, int, int, FacilityRecord | None]] = []
        self._tiebreak = 0
        self._visited_nodes: dict[NodeId, float] = {}
        self._reported: dict[FacilityId, float] = {}
        self._candidate_edges: dict[EdgeId, list[FacilityRecord]] | None = None
        self._allowed_facilities: set[FacilityId] | None = None
        self._heap_pops = 0
        self._facilities_retrieved = 0
        self._seed()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cost_index(self) -> int:
        return self._cost_index

    @property
    def exhausted(self) -> bool:
        """True once the heap is empty — no further facility can be found."""
        return not self._heap

    @property
    def reported_costs(self) -> Mapping[FacilityId, float]:
        """Facilities already returned, with their network distance under this cost.

        A read-only live view (not a copy): harvesting it is O(1) no matter
        how much of the network the expansion visited.
        """
        return MappingProxyType(self._reported)

    @property
    def settled_costs(self) -> Mapping[NodeId, float]:
        """Nodes already expanded, with their settled distance under this cost type.

        A node is settled when it is de-heaped, at which point its distance is
        final (the Dijkstra invariant), so these values can safely be reused
        by later expansions that start from the very same seeds — the hook the
        cross-query cache of :mod:`repro.service` harvests after every query.
        Returned as a read-only live view; callers that need a frozen copy
        (none in-tree do) must copy explicitly.
        """
        return MappingProxyType(self._visited_nodes)

    @property
    def heap_pops(self) -> int:
        return self._heap_pops

    @property
    def facilities_retrieved(self) -> int:
        return self._facilities_retrieved

    def head_key(self) -> float:
        """The key at the head of the expansion heap (``t_i`` in the paper).

        Any facility not yet reported by this expansion has network distance
        at least this value, which is what the top-k lower bounds rely on.
        Returns ``+inf`` when the expansion is exhausted.
        """
        return self._heap[0][0] if self._heap else float("inf")

    # ------------------------------------------------------------------ #
    # Candidate-only mode (shrinking-stage optimisation)
    # ------------------------------------------------------------------ #
    def enter_candidate_mode(self, candidates: dict[EdgeId, list[FacilityRecord]]) -> None:
        """Restrict the expansion to the given candidate facilities.

        After this call the expansion stops reading the facility file for
        traversed edges; it only en-heaps the supplied candidates when their
        edges are reached, and silently discards every other facility already
        sitting in its heap.  This mirrors the shrinking-stage optimisation of
        Section IV-A.
        """
        self._candidate_edges = {edge: list(records) for edge, records in candidates.items()}
        self._allowed_facilities = {
            record.facility_id for records in candidates.values() for record in records
        }
        # Re-seed candidates lying on the query's own edge with their direct
        # along-edge cost.  For candidates that were in the facility set when
        # the expansion was constructed this only adds a harmless duplicate
        # heap entry; for candidates supplied *externally* (the maintenance
        # layer costing a facility before it is inserted) it is required —
        # the path along the query edge may be shorter than any path through
        # the end-nodes, and _seed() could not have known the record.
        if self._seeds.query_edge is not None:
            for record in self._candidate_edges.get(self._seeds.query_edge, []):
                cost = self._direct_cost_on_query_edge(record)
                if cost is not None:
                    self._push_facility(record, cost)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def next_facility(self) -> FacilityHit | None:
        """Retrieve the next nearest facility, or ``None`` when exhausted."""
        while self._heap:
            hit = self.pop_step()
            if hit is not None:
                return hit
        return None

    def pop_step(self) -> FacilityHit | None:
        """Pop and process a single heap element.

        Returns a :class:`FacilityHit` when the popped element is a facility
        that should be reported (not previously reported and, in candidate
        mode, one of the allowed candidates); otherwise returns ``None``.
        The top-k shrinking stage uses this one-pop granularity directly.
        """
        if not self._heap:
            return None
        key, _tie, ident, record = heapq.heappop(self._heap)
        self._heap_pops += 1
        if record is None:
            self._expand_node(ident, key)
            return None
        return self._handle_facility(ident, key, record)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _seed(self) -> None:
        for node, costs in self._seeds.anchors:
            self._push_node(node, costs[self._cost_index])
        if self._seeds.query_edge is not None:
            records = self._accessor.edge_facilities(self._seeds.query_edge)
            for facility in records:
                cost = self._direct_cost_on_query_edge(facility)
                if cost is not None:
                    self._push_facility(facility, cost)

    def _direct_cost_on_query_edge(self, facility: FacilityRecord) -> float | None:
        if self._seeds.query_edge_costs is None:
            return None
        if self._seeds.directed and facility.offset < self._seeds.query_offset:
            return None
        length = self._seeds.query_edge_length
        fraction = abs(facility.offset - self._seeds.query_offset) / length if length else 0.0
        return self._seeds.query_edge_costs[self._cost_index] * fraction

    def _push_node(self, node: NodeId, key: float) -> None:
        # Settled nodes are filtered by the caller (_expand_node) and on pop;
        # a third check here would be pure overhead on the hottest push path.
        self._tiebreak = tie = self._tiebreak + 1
        heapq.heappush(self._heap, (key, tie, node, None))

    def _push_facility(self, record: FacilityRecord, key: float) -> None:
        if record.facility_id in self._reported:
            return
        if self._allowed_facilities is not None and record.facility_id not in self._allowed_facilities:
            return
        self._tiebreak = tie = self._tiebreak + 1
        heapq.heappush(self._heap, (key, tie, record.facility_id, record))

    def _expand_node(self, node: NodeId, distance: float) -> None:
        if node in self._visited_nodes:
            return
        self._visited_nodes[node] = distance
        for entry in self._accessor.adjacency(node):
            edge_cost = entry.costs[self._cost_index]
            if entry.neighbor not in self._visited_nodes:
                self._push_node(entry.neighbor, distance + edge_cost)
            self._enqueue_edge_facilities(node, entry, distance)

    def _enqueue_edge_facilities(self, node: NodeId, entry, distance: float) -> None:
        if self._candidate_edges is not None:
            records = self._candidate_edges.get(entry.edge_id)
            if not records:
                return
        else:
            if entry.facility_count == 0:
                return
            records = self._accessor.edge_facilities(entry.edge_id)
        edge_cost = entry.costs[self._cost_index]
        length = entry.length
        for record in records:
            if length > 0:
                if node == entry.first_node:
                    fraction = record.offset / length
                else:
                    fraction = (length - record.offset) / length
            else:
                fraction = 0.0
            self._push_facility(record, distance + edge_cost * fraction)

    def _handle_facility(
        self, facility_id: FacilityId, key: float, record: FacilityRecord | None
    ) -> FacilityHit | None:
        if facility_id in self._reported:
            return None
        if self._allowed_facilities is not None and facility_id not in self._allowed_facilities:
            return None
        self._reported[facility_id] = key
        self._facilities_retrieved += 1
        return FacilityHit(facility_id, key, self._cost_index, record)
