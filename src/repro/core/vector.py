"""The vectorised expansion kernel and its columnar frontier.

This module is the numpy half of the dual-implementation fast path.  The
selection contract (decided once, at import/resolution time — see
:func:`repro.api.policy.resolve_vector`):

* numpy importable and ``REPRO_VECTOR`` not vetoing → searches run on
  :class:`VectorExpansionKernel` (this module);
* numpy absent, or ``REPRO_VECTOR=0`` → the pure-python
  :class:`~repro.core.kernel.ExpansionKernel` serves as the fallback with
  identical semantics.

Both kernels — and the legacy record-walking
:class:`~repro.core.expansion.NearestFacilityExpansion` — pass the one
shared conformance suite (``tests/expansion_conformance.py``), so the
fallback can never silently diverge from the fast path.

What "vectorised" buys over the already-columnar ``ExpansionKernel``:

* **One flat serving loop.**  The pop/settle/relax cycle is a single loop
  with every hot structure bound once per call, instead of a per-settle
  ``_expand_node`` invocation that re-binds its locals thousands of times
  per query.
* **A columnar frontier.**  :class:`ColumnarFrontier` owns the heap
  representation and provides *batched* sifts: a block of entries is
  appended and re-heapified in one C-level pass when the block is large
  relative to the heap, instead of ``len(block)`` individual sift-ups.
  Pop order is exactly heapq's ``(key, push-order tie)`` order either way —
  the Hypothesis drain-parity suite pins this pop by pop.
* **Charge accounting folded into bulk adds.**  For counter-only charge
  layers (in-memory LSA/CEA) the kernel tallies adjacency/facility requests
  in locals and adds them to the accessor's counters once per public call,
  instead of two layer calls per settle.  Layers with per-request side
  effects (page-plan replay, cross-query caches) keep synchronous charges —
  the request *order* is part of the bit-identity contract for LRU buffers.
* **Batched settled-map flushes.**  Settled nodes accumulate in flat
  columns and are folded into the ``settled_costs`` dict once per call —
  via a zero-copy numpy gather over the dense→real node-id column when the
  batch is large.  Views are exact whenever no kernel method is mid-call,
  which is the only time the searches (and the conformance suite) look.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from types import MappingProxyType

try:  # pragma: no cover - exercised implicitly by the selection layer
    import numpy as _np
except ImportError:  # pragma: no cover - the numpy-less environment
    _np = None

from repro.api.policy import vector_env_default
from repro.core.expansion import ExpansionSeeds, FacilityHit
from repro.core.kernel import ExpansionKernel, KernelDataLayer
from repro.errors import QueryError
from repro.network.accessor import FacilityRecord
from repro.network.facilities import FacilityId
from repro.network.graph import EdgeId, NodeId

__all__ = [
    "NUMPY_AVAILABLE",
    "ColumnarFrontier",
    "VectorExpansionKernel",
    "kernel_class_for",
]

NUMPY_AVAILABLE = _np is not None

#: Settled batches at least this long take the numpy gather path of the
#: flush; shorter batches stay on zip(), whose fixed cost is lower.
_GATHER_THRESHOLD = 1024

# Charge-folding modes, resolved once per kernel from the layer's
# batch_charges() capability (ints: the serving loop compares them per pop).
_GENERIC = 0  # per-request side effects: charge synchronously, like the fallback
_COUNT = 1  # unconditional counters: tally locally, bulk-add at call exit
_COUNT_ONCE = 2  # dedup through shared seen-flags, then tally (CEA)


def kernel_class_for(vector: bool | None = None) -> type:
    """The kernel class the selection layer picks for new searches.

    ``None`` defers to :func:`repro.api.policy.vector_env_default` (numpy
    presence gated by ``REPRO_VECTOR``); an explicit boolean is still capped
    by numpy availability, so this function can never hand out a kernel that
    cannot run.
    """
    if vector is None:
        vector = vector_env_default()
    if vector and _np is not None:
        return VectorExpansionKernel
    return ExpansionKernel


class ColumnarFrontier:
    """A min-frontier with heapq-identical ``(key, push-order)`` semantics.

    The heap holds flat ``(key, tie, payload)`` tuples; ``count`` is the
    monotone push counter whose value *is* the tie-break, so two frontiers
    fed the same pushes pop in exactly the same order — the invariant the
    whole bit-identity story rests on.  :meth:`extend` is the batched sift:
    blocks large relative to the heap are appended and re-heapified in one
    O(n + k) C pass (the resulting internal layout may differ from k
    sift-ups, but the pop order cannot — the comparator is total because
    ties are unique).  The serving loops of :class:`VectorExpansionKernel`
    bind :attr:`heap` directly and write :attr:`count` back on exit; the
    method surface here is the primitive's contract, pinned pop-by-pop
    against raw ``heapq`` by the Hypothesis drain-parity suite.
    """

    __slots__ = ("heap", "count")

    def __init__(self) -> None:
        self.heap: list[tuple] = []
        self.count = 0

    def __len__(self) -> int:
        return len(self.heap)

    def push(self, key: float, payload: object) -> None:
        """Push one entry; its tie-break is the next counter value."""
        self.count = tie = self.count + 1
        heapq.heappush(self.heap, (key, tie, payload))

    def extend(self, keys, payloads) -> None:
        """Push a block of entries in order (the batched heap sift).

        ``keys``/``payloads`` may be any same-length sequences (numpy arrays
        included).  Tie-breaks are assigned in block order, so the result is
        indistinguishable — pop by pop — from pushing the pairs one at a
        time.
        """
        if _np is not None and isinstance(keys, _np.ndarray):
            keys = keys.tolist()
        heap = self.heap
        tie = self.count
        entries = []
        append = entries.append
        for index, key in enumerate(keys):
            tie += 1
            append((key, tie, payloads[index]))
        self.count = tie
        if len(entries) > max(8, len(heap) >> 3):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)

    def pop(self) -> tuple:
        """Pop and return the smallest ``(key, tie, payload)`` entry."""
        return heapq.heappop(self.heap)

    def head_key(self) -> float:
        """The smallest pending key (``inf`` when empty)."""
        heap = self.heap
        return heap[0][0] if heap else float("inf")


class VectorExpansionKernel:
    """Batched incremental nearest-facility expansion over CSR columns.

    A drop-in sibling of :class:`~repro.core.kernel.ExpansionKernel` — same
    constructor, same ``next_facility`` / ``pop_step`` / ``head_key`` /
    ``enter_candidate_mode`` surface, same read-only views, bit-identical
    behaviour — with the serving loop restructured around batching (see the
    module docstring).  Requires numpy only for the large-batch gather path;
    the selection layer never instantiates it when numpy is absent.
    """

    __slots__ = (
        "_layer",
        "_seeds",
        "_cost_index",
        "_node_ids",
        "_node_ids_np",
        "_edge_ids",
        "_indptr",
        "_arc_neighbor",
        "_arc_edge",
        "_arc_cost",
        "_arc_forward",
        "_edge_length",
        "_hot_arcs",
        "_hot_facs",
        "_fac_nodes",
        "_frontier",
        "_settled_flags",
        "_settled",
        "_pending_idx",
        "_pending_keys",
        "_reported",
        "_candidate_edges",
        "_cand_nodes",
        "_allowed",
        "_heap_pops",
        "_facilities_retrieved",
        "_charge_mode",
        "_charge_stats",
        "_seen_nodes",
        "_seen_edges",
    )

    def __init__(self, layer: KernelDataLayer, seeds: ExpansionSeeds, cost_index: int):
        compiled = layer.compiled
        if not 0 <= cost_index < compiled.num_cost_types:
            raise QueryError(
                f"cost index {cost_index} out of range for a "
                f"{compiled.num_cost_types}-cost network"
            )
        self._layer = layer
        self._seeds = seeds
        self._cost_index = cost_index
        self._node_ids = compiled.node_ids
        self._node_ids_np = (
            _np.frombuffer(compiled.node_ids, dtype=_np.int64)
            if _np is not None and len(compiled.node_ids)
            else None
        )
        self._edge_ids = compiled.edge_ids
        self._indptr = compiled.arc_indptr
        self._arc_neighbor = compiled.arc_neighbor
        self._arc_edge = compiled.arc_edge
        self._arc_cost = compiled.arc_costs[cost_index]
        self._arc_forward = compiled.arc_forward
        self._edge_length = compiled.edge_length
        self._hot_arcs = compiled.hot_arcs(cost_index)
        self._hot_facs = compiled.hot_facilities(cost_index)
        self._fac_nodes = compiled.hot_facility_node_flags()
        self._frontier = ColumnarFrontier()
        self._settled_flags = bytearray(compiled.num_nodes)
        self._settled: dict[NodeId, float] = {}
        self._pending_idx: list[int] = []
        self._pending_keys: list[float] = []
        self._reported: dict[FacilityId, float] = {}
        self._candidate_edges: dict[EdgeId, list[FacilityRecord]] | None = None
        self._cand_nodes: set[int] | None = set()
        self._allowed: set[FacilityId] | None = None
        self._heap_pops = 0
        self._facilities_retrieved = 0
        mode, context = layer.batch_charges()
        if mode == "count":
            self._charge_mode = _COUNT
            self._charge_stats = context
            self._seen_nodes = self._seen_edges = None
        elif mode == "count_once":
            self._charge_mode = _COUNT_ONCE
            self._charge_stats, self._seen_nodes, self._seen_edges = context
        else:
            self._charge_mode = _GENERIC
            self._charge_stats = None
            self._seen_nodes = self._seen_edges = None
        self._seed()

    # ------------------------------------------------------------------ #
    # Introspection (mirror of the legacy expansion)
    # ------------------------------------------------------------------ #
    @property
    def cost_index(self) -> int:
        return self._cost_index

    @property
    def exhausted(self) -> bool:
        return not self._frontier.heap

    @property
    def reported_costs(self) -> Mapping[FacilityId, float]:
        """Facilities already returned (read-only live view)."""
        return MappingProxyType(self._reported)

    @property
    def settled_costs(self) -> Mapping[NodeId, float]:
        """Settled node distances keyed by *real* node id (read-only live view)."""
        return MappingProxyType(self._settled)

    @property
    def heap_pops(self) -> int:
        return self._heap_pops

    @property
    def facilities_retrieved(self) -> int:
        return self._facilities_retrieved

    def head_key(self) -> float:
        return self._frontier.head_key()

    # ------------------------------------------------------------------ #
    # Candidate-only mode
    # ------------------------------------------------------------------ #
    def enter_candidate_mode(self, candidates: dict[EdgeId, list[FacilityRecord]]) -> None:
        """Restrict the expansion to the given candidate facilities.

        Semantics identical to the legacy expansion's candidate mode,
        including the re-seeding of candidates on the query's own edge.
        """
        self._candidate_edges = {
            edge: list(records) for edge, records in candidates.items()
        }
        self._allowed = {
            record.facility_id
            for records in candidates.values()
            for record in records
        }
        # Nodes incident to a candidate-bearing edge: every other settle can
        # take a pure arc-relaxation branch with no per-arc candidate probes.
        # Candidate edges absent from the snapshot can never match an arc,
        # so they contribute no incident nodes.  Only worth materialising for
        # small candidate sets (insertion pricing: one or two edges) — a CEA
        # fallback recompute enters with hundreds of edges, where building
        # the set costs more than the probes it saves.
        if len(self._candidate_edges) <= 32:
            compiled = self._layer.compiled
            edge_index = compiled.edge_index
            edge_nodes = compiled._edge_endpoint_nodes()
            incident: set[int] = set()
            for edge_id in self._candidate_edges:
                dense_edge = edge_index.get(edge_id)
                if dense_edge is not None:
                    incident.update(edge_nodes[dense_edge])
            self._cand_nodes = incident
        else:
            self._cand_nodes = None
        seeds = self._seeds
        if seeds.query_edge is not None:
            for record in self._candidate_edges.get(seeds.query_edge, []):
                cost = self._direct_cost_on_query_edge(record.offset)
                if cost is not None:
                    self._push_candidate(record, cost)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def next_facility(self) -> FacilityHit | None:
        """Retrieve the next nearest facility, or ``None`` when exhausted."""
        frontier = self._frontier
        heap = frontier.heap
        pop = heapq.heappop
        push = heapq.heappush
        reported = self._reported
        flags = self._settled_flags
        hot_arcs = self._hot_arcs
        fac_table = self._hot_facs
        fac_nodes = self._fac_nodes
        allowed = self._allowed
        candidate_mode = self._candidate_edges is not None
        mode = self._charge_mode
        counting = mode != _GENERIC
        dedup = mode == _COUNT_ONCE
        if dedup:
            seen_nodes = self._seen_nodes
            seen_edges = self._seen_edges
        if not counting:
            note_adjacency = self._layer.note_adjacency
            note_edge = self._layer.note_edge_facilities
        pending_idx = self._pending_idx
        pending_keys = self._pending_keys
        pend_idx = pending_idx.append
        pend_key = pending_keys.append
        tie = frontier.count
        pops = 0
        n_adj = 0
        n_edge = 0
        try:
            while heap:
                key, _t, payload = pop(heap)
                pops += 1
                if type(payload) is int:
                    if flags[payload]:
                        continue
                    flags[payload] = 1
                    pend_idx(payload)
                    pend_key(key)
                    if counting:
                        if dedup:
                            if not seen_nodes[payload]:
                                seen_nodes[payload] = 1
                                n_adj += 1
                        else:
                            n_adj += 1
                    else:
                        note_adjacency(payload)
                    if candidate_mode:
                        frontier.count = tie
                        self._expand_node_candidates(payload, key)
                        tie = frontier.count
                        continue
                    if not fac_nodes[payload]:
                        # Facility-free settle (the overwhelmingly common
                        # case under sparse facilities): pure arc relaxation,
                        # no facility-table probes.  Push order is identical
                        # — the skipped cells were all empty.
                        for edge_cost, neighbor, _cell in hot_arcs[payload]:
                            if not flags[neighbor]:
                                tie += 1
                                push(heap, (key + edge_cost, tie, neighbor))
                        continue
                    for edge_cost, neighbor, cell in hot_arcs[payload]:
                        if not flags[neighbor]:
                            tie += 1
                            push(heap, (key + edge_cost, tie, neighbor))
                        facs = fac_table[cell]
                        if facs:
                            if counting:
                                if dedup:
                                    edge_idx = cell >> 1
                                    if not seen_edges[edge_idx]:
                                        seen_edges[edge_idx] = 1
                                        n_edge += 1
                                else:
                                    n_edge += 1
                            else:
                                note_edge(cell >> 1)
                            for facility_id, delta, record in facs:
                                if facility_id in reported:
                                    continue
                                tie += 1
                                push(heap, (key + delta, tie, record))
                    continue
                facility_id = payload.facility_id
                if facility_id in reported:
                    continue
                if allowed is not None and facility_id not in allowed:
                    continue
                reported[facility_id] = key
                self._facilities_retrieved += 1
                return FacilityHit(facility_id, key, self._cost_index, payload)
            return None
        finally:
            frontier.count = tie
            self._heap_pops += pops
            if n_adj or n_edge:
                stats = self._charge_stats
                stats.adjacency_requests += n_adj
                stats.facility_requests += n_edge
            if pending_idx:
                self._flush_settled()

    def pop_step(self) -> FacilityHit | None:
        """Pop and process a single heap element (shrinking-stage granularity)."""
        frontier = self._frontier
        heap = frontier.heap
        if not heap:
            return None
        key, _tie, payload = heapq.heappop(heap)
        self._heap_pops += 1
        if type(payload) is int:
            self._settle_one(payload, key)
            return None
        facility_id = payload.facility_id
        if facility_id in self._reported:
            return None
        if self._allowed is not None and facility_id not in self._allowed:
            return None
        self._reported[facility_id] = key
        self._facilities_retrieved += 1
        return FacilityHit(facility_id, key, self._cost_index, payload)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _seed(self) -> None:
        compiled = self._layer.compiled
        cost_index = self._cost_index
        seeds = self._seeds
        anchors = seeds.anchors
        if anchors:
            node_index = compiled.node_index
            self._frontier.extend(
                [costs[cost_index] for _node, costs in anchors],
                [node_index[node] for node, _costs in anchors],
            )
        query_edge = seeds.query_edge
        if query_edge is not None:
            # The legacy expansion reads the query edge's facility list here
            # unconditionally (even when empty); charge the same request.
            self._layer.note_seed_edge(query_edge)
            edge_idx = compiled.edge_index[query_edge]
            for record in compiled.edge_facility_records(edge_idx):
                cost = self._direct_cost_on_query_edge(record.offset)
                if cost is not None:
                    self._push_candidate(record, cost)

    def _direct_cost_on_query_edge(self, offset: float) -> float | None:
        seeds = self._seeds
        if seeds.query_edge_costs is None:
            return None
        if seeds.directed and offset < seeds.query_offset:
            return None
        length = seeds.query_edge_length
        fraction = abs(offset - seeds.query_offset) / length if length else 0.0
        return seeds.query_edge_costs[self._cost_index] * fraction

    def _push_candidate(self, record: FacilityRecord, key: float) -> None:
        if record.facility_id in self._reported:
            return
        if self._allowed is not None and record.facility_id not in self._allowed:
            return
        self._frontier.push(key, record)

    def _charge_adjacency(self, node_idx: int) -> None:
        """One synchronous adjacency charge (the non-batched paths)."""
        mode = self._charge_mode
        if mode == _GENERIC:
            self._layer.note_adjacency(node_idx)
        elif mode == _COUNT:
            self._charge_stats.adjacency_requests += 1
        else:
            if not self._seen_nodes[node_idx]:
                self._seen_nodes[node_idx] = 1
                self._charge_stats.adjacency_requests += 1

    def _charge_edge_facilities(self, edge_idx: int) -> None:
        """One synchronous facility-list charge (the non-batched paths)."""
        mode = self._charge_mode
        if mode == _GENERIC:
            self._layer.note_edge_facilities(edge_idx)
        elif mode == _COUNT:
            self._charge_stats.facility_requests += 1
        else:
            if not self._seen_edges[edge_idx]:
                self._seen_edges[edge_idx] = 1
                self._charge_stats.facility_requests += 1

    def _settle_one(self, node_idx: int, distance: float) -> None:
        """Settle one node outside the batched loop (the ``pop_step`` path)."""
        flags = self._settled_flags
        if flags[node_idx]:
            return
        flags[node_idx] = 1
        self._settled[self._node_ids[node_idx]] = distance
        self._charge_adjacency(node_idx)
        if self._candidate_edges is not None:
            self._expand_node_candidates(node_idx, distance)
            return
        frontier = self._frontier
        heap = frontier.heap
        push = heapq.heappush
        tie = frontier.count
        if not self._fac_nodes[node_idx]:
            for edge_cost, neighbor, _cell in self._hot_arcs[node_idx]:
                if not flags[neighbor]:
                    tie += 1
                    push(heap, (distance + edge_cost, tie, neighbor))
            frontier.count = tie
            return
        reported = self._reported
        fac_table = self._hot_facs
        for edge_cost, neighbor, cell in self._hot_arcs[node_idx]:
            if not flags[neighbor]:
                tie += 1
                push(heap, (distance + edge_cost, tie, neighbor))
            facs = fac_table[cell]
            if facs:
                self._charge_edge_facilities(cell >> 1)
                for facility_id, delta, record in facs:
                    if facility_id in reported:
                        continue
                    tie += 1
                    push(heap, (distance + delta, tie, record))
        frontier.count = tie

    def _expand_node_candidates(self, node_idx: int, distance: float) -> None:
        """Candidate-mode arc walk over the CSR columns (the cold path).

        Candidate records may be external — facilities not present in the
        compiled columns, e.g. a prospective insertion being priced — so
        this path evaluates the legacy per-record arithmetic verbatim
        instead of the precomputed deltas.
        """
        frontier = self._frontier
        heap = frontier.heap
        push = heapq.heappush
        tie = frontier.count
        flags = self._settled_flags
        cand_nodes = self._cand_nodes
        if cand_nodes is not None and node_idx not in cand_nodes:
            # No incident edge carries candidates: relax arcs off the hot
            # rows (same CSR order, so identical pushes) and skip the
            # per-arc candidate probes entirely.
            for edge_cost, neighbor, _cell in self._hot_arcs[node_idx]:
                if not flags[neighbor]:
                    tie += 1
                    push(heap, (distance + edge_cost, tie, neighbor))
            frontier.count = tie
            return
        indptr = self._indptr
        start = indptr[node_idx]
        end = indptr[node_idx + 1]
        neighbors = self._arc_neighbor
        arc_edge = self._arc_edge
        arc_cost = self._arc_cost
        forward = self._arc_forward
        reported = self._reported
        candidates = self._candidate_edges
        allowed = self._allowed
        for arc in range(start, end):
            edge_cost = arc_cost[arc]
            neighbor = neighbors[arc]
            if not flags[neighbor]:
                tie += 1
                push(heap, (distance + edge_cost, tie, neighbor))
            edge_idx = arc_edge[arc]
            records = candidates.get(self._edge_ids[edge_idx])
            if not records:
                continue
            length = self._edge_length[edge_idx]
            is_forward = forward[arc]
            for record in records:
                facility_id = record.facility_id
                if facility_id in reported:
                    continue
                if allowed is not None and facility_id not in allowed:
                    continue
                if length > 0:
                    if is_forward:
                        fraction = record.offset / length
                    else:
                        fraction = (length - record.offset) / length
                else:
                    fraction = 0.0
                tie += 1
                push(heap, (distance + edge_cost * fraction, tie, record))
        frontier.count = tie

    def _flush_settled(self) -> None:
        """Fold the pending settled columns into the settled-costs dict."""
        pending_idx = self._pending_idx
        pending_keys = self._pending_keys
        node_ids_np = self._node_ids_np
        if node_ids_np is not None and len(pending_idx) >= _GATHER_THRESHOLD:
            ids = node_ids_np[_np.array(pending_idx, dtype=_np.intp)].tolist()
            self._settled.update(zip(ids, pending_keys))
        else:
            self._settled.update(
                zip(map(self._node_ids.__getitem__, pending_idx), pending_keys)
            )
        pending_idx.clear()
        pending_keys.clear()
