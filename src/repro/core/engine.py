"""High-level facade: the :class:`MCNQueryEngine`.

The engine bundles a multi-cost graph, its facility set and a data layer
(in-memory or disk-resident), and exposes the paper's query types behind a
small API:

* :meth:`MCNQueryEngine.skyline` / :meth:`iter_skyline` — MCN skyline (LSA,
  CEA or the straightforward baseline), progressive when iterated.
* :meth:`MCNQueryEngine.top_k` — MCN top-k for a known ``k``.
* :meth:`MCNQueryEngine.iter_top` — incremental top-k (``k`` not known in
  advance).
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence

from repro.core.aggregates import AggregateFunction, WeightedSum, check_monotone
from repro.core.baseline import baseline_skyline, baseline_top_k
from repro.core.incremental import IncrementalTopK
from repro.core.results import RankedFacility, SkylineFacility, SkylineResult, TopKResult
from repro.core.skyline import MCNSkylineSearch, ProbingPolicy, cea_skyline, lsa_skyline
from repro.core.topk import cea_top_k, lsa_top_k
from repro.errors import QueryError
from repro.network.accessor import GraphAccessor, InMemoryAccessor
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation
from repro.storage.scheme import NetworkStorage

__all__ = ["MCNQueryEngine"]

_ALGORITHMS = ("cea", "lsa", "baseline")


class MCNQueryEngine:
    """Preference queries (skyline and top-k) over a multi-cost network."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        *,
        storage: NetworkStorage | None = None,
        use_disk: bool = False,
        page_size: int = 4096,
        buffer_fraction: float = 0.01,
    ):
        """Create an engine over ``graph`` and ``facilities``.

        With ``use_disk=True`` (or an explicit ``storage``), queries run
        against the simulated disk-resident storage scheme and report page
        reads; otherwise they run against the in-memory accessor.
        """
        self._graph = graph
        self._facilities = facilities
        if storage is not None:
            self._accessor: GraphAccessor = storage
            self._storage: NetworkStorage | None = storage
        elif use_disk:
            self._storage = NetworkStorage.build(
                graph, facilities, page_size=page_size, buffer_fraction=buffer_fraction
            )
            self._accessor = self._storage
        else:
            self._storage = None
            self._accessor = InMemoryAccessor(graph, facilities)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def facilities(self) -> FacilitySet:
        return self._facilities

    @property
    def accessor(self) -> GraphAccessor:
        """The data layer queries run against."""
        return self._accessor

    @property
    def storage(self) -> NetworkStorage | None:
        """The disk-resident storage, when the engine was built with one."""
        return self._storage

    # ------------------------------------------------------------------ #
    # Skyline
    # ------------------------------------------------------------------ #
    def skyline(
        self,
        query: NetworkLocation,
        *,
        algorithm: str = "cea",
        probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
        first_nn_shortcut: bool = True,
    ) -> SkylineResult:
        """The MCN skyline of ``query``: facilities not dominated under all cost types."""
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            return baseline_skyline(self._accessor, self._graph, query)
        if algorithm == "lsa":
            return lsa_skyline(
                self._accessor,
                self._graph,
                query,
                probing=probing,
                first_nn_shortcut=first_nn_shortcut,
            )
        return cea_skyline(
            self._accessor,
            self._graph,
            query,
            probing=probing,
            first_nn_shortcut=first_nn_shortcut,
        )

    def iter_skyline(
        self,
        query: NetworkLocation,
        *,
        algorithm: str = "cea",
        probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
    ) -> Iterator[SkylineFacility]:
        """Progressively yield skyline facilities as they are confirmed."""
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            raise QueryError("the baseline algorithm is not progressive; use skyline() instead")
        search = MCNSkylineSearch(
            self._accessor,
            self._graph,
            query,
            share_accesses=(algorithm == "cea"),
            probing=probing,
        )
        return iter(search)

    # ------------------------------------------------------------------ #
    # Top-k
    # ------------------------------------------------------------------ #
    def top_k(
        self,
        query: NetworkLocation,
        k: int,
        *,
        aggregate: AggregateFunction | None = None,
        weights: Sequence[float] | None = None,
        algorithm: str = "cea",
    ) -> TopKResult:
        """The ``k`` facilities with the smallest aggregate cost from ``query``."""
        algorithm = self._check_algorithm(algorithm)
        function = self._resolve_aggregate(aggregate, weights)
        if algorithm == "baseline":
            return baseline_top_k(self._accessor, self._graph, query, function, k)
        if algorithm == "lsa":
            return lsa_top_k(self._accessor, self._graph, query, function, k)
        return cea_top_k(self._accessor, self._graph, query, function, k)

    def iter_top(
        self,
        query: NetworkLocation,
        *,
        aggregate: AggregateFunction | None = None,
        weights: Sequence[float] | None = None,
        algorithm: str = "cea",
    ) -> IncrementalTopK:
        """Incremental top-k: an iterator over facilities in increasing aggregate cost."""
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            raise QueryError("the baseline algorithm is not incremental; use top_k() instead")
        function = self._resolve_aggregate(aggregate, weights)
        return IncrementalTopK(
            self._accessor,
            self._graph,
            query,
            function,
            share_accesses=(algorithm == "cea"),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def random_weights(self, rng: random.Random | None = None) -> WeightedSum:
        """A random weighted-sum aggregate matching the graph's cost types (paper's setting)."""
        return WeightedSum.random(self._graph.num_cost_types, rng)

    def _resolve_aggregate(
        self, aggregate: AggregateFunction | None, weights: Sequence[float] | None
    ) -> AggregateFunction:
        if aggregate is not None and weights is not None:
            raise QueryError("pass either an aggregate function or weights, not both")
        if weights is not None:
            return WeightedSum(tuple(float(w) for w in weights))
        if aggregate is None:
            return WeightedSum.uniform(self._graph.num_cost_types)
        if not check_monotone(aggregate, self._graph.num_cost_types):
            raise QueryError("the aggregate cost function must be increasingly monotone")
        return aggregate

    @staticmethod
    def _check_algorithm(algorithm: str) -> str:
        normalized = algorithm.lower()
        if normalized not in _ALGORITHMS:
            raise QueryError(f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}")
        return normalized
