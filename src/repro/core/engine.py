"""High-level facade: the :class:`MCNQueryEngine`.

The engine bundles a multi-cost graph, its facility set and a data layer
(in-memory or disk-resident), and exposes the paper's query types behind a
small API:

* :meth:`MCNQueryEngine.skyline` / :meth:`iter_skyline` — MCN skyline (LSA,
  CEA or the straightforward baseline), progressive when iterated.
* :meth:`MCNQueryEngine.top_k` — MCN top-k for a known ``k``.
* :meth:`MCNQueryEngine.iter_top` — incremental top-k (``k`` not known in
  advance).
* :meth:`MCNQueryEngine.skyline_search` / :meth:`top_k_search` — construct
  the underlying search objects without running them; this is the hook the
  batch :class:`~repro.service.QueryService` uses to inject its cross-query
  expansion cache as the data layer.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence

from repro.api.policy import COMPILED_ENV_VAR, compiled_env_default, vector_env_default
from repro.core.aggregates import (
    AggregateFunction,
    MaxCost,
    WeightedLpNorm,
    WeightedSum,
    check_monotone,
)
from repro.core.baseline import baseline_skyline, baseline_top_k
from repro.core.expansion import ExpansionSeeds
from repro.core.incremental import IncrementalTopK
from repro.core.results import RankedFacility, SkylineFacility, SkylineResult, TopKResult
from repro.core.skyline import MCNSkylineSearch, ProbingPolicy
from repro.core.topk import MCNTopKSearch
from repro.errors import QueryError
from repro.network.accessor import GraphAccessor, InMemoryAccessor
from repro.network.compiled import CompiledGraph
from repro.network.facilities import FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation
from repro.storage.scheme import NetworkStorage

__all__ = ["MCNQueryEngine", "COMPILED_ENV_VAR", "compiled_default_enabled"]

_ALGORITHMS = ("cea", "lsa", "baseline")

# The REPRO_COMPILED environment toggle is parsed in exactly one place —
# repro.api.policy — and consulted here when an engine is built without an
# explicit ``compiled=`` argument.  CI sets it to drive the *entire* test
# suite through the kernel, the strongest differential guarantee we run.
# ``COMPILED_ENV_VAR`` is re-exported for backwards compatibility.


def compiled_default_enabled() -> bool:
    """Whether the fast path is enabled by default (the ``REPRO_COMPILED`` toggle).

    Thin alias of :func:`repro.api.policy.compiled_env_default`, the single
    source of truth for the environment toggle.
    """
    return compiled_env_default()


class MCNQueryEngine:
    """Preference queries (skyline and top-k) over a multi-cost network."""

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        *,
        storage: NetworkStorage | None = None,
        accessor: GraphAccessor | None = None,
        use_disk: bool = False,
        page_size: int = 4096,
        buffer_fraction: float = 0.01,
        compiled: bool | CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        """Create an engine over ``graph`` and ``facilities``.

        With ``use_disk=True`` (or an explicit ``storage``), queries run
        against the simulated disk-resident storage scheme and report page
        reads; otherwise they run against the in-memory accessor.  An
        explicit ``accessor`` (mutually exclusive with ``storage``) makes
        queries run against any :class:`GraphAccessor` — this is how the
        parallel service gives each shard worker an engine over a read-only
        :meth:`~repro.storage.NetworkStorage.snapshot_view` of one shared
        storage instead of a private copy.

        ``compiled`` controls the columnar fast path.  ``True`` compiles the
        engine's data layer into a :class:`~repro.network.compiled.CompiledGraph`
        so LSA/CEA (skyline, top-k, incremental top-k) run on the
        :class:`~repro.core.kernel.ExpansionKernel` — answers and all I/O
        counters stay bit-identical, queries just get faster.  An existing
        :class:`CompiledGraph` is adopted as-is (this is how shard workers
        share one snapshot instead of each re-reading the network).
        ``None`` (the default) consults the ``REPRO_COMPILED`` environment
        toggle; ``False`` disables the fast path outright.

        ``vector`` picks the fast path's kernel implementation: ``True``
        the numpy-vectorised :class:`~repro.core.vector.VectorExpansionKernel`,
        ``False`` the pure-python fallback, ``None`` (default) the
        ``REPRO_VECTOR``/numpy-availability selection — resolved once, here.
        Either kernel is bit-identical to the legacy expansion; the knob
        only matters when the fast path is active.
        """
        self._graph = graph
        self._facilities = facilities
        if storage is not None and accessor is not None:
            raise QueryError("pass either a storage or an accessor, not both")
        if accessor is not None and use_disk:
            raise QueryError("use_disk cannot be combined with an explicit accessor")
        if storage is not None:
            self._accessor: GraphAccessor = storage
            self._storage: NetworkStorage | None = storage
        elif accessor is not None:
            if accessor.num_cost_types != graph.num_cost_types:
                raise QueryError(
                    f"accessor has {accessor.num_cost_types} cost types "
                    f"for a {graph.num_cost_types}-cost graph"
                )
            self._accessor = accessor
            self._storage = accessor if isinstance(accessor, NetworkStorage) else None
        elif use_disk:
            self._storage = NetworkStorage.build(
                graph, facilities, page_size=page_size, buffer_fraction=buffer_fraction
            )
            self._accessor = self._storage
        else:
            self._storage = None
            self._accessor = InMemoryAccessor(graph, facilities)
        self._vector = vector_env_default() if vector is None else bool(vector)
        if compiled is None:
            compiled = compiled_default_enabled()
        if isinstance(compiled, CompiledGraph):
            if compiled.graph is not graph:
                raise QueryError("the compiled graph was built over a different graph")
            if compiled.facilities is not facilities:
                raise QueryError(
                    "the compiled graph was built over a different facility set"
                )
            self._compiled: CompiledGraph | None = compiled
        elif isinstance(compiled, bool):
            self._compiled = (
                CompiledGraph.from_accessor(self._accessor) if compiled else None
            )
        else:
            raise QueryError(
                f"compiled must be a bool, None or a CompiledGraph, "
                f"got {type(compiled).__name__}"
            )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def facilities(self) -> FacilitySet:
        return self._facilities

    @property
    def accessor(self) -> GraphAccessor:
        """The data layer queries run against."""
        return self._accessor

    @property
    def storage(self) -> NetworkStorage | None:
        """The disk-resident storage, when the engine was built with one."""
        return self._storage

    @property
    def compiled_graph(self) -> CompiledGraph | None:
        """The columnar snapshot the fast path runs on (``None`` when disabled)."""
        return self._compiled

    @property
    def vector_enabled(self) -> bool:
        """Whether fast-path searches use the vectorised kernel (resolved once)."""
        return self._vector

    def _search_compiled(self) -> CompiledGraph | None:
        """The snapshot to hand a new search, refreshed against facility mutations."""
        if self._compiled is None:
            return None
        return self._compiled.ensure_fresh()

    # ------------------------------------------------------------------ #
    # Skyline
    # ------------------------------------------------------------------ #
    def skyline(
        self,
        query: NetworkLocation,
        *,
        algorithm: str = "cea",
        probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
        first_nn_shortcut: bool = True,
    ) -> SkylineResult:
        """The MCN skyline of ``query``: facilities not dominated under all cost types.

        Parameters
        ----------
        query:
            The query location (a node or a point along an edge).
        algorithm:
            ``"cea"`` (default, shared fetch-once expansions), ``"lsa"``
            (independent expansions) or ``"baseline"`` (compute every
            facility's full cost vector, then a plain skyline).
        probing:
            Expansion probing policy; round-robin is the paper's choice.
        first_nn_shortcut:
            Report the first nearest facility of every cost type immediately
            (the Section IV-A enhancement).  Ignored by the baseline.

        Returns
        -------
        SkylineResult
            The skyline members in report order, with per-query
            :class:`~repro.core.results.QueryStatistics` attached.

        Example
        -------
        >>> from repro.datagen import WorkloadSpec, make_workload
        >>> w = make_workload(WorkloadSpec(num_nodes=120, num_facilities=40, seed=1))
        >>> engine = MCNQueryEngine(w.graph, w.facilities)
        >>> len(engine.skyline(w.queries[0], algorithm="cea")) >= 1
        True
        """
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            return baseline_skyline(self._accessor, self._graph, query)
        return self.skyline_search(
            query,
            algorithm=algorithm,
            probing=probing,
            first_nn_shortcut=first_nn_shortcut,
        ).run()

    def skyline_search(
        self,
        query: NetworkLocation,
        *,
        algorithm: str = "cea",
        probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
        first_nn_shortcut: bool = True,
        data_layer: GraphAccessor | None = None,
        seeds: ExpansionSeeds | None = None,
    ) -> MCNSkylineSearch:
        """Construct (but do not run) a skyline search over this engine's data.

        This is the hook used by :class:`repro.service.QueryService`: passing
        ``data_layer`` makes the search's expansions read through an external
        accessor (e.g. a cross-query cache shared by a whole batch) while the
        engine's own accessor still provides the I/O counters; ``seeds`` lets
        a caller reuse memoised :class:`ExpansionSeeds` for the location.

        Returns
        -------
        MCNSkylineSearch
            Call :meth:`~repro.core.skyline.MCNSkylineSearch.run` for the
            full skyline or iterate it for progressive results.

        Example
        -------
        >>> search = engine.skyline_search(query, algorithm="lsa")  # doctest: +SKIP
        >>> result = search.run()  # doctest: +SKIP
        """
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            raise QueryError("the baseline algorithm has no search object; use skyline() instead")
        return MCNSkylineSearch(
            self._accessor,
            self._graph,
            query,
            share_accesses=(algorithm == "cea"),
            probing=probing,
            first_nn_shortcut=first_nn_shortcut,
            data_layer=data_layer,
            seeds=seeds,
            compiled=self._search_compiled(),
            vector=self._vector,
        )

    def iter_skyline(
        self,
        query: NetworkLocation,
        *,
        algorithm: str = "cea",
        probing: ProbingPolicy = ProbingPolicy.ROUND_ROBIN,
    ) -> Iterator[SkylineFacility]:
        """Progressively yield skyline facilities as they are confirmed.

        Parameters are as for :meth:`skyline`; the ``baseline`` algorithm is
        rejected because it is not progressive.

        Returns
        -------
        Iterator[SkylineFacility]
            Yields each member as soon as it can no longer be dominated.

        Example
        -------
        >>> first = next(engine.iter_skyline(query))  # doctest: +SKIP
        """
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            raise QueryError("the baseline algorithm is not progressive; use skyline() instead")
        return iter(self.skyline_search(query, algorithm=algorithm, probing=probing))

    # ------------------------------------------------------------------ #
    # Top-k
    # ------------------------------------------------------------------ #
    def top_k(
        self,
        query: NetworkLocation,
        k: int,
        *,
        aggregate: AggregateFunction | None = None,
        weights: Sequence[float] | None = None,
        algorithm: str = "cea",
    ) -> TopKResult:
        """The ``k`` facilities with the smallest aggregate cost from ``query``.

        Parameters
        ----------
        query:
            The query location.
        k:
            Number of facilities to retrieve (``k >= 1``).
        aggregate / weights:
            Either an increasingly monotone aggregate function, or the
            coefficients of a :class:`~repro.core.aggregates.WeightedSum`
            (mutually exclusive).  Defaults to a uniform weighted sum.
        algorithm:
            ``"cea"``, ``"lsa"`` or ``"baseline"`` — as for :meth:`skyline`.

        Returns
        -------
        TopKResult
            Facilities in increasing score order, with statistics attached.

        Example
        -------
        >>> best = engine.top_k(query, k=2, weights=[0.9, 0.1])  # doctest: +SKIP
        >>> [item.facility_id for item in best]  # doctest: +SKIP
        """
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            function = self.resolve_aggregate(aggregate, weights)
            return baseline_top_k(self._accessor, self._graph, query, function, k)
        return self.top_k_search(
            query, k, aggregate=aggregate, weights=weights, algorithm=algorithm
        ).run()

    def top_k_search(
        self,
        query: NetworkLocation,
        k: int,
        *,
        aggregate: AggregateFunction | None = None,
        weights: Sequence[float] | None = None,
        algorithm: str = "cea",
        data_layer: GraphAccessor | None = None,
        seeds: ExpansionSeeds | None = None,
    ) -> MCNTopKSearch:
        """Construct (but do not run) a top-k search over this engine's data.

        The service-layer counterpart of :meth:`skyline_search`: ``data_layer``
        injects an external accessor (e.g. the batch service's cross-query
        cache) and ``seeds`` reuses memoised expansion seeds.

        Returns
        -------
        MCNTopKSearch
            Call :meth:`~repro.core.topk.MCNTopKSearch.run` to execute.

        Example
        -------
        >>> result = engine.top_k_search(query, 3, weights=[0.5, 0.5]).run()  # doctest: +SKIP
        """
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            raise QueryError("the baseline algorithm has no search object; use top_k() instead")
        function = self.resolve_aggregate(aggregate, weights)
        return MCNTopKSearch(
            self._accessor,
            self._graph,
            query,
            function,
            k,
            share_accesses=(algorithm == "cea"),
            data_layer=data_layer,
            seeds=seeds,
            compiled=self._search_compiled(),
            vector=self._vector,
        )

    def iter_top(
        self,
        query: NetworkLocation,
        *,
        aggregate: AggregateFunction | None = None,
        weights: Sequence[float] | None = None,
        algorithm: str = "cea",
    ) -> IncrementalTopK:
        """Incremental top-k: an iterator over facilities in increasing aggregate cost.

        Parameters are as for :meth:`top_k`, except no ``k`` is fixed — keep
        pulling from the returned iterator until satisfied.  The ``baseline``
        algorithm is rejected because it is not incremental.

        Returns
        -------
        IncrementalTopK
            An iterator of :class:`~repro.core.results.RankedFacility`.

        Example
        -------
        >>> stream = engine.iter_top(query, weights=[0.5, 0.5])  # doctest: +SKIP
        >>> next(stream)  # doctest: +SKIP
        """
        algorithm = self._check_algorithm(algorithm)
        if algorithm == "baseline":
            raise QueryError("the baseline algorithm is not incremental; use top_k() instead")
        function = self.resolve_aggregate(aggregate, weights)
        return IncrementalTopK(
            self._accessor,
            self._graph,
            query,
            function,
            share_accesses=(algorithm == "cea"),
            compiled=self._search_compiled(),
            vector=self._vector,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def random_weights(self, rng: random.Random | None = None) -> WeightedSum:
        """A random weighted-sum aggregate matching the graph's cost types (paper's setting)."""
        return WeightedSum.random(self._graph.num_cost_types, rng)

    def resolve_aggregate(
        self, aggregate: AggregateFunction | None, weights: Sequence[float] | None
    ) -> AggregateFunction:
        """The validated aggregate function implied by ``(aggregate, weights)``.

        Exactly one of the two may be given (neither → uniform weighted sum).
        Weight tuples must match the graph's number of cost types; the
        built-in aggregates are accepted as-is after an arity check, while
        arbitrary callables are probed with :func:`check_monotone`.  Raises
        :class:`QueryError` on any violation — the batch service calls this
        at submission time so a bad request can never abort a running batch.
        """
        if aggregate is not None and weights is not None:
            raise QueryError("pass either an aggregate function or weights, not both")
        dimensions = self._graph.num_cost_types
        if weights is not None:
            if len(weights) != dimensions:
                raise QueryError(
                    f"got {len(weights)} weights for a {dimensions}-cost network"
                )
            return WeightedSum(tuple(float(w) for w in weights))
        if aggregate is None:
            return WeightedSum.uniform(dimensions)
        if isinstance(aggregate, (WeightedSum, WeightedLpNorm, MaxCost)):
            # Known monotone by construction; only the arity can be wrong.
            if len(aggregate.weights) != dimensions:
                raise QueryError(
                    f"aggregate has {len(aggregate.weights)} weights "
                    f"for a {dimensions}-cost network"
                )
            return aggregate
        if not check_monotone(aggregate, dimensions):
            raise QueryError("the aggregate cost function must be increasingly monotone")
        return aggregate

    @staticmethod
    def _check_algorithm(algorithm: str) -> str:
        normalized = algorithm.lower()
        if normalized not in _ALGORITHMS:
            raise QueryError(f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}")
        return normalized
