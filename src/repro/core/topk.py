"""MCN top-k processing (Section V, known ``k``).

The search reuses the growing/shrinking framework of the skyline algorithms:

* **Growing** — expansions are probed in round-robin order until ``k``
  facilities are pinned.  Every encountered facility is a candidate; every
  pinned facility enters the tentative top-k set.  Once ``k`` facilities are
  pinned, any facility not yet encountered is dominated by all of them and
  therefore cannot have a smaller aggregate cost under any increasingly
  monotone function.
* **Shrinking** — expansions advance one heap pop at a time (candidate-only
  mode, no new facilities are admitted).  A candidate that gets pinned
  replaces the current k-th best facility if its aggregate cost is smaller;
  candidates whose aggregate-cost *lower bound* (unknown costs replaced by
  the expansion frontiers ``t_i``) already reaches the k-th best score are
  eliminated without being pinned.

Like the skyline algorithms, the search runs over either independent
expansions (LSA flavour) or a shared fetch-once cache (CEA flavour).
"""

from __future__ import annotations

import time

from repro.core.aggregates import AggregateFunction
from repro.core.candidates import CandidateEntry, CandidatePool
from repro.core.expansion import ExpansionSeeds, NearestFacilityExpansion
from repro.core.kernel import make_kernel_data_layer
from repro.core.results import QueryStatistics, RankedFacility, TopKResult
from repro.core.vector import kernel_class_for
from repro.errors import QueryError
from repro.network.accessor import FetchOnceCache, GraphAccessor
from repro.network.compiled import CompiledGraph
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation

__all__ = ["MCNTopKSearch", "lsa_top_k", "cea_top_k"]


class MCNTopKSearch:
    """Top-k search over a multi-cost network for a known ``k``."""

    def __init__(
        self,
        accessor: GraphAccessor,
        graph: MultiCostGraph,
        query: NetworkLocation,
        aggregate: AggregateFunction,
        k: int,
        *,
        share_accesses: bool = False,
        data_layer: GraphAccessor | None = None,
        seeds: ExpansionSeeds | None = None,
        compiled: CompiledGraph | None = None,
        vector: bool | None = None,
    ):
        if k < 1:
            raise QueryError("k must be a positive integer")
        if graph.num_cost_types != accessor.num_cost_types:
            raise QueryError("graph and accessor disagree on the number of cost types")
        self._graph = graph
        self._query = query
        self._aggregate = aggregate
        self._k = k
        self._base_accessor = accessor
        if seeds is None:
            seeds = ExpansionSeeds.from_query(graph, query)
        if compiled is not None:
            layer = make_kernel_data_layer(
                compiled, target=accessor, external=data_layer, fetch_once=share_accesses
            )
            kernel_class = kernel_class_for(vector)
            self._expansions = [
                kernel_class(layer, seeds, index)
                for index in range(accessor.num_cost_types)
            ]
            self._data_layer = layer
        else:
            if data_layer is None:
                data_layer = FetchOnceCache(accessor) if share_accesses else accessor
            self._data_layer = data_layer
            self._expansions = [
                NearestFacilityExpansion(self._data_layer, seeds, index)
                for index in range(accessor.num_cost_types)
            ]
        self._pool = CandidatePool(accessor.num_cost_types)
        self._statistics = QueryStatistics()
        # Tentative result: facility id -> RankedFacility.
        self._top: dict[int, RankedFacility] = {}

    @property
    def statistics(self) -> QueryStatistics:
        return self._statistics

    @property
    def expansions(self) -> tuple[NearestFacilityExpansion, ...]:
        """The per-cost-type expansions, exposing reusable state (settle costs)."""
        return tuple(self._expansions)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self) -> TopKResult:
        """Execute the query and return the k facilities with smallest aggregate cost."""
        start = time.perf_counter()
        io_before = self._base_accessor.statistics.snapshot()
        self._growing_stage()
        self._shrinking_stage()
        ranked = sorted(self._top.values(), key=lambda item: (item.score, item.facility_id))
        ranked = ranked[: self._k]
        self._statistics.elapsed_seconds = time.perf_counter() - start
        self._statistics.io = self._base_accessor.statistics.since(io_before)
        self._statistics.dominance_checks = self._pool.dominance_checks
        self._statistics.candidates_considered = len(self._pool)
        self._statistics.heap_pops = sum(exp.heap_pops for exp in self._expansions)
        return TopKResult(facilities=ranked, statistics=self._statistics)

    # ------------------------------------------------------------------ #
    # Growing
    # ------------------------------------------------------------------ #
    def _growing_stage(self) -> None:
        pinned = 0
        while pinned < self._k:
            index = self._next_round_robin_expansion()
            if index is None:
                break  # fewer than k facilities exist; everything reachable is pinned
            hit = self._expansions[index].next_facility()
            if hit is None:
                continue
            self._statistics.nn_retrievals += 1
            entry = self._pool.observe(hit.facility_id, hit.cost_index, hit.cost, hit.record)
            if entry.is_pinned and entry.facility_id not in self._top:
                self._statistics.facilities_pinned += 1
                self._admit(entry)
                pinned += 1

    def _next_round_robin_expansion(self) -> int | None:
        active = [index for index, exp in enumerate(self._expansions) if not exp.exhausted]
        if not active:
            return None
        return min(active, key=lambda i: (self._expansions[i].facilities_retrieved, i))

    # ------------------------------------------------------------------ #
    # Shrinking
    # ------------------------------------------------------------------ #
    def _shrinking_stage(self) -> None:
        candidates = self._pool.unpinned_tracked()
        for entry in candidates:
            entry_id = entry.facility_id
            self._data_layer.facility_edge(entry_id)
        candidate_edges = self._pool.candidate_edges(candidates)
        for expansion in self._expansions:
            expansion.enter_candidate_mode(candidate_edges)
        active = [not expansion.exhausted for expansion in self._expansions]
        # The pool cannot gain entries during shrinking (candidate mode only
        # re-reports facilities already tracked), so the open set is filtered
        # incrementally instead of rescanning the whole pool per iteration —
        # membership at every decision point is identical to a fresh scan.
        open_candidates = self._open_candidates()
        while open_candidates:
            self._deactivate(active, open_candidates)
            if not any(active):
                break
            for index, expansion in enumerate(self._expansions):
                if not active[index]:
                    continue
                hit = expansion.pop_step()
                if hit is None:
                    if expansion.exhausted:
                        active[index] = False
                    continue
                self._statistics.nn_retrievals += 1
                entry = self._pool.observe(hit.facility_id, hit.cost_index, hit.cost, hit.record)
                if entry.is_pinned and not entry.eliminated:
                    self._statistics.facilities_pinned += 1
                    self._resolve_pinned_candidate(entry)
            open_candidates = [
                entry
                for entry in open_candidates
                if not entry.eliminated and not entry.is_pinned
            ]
            self._apply_lower_bound_pruning(open_candidates)
            open_candidates = [
                entry for entry in open_candidates if not entry.eliminated
            ]

    def _open_candidates(self) -> list[CandidateEntry]:
        return [
            entry
            for entry in self._pool.entries()
            if not entry.eliminated and not entry.is_pinned
        ]

    def _deactivate(self, active: list[bool], open_candidates: list[CandidateEntry]) -> None:
        for index in range(len(self._expansions)):
            if not active[index]:
                continue
            if self._expansions[index].exhausted:
                active[index] = False
                continue
            if not any(entry.costs[index] is None for entry in open_candidates):
                active[index] = False

    def _kth_score(self) -> float:
        if len(self._top) < self._k:
            return float("inf")
        return max(item.score for item in self._top.values())

    def _admit(self, entry: CandidateEntry) -> None:
        """Place a pinned facility into the tentative top-k, evicting the worst if full."""
        costs = entry.known_costs
        score = self._aggregate(costs)
        ranked = RankedFacility(entry.facility_id, costs, score)
        if len(self._top) < self._k:
            self._top[entry.facility_id] = ranked
            return
        worst_id = max(self._top, key=lambda fid: (self._top[fid].score, fid))
        if score < self._top[worst_id].score:
            evicted = self._top.pop(worst_id)
            self._pool.entry(evicted.facility_id).eliminated = True
            self._top[entry.facility_id] = ranked
        else:
            entry.eliminated = True

    def _resolve_pinned_candidate(self, entry: CandidateEntry) -> None:
        self._admit(entry)

    def _apply_lower_bound_pruning(self, open_candidates: list[CandidateEntry]) -> None:
        threshold = self._kth_score()
        if threshold == float("inf"):
            return
        frontiers = [expansion.head_key() for expansion in self._expansions]
        for entry in open_candidates:
            bound_vector = [
                value if value is not None else frontiers[index]
                for index, value in enumerate(entry.costs)
            ]
            if any(value == float("inf") for value in bound_vector):
                # An exhausted expansion can never report this candidate; it is unreachable
                # under that cost type and therefore cannot beat any pinned facility.
                entry.eliminated = True
                continue
            if self._aggregate(bound_vector) >= threshold:
                entry.eliminated = True


def lsa_top_k(
    accessor: GraphAccessor,
    graph: MultiCostGraph,
    query: NetworkLocation,
    aggregate: AggregateFunction,
    k: int,
) -> TopKResult:
    """Top-k query processed with independent expansions (LSA flavour)."""
    return MCNTopKSearch(accessor, graph, query, aggregate, k, share_accesses=False).run()


def cea_top_k(
    accessor: GraphAccessor,
    graph: MultiCostGraph,
    query: NetworkLocation,
    aggregate: AggregateFunction,
    k: int,
) -> TopKResult:
    """Top-k query processed with shared (fetch-once) expansions (CEA flavour)."""
    return MCNTopKSearch(accessor, graph, query, aggregate, k, share_accesses=True).run()
