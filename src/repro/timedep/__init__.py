"""Time-dependent extension: edge costs as functions of time (paper's future work)."""

from repro.timedep.network import TimeVaryingMCN, rebind_facilities
from repro.timedep.profiles import (
    ConstantProfile,
    CostProfile,
    PiecewiseLinearProfile,
    peak_profile,
)
from repro.timedep.queries import (
    StableInterval,
    TimedResult,
    skyline_over_period,
    stable_intervals,
    top_k_over_period,
)

__all__ = [
    "ConstantProfile",
    "CostProfile",
    "PiecewiseLinearProfile",
    "StableInterval",
    "TimeVaryingMCN",
    "TimedResult",
    "peak_profile",
    "rebind_facilities",
    "skyline_over_period",
    "stable_intervals",
    "top_k_over_period",
]
