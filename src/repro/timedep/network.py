"""Time-varying multi-cost networks: per-edge, per-cost-type profiles."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import GraphError
from repro.network.costs import CostVector
from repro.network.facilities import Facility, FacilitySet
from repro.network.graph import EdgeId, MultiCostGraph
from repro.timedep.profiles import ConstantProfile, CostProfile

__all__ = ["TimeVaryingMCN", "rebind_facilities"]


class TimeVaryingMCN:
    """A multi-cost network whose edge costs vary with time.

    The network is a static :class:`MultiCostGraph` (the *base* costs, e.g.
    free-flow travel times) plus, for any edge and cost type, an optional
    :class:`~repro.timedep.profiles.CostProfile` multiplier.  The key
    operation is :meth:`snapshot`, which materialises the ordinary static MCN
    valid at one time instant; all of the paper's (static) machinery then
    applies to the snapshot.
    """

    def __init__(
        self,
        base_graph: MultiCostGraph,
        profiles: Mapping[EdgeId, Sequence[CostProfile | None]] | None = None,
    ):
        self._base = base_graph
        self._profiles: dict[EdgeId, list[CostProfile]] = {}
        default = ConstantProfile(1.0)
        for edge_id, edge_profiles in (profiles or {}).items():
            if not base_graph.has_edge(edge_id):
                raise GraphError(f"unknown edge {edge_id} in profile map")
            if len(edge_profiles) != base_graph.num_cost_types:
                raise GraphError(
                    f"edge {edge_id} needs {base_graph.num_cost_types} profiles, "
                    f"got {len(edge_profiles)}"
                )
            self._profiles[edge_id] = [
                profile if profile is not None else default for profile in edge_profiles
            ]

    @property
    def base_graph(self) -> MultiCostGraph:
        return self._base

    @property
    def num_cost_types(self) -> int:
        return self._base.num_cost_types

    def set_profile(self, edge_id: EdgeId, cost_index: int, profile: CostProfile) -> None:
        """Attach (or replace) the profile of one edge cost."""
        if not self._base.has_edge(edge_id):
            raise GraphError(f"unknown edge {edge_id}")
        if not 0 <= cost_index < self._base.num_cost_types:
            raise GraphError(f"cost index {cost_index} out of range")
        entry = self._profiles.setdefault(
            edge_id, [ConstantProfile(1.0)] * self._base.num_cost_types
        )
        entry = list(entry)
        entry[cost_index] = profile
        self._profiles[edge_id] = entry

    def cost_at(self, edge_id: EdgeId, time: float) -> CostVector:
        """The cost vector of one edge at the given time instant."""
        edge = self._base.edge(edge_id)
        profiles = self._profiles.get(edge_id)
        if profiles is None:
            return edge.costs
        return CostVector(
            base * profile.value_at(time) for base, profile in zip(edge.costs, profiles)
        )

    def snapshot(self, time: float) -> MultiCostGraph:
        """The static MCN whose edge costs are the time-varying costs at ``time``."""
        snapshot = MultiCostGraph(self._base.num_cost_types, directed=self._base.directed)
        for node in self._base.nodes():
            snapshot.add_node(node.node_id, node.x, node.y)
        for edge in self._base.edges():
            snapshot.add_edge(
                edge.u,
                edge.v,
                self.cost_at(edge.edge_id, time),
                length=edge.length,
                edge_id=edge.edge_id,
            )
        return snapshot


def rebind_facilities(snapshot: MultiCostGraph, facilities: FacilitySet) -> FacilitySet:
    """Bind an existing facility placement to a snapshot of the same network.

    Snapshots preserve edge identifiers and lengths, so the placement carries
    over unchanged; only the owning graph object differs.
    """
    rebound = FacilitySet(snapshot)
    for facility in facilities:
        rebound.add(Facility(facility.facility_id, facility.edge_id, facility.offset, facility.attributes))
    return rebound
