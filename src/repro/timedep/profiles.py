"""Time-dependent cost profiles.

The paper's final future-work item is preference queries in MCNs "where the
costs of the edges are functions of time".  A profile maps a time instant to
a non-negative multiplier applied to an edge's base cost — e.g. a driving
time that doubles during the morning peak — and is the building block of the
time-varying network in :mod:`repro.timedep.network`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import GraphError

__all__ = ["CostProfile", "ConstantProfile", "PiecewiseLinearProfile", "peak_profile"]


class CostProfile:
    """Interface: a non-negative multiplier as a function of time."""

    def value_at(self, time: float) -> float:  # pragma: no cover - interface only
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantProfile(CostProfile):
    """A time-independent multiplier (the degenerate, static case)."""

    multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.multiplier < 0:
            raise GraphError("cost multipliers must be non-negative")

    def value_at(self, time: float) -> float:
        return self.multiplier


class PiecewiseLinearProfile(CostProfile):
    """A multiplier defined by ``(time, value)`` breakpoints, linearly interpolated.

    Outside the breakpoint range the profile is clamped to the first/last
    value, so a profile defined over one day can be queried at any instant.
    """

    def __init__(self, breakpoints: Sequence[tuple[float, float]]):
        if not breakpoints:
            raise GraphError("a piecewise-linear profile needs at least one breakpoint")
        ordered = sorted((float(t), float(v)) for t, v in breakpoints)
        times = [t for t, _v in ordered]
        if len(set(times)) != len(times):
            raise GraphError("breakpoint times must be distinct")
        if any(v < 0 for _t, v in ordered):
            raise GraphError("cost multipliers must be non-negative")
        self._times = times
        self._values = [v for _t, v in ordered]

    @property
    def breakpoints(self) -> list[tuple[float, float]]:
        return list(zip(self._times, self._values))

    def value_at(self, time: float) -> float:
        times, values = self._times, self._values
        if time <= times[0]:
            return values[0]
        if time >= times[-1]:
            return values[-1]
        index = bisect.bisect_right(times, time)
        left_t, right_t = times[index - 1], times[index]
        left_v, right_v = values[index - 1], values[index]
        fraction = (time - left_t) / (right_t - left_t)
        return left_v + fraction * (right_v - left_v)


def peak_profile(
    *,
    peak_time: float,
    peak_multiplier: float,
    base_multiplier: float = 1.0,
    width: float = 2.0,
) -> PiecewiseLinearProfile:
    """A convenience rush-hour profile: a triangular peak around ``peak_time``."""
    if width <= 0:
        raise GraphError("the peak width must be positive")
    return PiecewiseLinearProfile(
        [
            (peak_time - width, base_multiplier),
            (peak_time, peak_multiplier),
            (peak_time + width, base_multiplier),
        ]
    )
