"""Preference queries over a period of time on a time-varying MCN.

The paper's future-work sketch asks for "preferred (i.e., skyline or top-k)
facilities for every time instance within a given period".  This module
implements the sampled version of that query: the period is evaluated at a
given sequence of time instants (e.g. every 15 minutes of a day), each
instant is answered on the corresponding static snapshot with CEA, and the
results are reported both per instant and as *stable intervals* — maximal
runs of consecutive instants over which the answer does not change.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.aggregates import AggregateFunction
from repro.core.skyline import MCNSkylineSearch
from repro.core.topk import MCNTopKSearch
from repro.errors import QueryError
from repro.network.accessor import InMemoryAccessor
from repro.network.facilities import FacilityId, FacilitySet
from repro.network.location import NetworkLocation
from repro.timedep.network import TimeVaryingMCN, rebind_facilities

__all__ = [
    "TimedResult",
    "StableInterval",
    "skyline_over_period",
    "top_k_over_period",
    "stable_intervals",
]


@dataclass(frozen=True)
class TimedResult:
    """The query answer at one sampled time instant."""

    time: float
    facility_ids: tuple[FacilityId, ...]


@dataclass(frozen=True)
class StableInterval:
    """A maximal run of sampled instants sharing the same answer."""

    start: float
    end: float
    facility_ids: tuple[FacilityId, ...]


def _check_times(times: Sequence[float]) -> list[float]:
    if not times:
        raise QueryError("at least one time instant is required")
    ordered = list(times)
    if ordered != sorted(ordered):
        raise QueryError("time instants must be given in increasing order")
    return ordered


def skyline_over_period(
    network: TimeVaryingMCN,
    facilities: FacilitySet,
    query: NetworkLocation,
    times: Sequence[float],
) -> list[TimedResult]:
    """The MCN skyline at every sampled instant of the period."""
    results = []
    for time in _check_times(times):
        snapshot = network.snapshot(time)
        snapshot_facilities = rebind_facilities(snapshot, facilities)
        accessor = InMemoryAccessor(snapshot, snapshot_facilities)
        skyline = MCNSkylineSearch(accessor, snapshot, query, share_accesses=True).run()
        results.append(TimedResult(time, tuple(sorted(skyline.facility_ids()))))
    return results


def top_k_over_period(
    network: TimeVaryingMCN,
    facilities: FacilitySet,
    query: NetworkLocation,
    aggregate: AggregateFunction,
    k: int,
    times: Sequence[float],
) -> list[TimedResult]:
    """The MCN top-k at every sampled instant of the period (rank order preserved)."""
    results = []
    for time in _check_times(times):
        snapshot = network.snapshot(time)
        snapshot_facilities = rebind_facilities(snapshot, facilities)
        accessor = InMemoryAccessor(snapshot, snapshot_facilities)
        top = MCNTopKSearch(accessor, snapshot, query, aggregate, k, share_accesses=True).run()
        results.append(TimedResult(time, tuple(top.facility_ids())))
    return results


def stable_intervals(results: Sequence[TimedResult]) -> list[StableInterval]:
    """Group consecutive sampled instants whose answers are identical."""
    if not results:
        return []
    intervals: list[StableInterval] = []
    start = results[0].time
    current = results[0].facility_ids
    end = results[0].time
    for result in results[1:]:
        if result.facility_ids == current:
            end = result.time
            continue
        intervals.append(StableInterval(start, end, current))
        start = result.time
        end = result.time
        current = result.facility_ids
    intervals.append(StableInterval(start, end, current))
    return intervals
