"""Continuous monitoring over facility-update streams.

The paper's Section VII names incremental maintenance under facility and
query updates as the key open extension; :mod:`repro.core.maintenance`
implements the per-query maintainers, and this package turns them into a
*service*: :class:`MonitoringService` registers long-lived skyline / top-k
subscriptions, consumes an :class:`UpdateStream` of facility inserts,
deletes, query relocations and edge cost re-profilings one
:class:`UpdateTick` at a time, routes every update through the cheap
incremental maintenance paths, falls back to one batched — optionally
sharded — CEA pass per tick for the hard cases, and emits a
:class:`DeltaReport` per subscription per tick.
"""

from repro.monitor.service import (
    DeltaReport,
    MonitoringService,
    TickReport,
    delta_report_to_payload,
    tick_report_to_payload,
)
from repro.monitor.stream import (
    EdgeCostUpdate,
    FacilityDelete,
    FacilityInsert,
    FacilityUpdate,
    QueryRelocation,
    UpdateStream,
    UpdateTick,
    stream_from_payload,
    stream_to_payload,
    tick_from_payload,
    tick_to_payload,
    update_from_payload,
    update_to_payload,
)

__all__ = [
    "DeltaReport",
    "EdgeCostUpdate",
    "FacilityDelete",
    "FacilityInsert",
    "FacilityUpdate",
    "MonitoringService",
    "QueryRelocation",
    "TickReport",
    "UpdateStream",
    "UpdateTick",
    "delta_report_to_payload",
    "stream_from_payload",
    "stream_to_payload",
    "tick_from_payload",
    "tick_to_payload",
    "tick_report_to_payload",
    "update_from_payload",
    "update_to_payload",
]
