"""The continuous monitoring service: long-lived subscriptions over update streams.

:class:`MonitoringService` is the streaming counterpart of the batch
:class:`~repro.service.QueryService`.  Instead of answering one-shot
batches over a frozen facility set, it registers long-lived
:class:`~repro.service.SkylineRequest` / :class:`~repro.service.TopKRequest`
*subscriptions* and consumes an update stream (see
:mod:`repro.monitor.stream`) one tick at a time:

* every update is routed through the **cheap incremental paths** of the
  per-subscription :class:`~repro.core.maintenance.SkylineMaintainer` /
  :class:`~repro.core.maintenance.TopKMaintainer` — insertions patch the
  cached result after one early-terminating expansion per cost type, and
  deletions of non-members are free;
* the **hard cases** (deletion of a result member, query relocation) are
  deferred and resolved by one batched CEA pass at the end of the tick,
  executed through a :class:`~repro.service.QueryService` over the live
  facility set — and, when a :class:`~repro.parallel.ParallelExecution` is
  configured and enough subscriptions went stale, sharded across workers via
  :mod:`repro.parallel`;
* each tick emits one :class:`DeltaReport` per subscription (facilities that
  entered, left or were rescored) plus the tick's maintenance-path counters,
  bundled into a :class:`TickReport`.

A tick is validated **in full before anything is applied** — unknown
facility ids, duplicate inserts, bad placements, facilities unreachable
from a subscription's query and relocations of unregistered subscriptions
are all rejected up front, mirroring the batch service's submit-time
request validation, so a bad tick can never leave the shared facility set
(or any subscription) half-updated.

All subscriptions share one :class:`~repro.network.facilities.FacilitySet`
and one :class:`~repro.network.accessor.InMemoryAccessor`; the set is
mutated exactly once per update and every maintainer is notified through
the non-mutating ``note_*`` hooks.

Example
-------
>>> from repro import MonitoringService, SkylineRequest
>>> from repro.monitor import FacilityInsert, UpdateTick
>>> from repro.datagen import WorkloadSpec, make_workload
>>> w = make_workload(WorkloadSpec(num_nodes=150, num_facilities=60, num_queries=1, seed=5))
>>> service = MonitoringService(w.graph, w.facilities)
>>> sid = service.subscribe(SkylineRequest(w.queries[0]))
>>> edge = next(iter(w.graph.edges()))
>>> report = service.apply_tick(UpdateTick((FacilityInsert(9999, edge.edge_id, 0.0),)))
>>> len(report.deltas)
1
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.api.policy import DEFAULT_POLICY, ExecutionPolicy, legacy_kwargs_warning
from repro.core.engine import MCNQueryEngine
from repro.core.maintenance import MaintenanceStatistics, SkylineMaintainer, TopKMaintainer
from repro.errors import FacilityError, GraphError, PolicyError, QueryError
from repro.network.accessor import AccessStatistics
from repro.network.costs import CostVector
from repro.network.facilities import Facility, FacilityId, FacilitySet
from repro.network.graph import MultiCostGraph
from repro.parallel import ParallelExecution
from repro.service import QueryService, SkylineRequest, TopKRequest
from repro.service.requests import QueryRequest
from repro.service.service import validate_request
from repro.monitor.stream import (
    EdgeCostUpdate,
    FacilityDelete,
    FacilityInsert,
    QueryRelocation,
    UpdateStream,
    UpdateTick,
)

__all__ = [
    "DeltaReport",
    "TickReport",
    "MonitoringService",
    "delta_report_to_payload",
    "tick_report_to_payload",
]

_ROUND = 9  # decimal places when comparing scores/vectors across ticks


@dataclass(frozen=True)
class DeltaReport:
    """What one tick changed in one subscription's result.

    ``entered`` / ``left`` are facility-membership changes; ``rescored``
    are facilities present before *and* after whose cost vector (skyline)
    or aggregate score (top-k) changed — which only happens when the
    subscription's query relocated.  ``size`` is the result's cardinality
    after the tick.
    """

    subscription_id: int
    kind: str  # "skyline" or "topk"
    entered: tuple[FacilityId, ...]
    left: tuple[FacilityId, ...]
    rescored: tuple[FacilityId, ...]
    size: int

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.left or self.rescored)


@dataclass
class TickReport:
    """One applied tick: per-subscription deltas plus maintenance accounting.

    ``counters`` holds the tick's :class:`MaintenanceStatistics` delta summed
    over every subscription — ``incremental_updates`` versus
    ``recomputations`` is the incremental-vs-fallback split the maintenance
    extension exists to maximise.  ``fallback_subscriptions`` lists the
    subscriptions that needed the end-of-tick CEA pass; ``sharded`` tells
    whether that pass ran through the parallel sharded service.  ``io`` is
    the tick's logical accessor-request delta (shared accessor plus, for a
    sharded fallback, the summed per-worker snapshot counters).
    """

    index: int
    updates: int
    deltas: list[DeltaReport] = field(default_factory=list)
    counters: MaintenanceStatistics = field(default_factory=MaintenanceStatistics)
    fallback_subscriptions: tuple[int, ...] = ()
    sharded: bool = False
    elapsed_seconds: float = 0.0
    io: AccessStatistics = field(default_factory=AccessStatistics)

    @property
    def incremental_updates(self) -> int:
        return self.counters.incremental_updates

    @property
    def recomputations(self) -> int:
        return self.counters.recomputations

    @property
    def changed_subscriptions(self) -> tuple[int, ...]:
        return tuple(delta.subscription_id for delta in self.deltas if delta.changed)


def delta_report_to_payload(delta: DeltaReport) -> dict[str, object]:
    """A plain-JSON dictionary pinning one delta (golden fixtures)."""
    return {
        "subscription": delta.subscription_id,
        "kind": delta.kind,
        "entered": list(delta.entered),
        "left": list(delta.left),
        "rescored": list(delta.rescored),
        "size": delta.size,
    }


def tick_report_to_payload(report: TickReport) -> dict[str, object]:
    """A plain-JSON dictionary pinning one tick's deltas and path counters."""
    counters: dict[str, int] = {
        "insertions": report.counters.insertions,
        "deletions": report.counters.deletions,
        "incremental_updates": report.counters.incremental_updates,
        "recomputations": report.counters.recomputations,
        "query_moves": report.counters.query_moves,
    }
    if report.counters.edge_cost_refreshes:
        # Emitted only when an edge-cost tick actually fired, so the facility
        # delta-stream fixtures recorded before the temporal subsystem stay
        # byte-identical.
        counters["edge_cost_refreshes"] = report.counters.edge_cost_refreshes
    return {
        "index": report.index,
        "updates": report.updates,
        "deltas": [delta_report_to_payload(delta) for delta in report.deltas],
        "counters": counters,
        "fallback_subscriptions": list(report.fallback_subscriptions),
        "sharded": report.sharded,
    }


@dataclass
class _Subscription:
    subscription_id: int
    request: QueryRequest
    maintainer: SkylineMaintainer | TopKMaintainer

    @property
    def kind(self) -> str:
        return "skyline" if isinstance(self.maintainer, SkylineMaintainer) else "topk"


class MonitoringService:
    """Maintains many long-lived preference-query subscriptions under updates.

    Parameters
    ----------
    graph:
        The (static) multi-cost network.
    facilities:
        The live facility set.  The service owns and mutates it as ticks are
        applied; hand it a private copy if the caller needs the original.
    policy:
        An :class:`~repro.api.ExecutionPolicy` supplying the monitoring
        knobs: ``compiled`` (the columnar fast-path mode — insertion pricing
        and the batched end-of-tick CEA pass then run on the
        :class:`~repro.core.kernel.ExpansionKernel`, with the compiled
        facility columns refreshing automatically as ticks mutate the set),
        ``workers`` / ``routing`` / ``executor`` (with ``workers > 1`` and
        at least ``shard_fallback_threshold`` stale subscriptions in one
        tick, the end-of-tick fallback pass is sharded across workers), and
        ``shard_fallback_threshold`` itself (the pool is not worth spinning
        up for one or two queries).  Monitoring always runs on the in-memory
        data layer; the policy's residency / page knobs do not apply.  This
        is the constructor the :class:`repro.api.Session` facade uses.
    parallel / shard_fallback_threshold / compiled:
        **Deprecated** keyword equivalents of the policy fields, kept
        working for pre-policy call sites (a :class:`DeprecationWarning` is
        emitted).  ``parallel`` is a
        :class:`~repro.parallel.ParallelExecution` or ``None``; ``compiled``
        is ``True`` / ``False`` / ``None`` (``None`` consults the
        ``REPRO_COMPILED`` environment toggle).
    """

    _UNSET = object()

    def __init__(
        self,
        graph: MultiCostGraph,
        facilities: FacilitySet,
        *,
        parallel: ParallelExecution | None = _UNSET,  # type: ignore[assignment]
        shard_fallback_threshold: int = _UNSET,  # type: ignore[assignment]
        compiled: bool | None = _UNSET,  # type: ignore[assignment]
        policy: ExecutionPolicy | None = None,
    ):
        legacy = {
            name: value
            for name, value in (
                ("parallel", parallel),
                ("shard_fallback_threshold", shard_fallback_threshold),
                ("compiled", compiled),
            )
            if value is not MonitoringService._UNSET
        }
        if policy is not None:
            if legacy:
                raise PolicyError(
                    f"pass either policy= or the legacy knobs {sorted(legacy)}, "
                    "not both"
                )
            if not isinstance(policy, ExecutionPolicy):
                raise PolicyError(
                    f"expected an ExecutionPolicy, got {type(policy).__name__}"
                )
        else:
            if legacy:
                legacy_kwargs_warning(
                    "MonitoringService",
                    legacy,
                    "compiled=..., workers=..., shard_fallback_threshold=...",
                )
            policy = self._policy_from_legacy(legacy)
        if facilities.graph is not graph:
            raise QueryError("facility set was built for a different graph")
        self._graph = graph
        self._facilities = facilities
        self._policy = policy
        self._engine = MCNQueryEngine(
            graph,
            facilities,
            compiled=policy.resolved_compiled(),
            vector=policy.resolved_vector(),
        )
        self._accessor = self._engine.accessor
        self._subscriptions: dict[int, _Subscription] = {}
        self._retired = MaintenanceStatistics()
        self._next_sid = 0
        self._ticks_applied = 0
        self._closed = False

    @staticmethod
    def _policy_from_legacy(legacy: dict[str, object]) -> ExecutionPolicy:
        """Fold the pre-policy keyword arguments into an equivalent policy."""
        fields: dict[str, object] = {}
        parallel = legacy.get("parallel")
        if parallel is not None:
            if not isinstance(parallel, ParallelExecution):
                raise QueryError(
                    f"expected a ParallelExecution, got {type(parallel).__name__}"
                )
            fields.update(
                workers=parallel.workers,
                routing=parallel.routing,
                executor=parallel.executor,
            )
        if "shard_fallback_threshold" in legacy:
            fields["shard_fallback_threshold"] = legacy["shard_fallback_threshold"]
        if "compiled" in legacy:
            mode = legacy["compiled"]
            if mode not in (True, False, None):
                raise QueryError(
                    f"compiled must be True, False or None, got {mode!r}"
                )
            fields["compiled"] = {True: "on", False: "off", None: "auto"}[mode]
        return DEFAULT_POLICY.replace(**fields) if fields else DEFAULT_POLICY

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def policy(self) -> ExecutionPolicy:
        """The execution policy supplying the monitoring knobs."""
        return self._policy

    @property
    def facilities(self) -> FacilitySet:
        """The live facility set (mutated by applied ticks)."""
        return self._facilities

    @property
    def subscription_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._subscriptions))

    @property
    def ticks_applied(self) -> int:
        return self._ticks_applied

    @property
    def access_statistics(self) -> AccessStatistics:
        """Cumulative logical accessor counters of the shared data layer.

        Sharded fallback passes run on per-worker snapshot accessors and do
        not show up here; their counters are reported per tick in
        :attr:`TickReport.io`.
        """
        return self._accessor.statistics

    @property
    def statistics(self) -> MaintenanceStatistics:
        """Cumulative maintenance counters over the service's whole lifetime.

        Sums every live subscription's counters plus those of subscriptions
        dropped via :meth:`unsubscribe`, so the totals never shrink.
        """
        total = self._retired.snapshot()
        for subscription in self._subscriptions.values():
            total.accumulate(subscription.maintainer.statistics)
        return total

    def request_of(self, subscription_id: int) -> QueryRequest:
        return self._subscription(subscription_id).request

    def maintainer_of(self, subscription_id: int) -> SkylineMaintainer | TopKMaintainer:
        """The maintainer behind one subscription (current result + counters)."""
        return self._subscription(subscription_id).maintainer

    def result_signature(self, subscription_id: int) -> dict[FacilityId, object]:
        """The subscription's current result as a comparable mapping.

        Skyline subscriptions map facility id -> rounded cost vector; top-k
        subscriptions map facility id -> rounded aggregate score.  Two equal
        signatures mean identical answers (membership and values).
        """
        return self._signature(self._subscription(subscription_id))

    # ------------------------------------------------------------------ #
    # Subscription lifecycle
    # ------------------------------------------------------------------ #
    def subscribe(self, request: QueryRequest) -> int:
        """Register a long-lived subscription; returns its subscription id.

        The request is validated exactly as the batch service validates
        submissions (type, location, ``k``, aggregate arity/monotonicity).
        The initial result is computed immediately against the current
        facility set.  The request's ``algorithm`` field is ignored —
        maintained results always follow the CEA path (all algorithms return
        identical answers anyway).
        """
        self._ensure_open()
        validate_request(self._engine, request)
        compiled = self._engine.compiled_graph
        vector = self._engine.vector_enabled
        if isinstance(request, SkylineRequest):
            maintainer: SkylineMaintainer | TopKMaintainer = SkylineMaintainer(
                self._graph,
                self._facilities,
                request.location,
                accessor=self._accessor,
                compiled=compiled,
                vector=vector,
            )
        else:
            aggregate = self._engine.resolve_aggregate(request.aggregate, request.weights)
            maintainer = TopKMaintainer(
                self._graph,
                self._facilities,
                request.location,
                aggregate,
                request.k,
                accessor=self._accessor,
                compiled=compiled,
                vector=vector,
            )
        subscription_id = self._next_sid
        self._next_sid += 1
        self._subscriptions[subscription_id] = _Subscription(
            subscription_id, request, maintainer
        )
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> None:
        """Drop a subscription; its maintainer stops receiving updates.

        Its maintenance counters are folded into the service's lifetime
        :attr:`statistics` before the maintainer is discarded.
        """
        subscription = self._subscription(subscription_id)
        self._retired.accumulate(subscription.maintainer.statistics)
        del self._subscriptions[subscription_id]

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Drop every subscription and refuse further work (idempotent).

        Folds all live maintainer counters into the lifetime
        :attr:`statistics` first, so nothing is lost at shutdown.  After
        ``close``, :meth:`subscribe` and :meth:`apply_tick` raise
        :class:`~repro.errors.QueryError` — this is the deterministic
        teardown hook :meth:`repro.api.Session.close` (and through it the
        serving tier) relies on.
        """
        if self._closed:
            return
        self._closed = True
        for subscription in self._subscriptions.values():
            self._retired.accumulate(subscription.maintainer.statistics)
        self._subscriptions.clear()

    def _ensure_open(self) -> None:
        if self._closed:
            raise QueryError(
                "this MonitoringService is closed; subscriptions were dropped "
                "at close() and no further ticks can be applied"
            )

    # ------------------------------------------------------------------ #
    # Tick application
    # ------------------------------------------------------------------ #
    def validate_tick(self, tick: UpdateTick) -> None:
        """Reject a tick the service could never apply, before touching anything.

        Simulates the tick's sequencing against the current facility ids, so
        intra-tick chains (insert then delete the same id, or delete then
        re-insert it) validate exactly as they will apply.  Insertions are
        additionally priced against every subscription's distance maps, so
        an unreachable facility is rejected *here* rather than surfacing
        mid-application (node-to-query distances never depend on the
        facility set, so pre-tick pricing stays valid throughout the tick;
        a mid-tick relocation only defers its subscription, whose pricing is
        then skipped anyway).  Raises :class:`FacilityError` /
        :class:`QueryError`; on raise, no update of the tick has been
        applied.
        """
        if not isinstance(tick, UpdateTick):
            raise QueryError(f"expected an UpdateTick, got {type(tick).__name__}")
        live = set(self._facilities.facility_ids())
        for position, update in enumerate(tick):
            if isinstance(update, FacilityInsert):
                if update.facility_id in live:
                    raise FacilityError(
                        f"update {position}: facility id {update.facility_id} already exists"
                    )
                facility = Facility(update.facility_id, update.edge_id, update.offset)
                self._facilities.validate_placement(facility)
                for subscription in self._subscriptions.values():
                    subscription.maintainer.cost_vector(facility)
                live.add(update.facility_id)
            elif isinstance(update, FacilityDelete):
                if update.facility_id not in live:
                    raise FacilityError(
                        f"update {position}: unknown facility {update.facility_id}"
                    )
                live.remove(update.facility_id)
            elif isinstance(update, QueryRelocation):
                if update.subscription_id not in self._subscriptions:
                    raise QueryError(
                        f"update {position}: unknown subscription {update.subscription_id}"
                    )
                update.location.validate(self._graph)
            elif isinstance(update, EdgeCostUpdate):
                if not self._graph.has_edge(update.edge_id):
                    raise QueryError(
                        f"update {position}: unknown edge {update.edge_id}"
                    )
                try:
                    vector = CostVector(update.costs)
                except GraphError as error:
                    raise QueryError(f"update {position}: {error}") from None
                if vector.dimensions != self._graph.num_cost_types:
                    raise QueryError(
                        f"update {position}: edge cost vector has "
                        f"{vector.dimensions} components, expected "
                        f"{self._graph.num_cost_types}"
                    )
            else:
                raise QueryError(
                    f"update {position}: expected a facility update, "
                    f"got {type(update).__name__}"
                )

    def apply_tick(self, tick: UpdateTick) -> TickReport:
        """Apply one tick atomically and emit the per-subscription deltas.

        The tick is validated in full first; each update then mutates the
        shared facility set exactly once and notifies every maintainer
        through its incremental path.  Hard cases are deferred and resolved
        by one batched CEA pass at the end (sharded when configured), so a
        tick costs at most one fallback computation per subscription no
        matter how many of its updates were hard.
        """
        self._ensure_open()
        start = time.perf_counter()
        io_before = self._accessor.statistics.snapshot()
        self.validate_tick(tick)  # may materialise distance maps: counted
        subscriptions = list(self._subscriptions.values())
        before = {sub.subscription_id: self._signature(sub) for sub in subscriptions}
        counters_before = {
            sub.subscription_id: sub.maintainer.statistics.snapshot()
            for sub in subscriptions
        }

        for update in tick:
            if isinstance(update, FacilityInsert):
                facility = Facility(update.facility_id, update.edge_id, update.offset)
                # Cost the insertion for every fresh subscription before any
                # mutation, so an unreachable facility aborts cleanly.
                vectors = {
                    sub.subscription_id: sub.maintainer.cost_vector(facility)
                    for sub in subscriptions
                    if not sub.maintainer.stale
                }
                self._facilities.add(facility)
                for sub in subscriptions:
                    sub.maintainer.note_insert(
                        facility, costs=vectors.get(sub.subscription_id)
                    )
            elif isinstance(update, FacilityDelete):
                self._facilities.remove(update.facility_id)
                for sub in subscriptions:
                    sub.maintainer.note_delete(update.facility_id, defer_recompute=True)
            elif isinstance(update, QueryRelocation):
                maintainer = self._subscriptions[update.subscription_id].maintainer
                maintainer.move_query(update.location, defer_recompute=True)
            else:  # EdgeCostUpdate
                self._graph.update_edge_costs(update.edge_id, update.costs)
                # A re-profiled edge invalidates every subscription's settled
                # distance maps; all of them defer to the batched pass below.
                for sub in subscriptions:
                    sub.maintainer.note_edge_costs_changed(defer_recompute=True)

        stale = [sub for sub in subscriptions if sub.maintainer.stale]
        sharded, sharded_io = self._refresh(stale)

        deltas = [
            self._delta(sub, before[sub.subscription_id]) for sub in subscriptions
        ]
        counters = MaintenanceStatistics()
        for sub in subscriptions:
            counters.accumulate(
                sub.maintainer.statistics.since(counters_before[sub.subscription_id])
            )
        io = self._accessor.statistics.since(io_before)
        if sharded_io is not None:
            # A sharded fallback runs on per-worker snapshot accessors whose
            # counters never reach the shared accessor; fold them in.
            io.accumulate(sharded_io)
        report = TickReport(
            index=self._ticks_applied,
            updates=len(tick),
            deltas=deltas,
            counters=counters,
            fallback_subscriptions=tuple(sub.subscription_id for sub in stale),
            sharded=sharded,
            elapsed_seconds=time.perf_counter() - start,
            io=io,
        )
        self._ticks_applied += 1
        return report

    def run(self, stream: UpdateStream) -> list[TickReport]:
        """Apply a whole stream tick by tick; returns the reports in order."""
        return [self.apply_tick(tick) for tick in stream]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _subscription(self, subscription_id: int) -> _Subscription:
        try:
            return self._subscriptions[subscription_id]
        except KeyError:
            raise QueryError(f"unknown subscription {subscription_id}") from None

    def _signature(self, sub: _Subscription) -> dict[FacilityId, object]:
        maintainer = sub.maintainer
        if isinstance(maintainer, SkylineMaintainer):
            return {
                fid: tuple(round(value, _ROUND) for value in costs)
                for fid, costs in maintainer.skyline.items()
            }
        return {fid: round(score, _ROUND) for fid, score in maintainer.ranking()}

    def _delta(self, sub: _Subscription, before: dict[FacilityId, object]) -> DeltaReport:
        after = self._signature(sub)
        entered = tuple(sorted(set(after) - set(before)))
        left = tuple(sorted(set(before) - set(after)))
        rescored = tuple(
            sorted(fid for fid in set(before) & set(after) if before[fid] != after[fid])
        )
        return DeltaReport(
            subscription_id=sub.subscription_id,
            kind=sub.kind,
            entered=entered,
            left=left,
            rescored=rescored,
            size=len(after),
        )

    def _refresh(self, stale: list[_Subscription]) -> tuple[bool, AccessStatistics | None]:
        """Resolve every deferred fallback with one batched CEA pass.

        Returns ``(sharded, sharded_io)`` — whether the pass ran through the
        sharded parallel service, and that pass's merged I/O counters (which
        live on per-worker snapshot accessors, not the shared one).  A fresh
        :class:`QueryService` (and therefore a fresh cross-query cache) is
        built per pass: the cache memoises facility placements, so it must
        never outlive a tick's mutations — within the pass the set is frozen,
        which is exactly the cache's contract.
        """
        if not stale:
            return False, None
        requests: list[QueryRequest] = []
        for sub in stale:
            maintainer = sub.maintainer
            if isinstance(maintainer, SkylineMaintainer):
                requests.append(SkylineRequest(maintainer.query))
            else:
                requests.append(
                    TopKRequest(maintainer.query, maintainer.k, aggregate=maintainer.aggregate)
                )
        pass_policy = self._policy.replace(
            memoize_results=False, harvest_settled=False, max_cached_entries=None
        )
        service = QueryService(self._engine, policy=pass_policy.replace(workers=1))
        use_shards = (
            self._policy.workers > 1 and len(requests) >= self._policy.shard_fallback_threshold
        )
        report = service.run_batch(
            requests, policy=pass_policy if use_shards else None
        )
        for sub, outcome in zip(stale, report.outcomes):
            sub.maintainer.refresh(outcome.result)
        return use_shards, (report.io if use_shards else None)
