"""The facility-update stream model consumed by the monitoring service.

A stream is a sequence of *ticks*; a tick is an ordered batch of updates
applied atomically between two result emissions.  Four update kinds cover
the paper's Section-VII maintenance setting and its temporal extension:

* :class:`FacilityInsert` — a new facility appears on an edge;
* :class:`FacilityDelete` — an existing facility disappears;
* :class:`QueryRelocation` — one subscription's query location moves;
* :class:`EdgeCostUpdate` — an edge's cost vector is re-profiled (the
  temporal subsystem's rush-hour ramps emit these continuously).

All types are small frozen dataclasses, so updates are hashable, picklable
(the sharded fallback can ship work to pool workers) and round-trip through
plain-JSON payloads via :func:`update_to_payload` / :func:`stream_to_payload`
— the same portability contract the request trace codecs of
:mod:`repro.service.requests` established, which is what lets update streams
be checked in as golden fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import Union

from repro.errors import QueryError
from repro.network.facilities import FacilityId
from repro.network.graph import EdgeId
from repro.network.location import NetworkLocation
from repro.service.requests import location_from_payload, location_to_payload

__all__ = [
    "EdgeCostUpdate",
    "FacilityInsert",
    "FacilityDelete",
    "QueryRelocation",
    "FacilityUpdate",
    "UpdateTick",
    "UpdateStream",
    "update_to_payload",
    "update_from_payload",
    "tick_to_payload",
    "tick_from_payload",
    "stream_to_payload",
    "stream_from_payload",
]


@dataclass(frozen=True)
class FacilityInsert:
    """A new facility appears on ``edge_id`` at ``offset`` from the first end-node."""

    facility_id: FacilityId
    edge_id: EdgeId
    offset: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", float(self.offset))


@dataclass(frozen=True)
class FacilityDelete:
    """An existing facility disappears."""

    facility_id: FacilityId


@dataclass(frozen=True)
class QueryRelocation:
    """One subscription's query point moves to ``location``."""

    subscription_id: int
    location: NetworkLocation


@dataclass(frozen=True)
class EdgeCostUpdate:
    """Edge ``edge_id``'s cost vector is replaced by ``costs`` (re-profiling)."""

    edge_id: EdgeId
    costs: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "costs", tuple(float(value) for value in self.costs)
        )


FacilityUpdate = Union[FacilityInsert, FacilityDelete, QueryRelocation, EdgeCostUpdate]

_UPDATE_KINDS = (FacilityInsert, FacilityDelete, QueryRelocation, EdgeCostUpdate)


@dataclass(frozen=True)
class UpdateTick:
    """One ordered batch of updates, applied atomically by the service."""

    updates: tuple[FacilityUpdate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))
        for update in self.updates:
            if not isinstance(update, _UPDATE_KINDS):
                raise QueryError(
                    f"expected a facility update, got {type(update).__name__}"
                )

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[FacilityUpdate]:
        return iter(self.updates)


@dataclass(frozen=True)
class UpdateStream:
    """A whole replayable stream: ticks in arrival order."""

    ticks: tuple[UpdateTick, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ticks", tuple(self.ticks))
        for tick in self.ticks:
            if not isinstance(tick, UpdateTick):
                raise QueryError(f"expected an UpdateTick, got {type(tick).__name__}")

    @property
    def num_updates(self) -> int:
        """Total updates across every tick."""
        return sum(len(tick) for tick in self.ticks)

    def counts_by_kind(self) -> dict[str, int]:
        """How many inserts / deletes / relocations / edge re-costs the stream carries."""
        counts = {"insert": 0, "delete": 0, "relocate": 0, "edge-cost": 0}
        for tick in self.ticks:
            for update in tick:
                if isinstance(update, FacilityInsert):
                    counts["insert"] += 1
                elif isinstance(update, FacilityDelete):
                    counts["delete"] += 1
                elif isinstance(update, EdgeCostUpdate):
                    counts["edge-cost"] += 1
                else:
                    counts["relocate"] += 1
        return counts

    def __len__(self) -> int:
        return len(self.ticks)

    def __iter__(self) -> Iterator[UpdateTick]:
        return iter(self.ticks)


# --------------------------------------------------------------------- #
# JSON-payload serialization (golden fixtures, cross-process streams)
# --------------------------------------------------------------------- #
def update_to_payload(update: FacilityUpdate) -> dict[str, object]:
    """A plain-JSON dictionary describing ``update`` (see :func:`update_from_payload`)."""
    if isinstance(update, FacilityInsert):
        return {
            "type": "insert",
            "facility": update.facility_id,
            "edge": update.edge_id,
            "offset": update.offset,
        }
    if isinstance(update, FacilityDelete):
        return {"type": "delete", "facility": update.facility_id}
    if isinstance(update, QueryRelocation):
        return {
            "type": "relocate",
            "subscription": update.subscription_id,
            "location": location_to_payload(update.location),
        }
    if isinstance(update, EdgeCostUpdate):
        return {
            "type": "edge-cost",
            "edge": update.edge_id,
            "costs": list(update.costs),
        }
    raise QueryError(f"expected a facility update, got {type(update).__name__}")


def update_from_payload(payload: dict[str, object]) -> FacilityUpdate:
    """Rebuild an update from an :func:`update_to_payload` dictionary."""
    kind = payload.get("type")
    try:
        if kind == "insert":
            return FacilityInsert(
                facility_id=int(payload["facility"]),  # type: ignore[arg-type]
                edge_id=int(payload["edge"]),  # type: ignore[arg-type]
                offset=float(payload["offset"]),  # type: ignore[arg-type]
            )
        if kind == "delete":
            return FacilityDelete(facility_id=int(payload["facility"]))  # type: ignore[arg-type]
        if kind == "relocate":
            return QueryRelocation(
                subscription_id=int(payload["subscription"]),  # type: ignore[arg-type]
                location=location_from_payload(payload["location"]),  # type: ignore[arg-type]
            )
        if kind == "edge-cost":
            return EdgeCostUpdate(
                edge_id=int(payload["edge"]),  # type: ignore[arg-type]
                costs=tuple(float(v) for v in payload["costs"]),  # type: ignore[union-attr]
            )
    except KeyError as missing:
        raise QueryError(f"{kind} update payload missing {missing}") from None
    raise QueryError(
        f"unknown update type {kind!r}; expected 'insert', 'delete', "
        "'relocate' or 'edge-cost'"
    )


def tick_to_payload(tick: UpdateTick) -> list[dict[str, object]]:
    """The payloads of one tick's updates, in order."""
    return [update_to_payload(update) for update in tick]


def tick_from_payload(payload: list[dict[str, object]]) -> UpdateTick:
    """Rebuild a tick from a :func:`tick_to_payload` list."""
    return UpdateTick(tuple(update_from_payload(entry) for entry in payload))


def stream_to_payload(stream: UpdateStream) -> dict[str, object]:
    """A plain-JSON dictionary describing a whole stream."""
    return {"ticks": [tick_to_payload(tick) for tick in stream]}


def stream_from_payload(payload: dict[str, object]) -> UpdateStream:
    """Rebuild a stream from a :func:`stream_to_payload` dictionary."""
    try:
        ticks = payload["ticks"]
    except KeyError as missing:
        raise QueryError(f"stream payload missing {missing}") from None
    return UpdateStream(tuple(tick_from_payload(entry) for entry in ticks))  # type: ignore[union-attr]
