"""The unified public API: one :class:`Session`, one :class:`ExecutionPolicy`.

This package is the facade over the four execution stacks that grew under
it (:class:`~repro.MCNQueryEngine`, :class:`~repro.QueryService`,
:class:`~repro.ShardedQueryService`, :class:`~repro.MonitoringService`).
Callers describe *how* to execute with a declarative, JSON-serialisable
:class:`ExecutionPolicy` and hand requests to a :class:`Session`, which
lazily builds and caches whatever stack the policy needs::

    from repro.api import ExecutionPolicy, Session

    session = Session(graph, facilities, policy=ExecutionPolicy(residency="disk"))
    one = session.skyline(query)                                   # Response
    batch = session.run_batch(requests,
                              policy=session.policy.replace(workers=4))
    handle = session.monitor(requests)                             # MonitorHandle
    delta = handle.tick(update_tick)                               # TickResponse

:mod:`repro.api.policy` is additionally the single source of truth for the
``REPRO_COMPILED`` and ``REPRO_VECTOR`` environment toggles and for the
parallel-execution vocabulary (``ROUTINGS`` / ``EXECUTORS``).

The :class:`Session`-side symbols are imported lazily (PEP 562): modules
deep in the stack (e.g. :mod:`repro.core.engine`) import
:mod:`repro.api.policy` at module level, which must not drag the whole
session machinery — and thereby a circular import — with it.
"""

from repro.api.policy import (
    ALGORITHMS,
    COMPILED_ENV_VAR,
    COMPILED_MODES,
    DEFAULT_POLICY,
    EXECUTORS,
    ExecutionPolicy,
    RESIDENCIES,
    ROUTINGS,
    VECTOR_ENV_VAR,
    VECTOR_MODES,
    compiled_env_default,
    numpy_available,
    policy_from_payload,
    policy_to_payload,
    resolve_compiled,
    resolve_vector,
    vector_env_default,
)
from repro.api.stats import (
    DEFAULT_TRACKED_QUANTILES,
    LatencyRecorder,
    P2Quantile,
    RollingLatencyStats,
)

__all__ = [
    "ALGORITHMS",
    "BatchResponse",
    "COMPILED_ENV_VAR",
    "COMPILED_MODES",
    "DEFAULT_POLICY",
    "DEFAULT_TRACKED_QUANTILES",
    "EXECUTORS",
    "ExecutionPolicy",
    "LatencyRecorder",
    "MonitorHandle",
    "P2Quantile",
    "RESIDENCIES",
    "ROUTINGS",
    "Response",
    "RollingLatencyStats",
    "Session",
    "TickResponse",
    "VECTOR_ENV_VAR",
    "VECTOR_MODES",
    "compiled_env_default",
    "numpy_available",
    "policy_from_payload",
    "policy_to_payload",
    "resolve_compiled",
    "resolve_vector",
    "vector_env_default",
]

_SESSION_EXPORTS = frozenset(
    {"BatchResponse", "MonitorHandle", "Response", "Session", "TickResponse"}
)


def __getattr__(name: str):
    if name in _SESSION_EXPORTS:
        from repro.api import session as _session

        return getattr(_session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
