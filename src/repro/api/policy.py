"""The declarative execution configuration: :class:`ExecutionPolicy`.

Before the :class:`~repro.api.Session` facade existed, each execution stack
grew its own overlapping knobs — ``use_disk=`` on the engine, ``compiled=``
in three places, ``memoize_results=`` on the batch service,
``parallel=ParallelExecution(...)`` on ``run_batch`` and the monitoring
service.  An :class:`ExecutionPolicy` replaces all of them with one frozen,
hashable, JSON-serialisable value object: *where* the data lives
(``residency``), *how* searches run (``algorithm``, ``compiled``), *how wide*
(``workers`` / ``routing`` / ``executor``), and *what is shared* across
queries (``memoize_results`` / ``harvest_settled`` / ``max_cached_entries``).

Every field is validated at construction — a bad policy raises
:class:`~repro.errors.PolicyError` with an actionable message before any
engine, pool or subscription exists, never mid-batch.

This module is also the single source of truth for the ``REPRO_COMPILED``
and ``REPRO_VECTOR`` environment toggles: :func:`compiled_env_default` and
:func:`vector_env_default` are the only places the variables are parsed, and
:func:`resolve_compiled` / :func:`resolve_vector` map the policies'
``"auto"``/``"on"``/``"off"`` modes onto them.  :mod:`repro.core.engine`,
the sharded workers and the monitoring service all defer here.

Example
-------
>>> policy = ExecutionPolicy(residency="disk", compiled="on", workers=4)
>>> policy_from_payload(policy_to_payload(policy)) == policy
True
"""

from __future__ import annotations

import dataclasses
import importlib.util
import os
import warnings
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PolicyError

if TYPE_CHECKING:  # pragma: no cover - runtime import would be circular
    from repro.parallel import ParallelExecution

__all__ = [
    "ALGORITHMS",
    "COMPILED_ENV_VAR",
    "COMPILED_MODES",
    "DEFAULT_POLICY",
    "EXECUTORS",
    "ExecutionPolicy",
    "RESIDENCIES",
    "ROUTINGS",
    "TEMPORAL_MODES",
    "VECTOR_ENV_VAR",
    "VECTOR_MODES",
    "compiled_env_default",
    "legacy_kwargs_warning",
    "numpy_available",
    "policy_from_payload",
    "policy_to_payload",
    "resolve_compiled",
    "resolve_vector",
    "vector_env_default",
]

#: Environment toggle for the columnar fast path.  A policy (or engine) in
#: ``"auto"`` mode consults it; CI sets it to drive the whole test suite
#: through the :class:`~repro.core.kernel.ExpansionKernel`.
COMPILED_ENV_VAR = "REPRO_COMPILED"

#: Environment toggle for the vectorised expansion kernel.  ``"auto"`` mode
#: consults it; unset means "use the vectorised kernel whenever numpy is
#: importable".  CI sets ``REPRO_VECTOR=0`` to drive the whole test suite
#: through the pure-python fallback kernel.
VECTOR_ENV_VAR = "REPRO_VECTOR"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

ALGORITHMS = ("cea", "lsa", "baseline")
RESIDENCIES = ("memory", "disk", "dataset")
COMPILED_MODES = ("auto", "on", "off")
VECTOR_MODES = ("auto", "on", "off")
TEMPORAL_MODES = ("off", "profiles")

#: Lazily probed numpy availability (the selection layer's import-time fact).
_NUMPY_AVAILABLE: bool | None = None

#: Canonical parallel-execution vocabulary.  Defined here (the only module
#: every execution stack can import without a cycle) and re-exported by
#: :mod:`repro.parallel` for backwards compatibility.
ROUTINGS = ("round_robin", "locality")
EXECUTORS = ("process", "thread", "serial")


def compiled_env_default() -> bool:
    """Whether ``REPRO_COMPILED`` currently enables the fast path.

    The only place the variable is parsed — the engine, the sharded workers
    and the monitoring service all route their env handling through here.
    """
    return os.environ.get(COMPILED_ENV_VAR, "").strip().lower() in _TRUTHY


def resolve_compiled(mode: str) -> bool:
    """Resolve a policy ``compiled`` mode to the effective on/off decision.

    ``"on"`` and ``"off"`` are unconditional; ``"auto"`` defers to the
    ``REPRO_COMPILED`` environment toggle at resolution time.
    """
    if mode == "on":
        return True
    if mode == "off":
        return False
    if mode == "auto":
        return compiled_env_default()
    raise PolicyError(
        f"unknown compiled mode {mode!r}; expected one of {COMPILED_MODES}"
    )


def numpy_available() -> bool:
    """Whether numpy can be imported (probed once, then cached).

    The selection layer's environmental fact: without numpy the vectorised
    kernel cannot run and every ``"auto"`` resolution falls back to the
    pure-python :class:`~repro.core.kernel.ExpansionKernel`.
    """
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        _NUMPY_AVAILABLE = importlib.util.find_spec("numpy") is not None
    return _NUMPY_AVAILABLE


def vector_env_default() -> bool:
    """Whether the vectorised kernel is currently the default fast path.

    The only place ``REPRO_VECTOR`` is parsed.  Unset (or blank) means
    "vectorise whenever numpy is importable"; a falsy value forces the
    pure-python fallback; a truthy value is still capped by numpy
    availability — the toggle can disable vectorisation, never conjure it.
    """
    if not numpy_available():
        return False
    raw = os.environ.get(VECTOR_ENV_VAR, "").strip().lower()
    if not raw:
        return True
    return raw in _TRUTHY


def resolve_vector(mode: str) -> bool:
    """Resolve a policy ``vector`` mode to the effective on/off decision.

    ``"off"`` is unconditional; ``"auto"`` defers to the ``REPRO_VECTOR``
    environment toggle (and numpy availability) at resolution time; ``"on"``
    demands the vectorised kernel and raises :class:`PolicyError` when numpy
    is not importable, instead of silently degrading.
    """
    if mode == "on":
        if not numpy_available():
            raise PolicyError(
                "vector='on' requires numpy, which is not importable; use "
                "vector='auto' to fall back to the pure-python kernel"
            )
        return True
    if mode == "off":
        return False
    if mode == "auto":
        return vector_env_default()
    raise PolicyError(
        f"unknown vector mode {mode!r}; expected one of {VECTOR_MODES}"
    )


def legacy_kwargs_warning(owner: str, names: Iterable[str], hint: str) -> None:
    """Emit the shared deprecation warning for pre-policy keyword arguments.

    The old kwargs keep working (they are folded into an equivalent
    :class:`ExecutionPolicy`), but new code should pass ``policy=`` or go
    through :class:`repro.api.Session`.
    """
    listed = ", ".join(f"{name}=..." for name in sorted(names))
    warnings.warn(
        f"{owner}({listed}) is deprecated; pass "
        f"policy=ExecutionPolicy({hint}) instead, or drive execution through "
        "repro.api.Session",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class ExecutionPolicy:
    """One serialisable description of *how* queries execute.

    Parameters
    ----------
    algorithm:
        Default search algorithm (``"cea"``, ``"lsa"`` or ``"baseline"``)
        used by the :class:`~repro.api.Session` convenience builders.
        Requests that carry their own ``algorithm`` field are untouched.
    residency:
        ``"memory"`` runs against the in-memory accessor; ``"disk"`` against
        the simulated disk-resident :class:`~repro.storage.NetworkStorage`
        (page reads are then counted); ``"dataset"`` against a file-backed
        dataset pack served through ``mmap`` (requires ``dataset_path``).
    dataset_path:
        Path of the dataset pack backing ``residency="dataset"`` policies
        (built with ``repro-cli build-dataset`` or
        :func:`~repro.storage.pack_network_storage`).  ``None`` otherwise.
    compiled:
        Columnar fast-path mode: ``"on"``, ``"off"`` or ``"auto"`` (defer to
        the ``REPRO_COMPILED`` environment toggle at resolution time).
        Answers and I/O counters are identical either way.
    vector:
        Vectorised-kernel mode for the compiled fast path: ``"auto"``
        (default — vectorise when numpy is importable and ``REPRO_VECTOR``
        does not veto it), ``"on"`` (demand the vectorised kernel; raises at
        resolution when numpy is missing) or ``"off"`` (always the
        pure-python fallback kernel).  Ignored when the fast path itself is
        off; answers and I/O counters are identical either way.
    page_size / buffer_fraction:
        Storage-scheme knobs, used only under ``residency="disk"``.
    workers / routing / executor:
        Parallelism: with ``workers > 1`` batches run through the sharded
        service (``routing`` in ``("round_robin", "locality")``, ``executor``
        in ``("process", "thread", "serial")``); with ``workers == 1``
        execution is sequential and ``routing``/``executor`` are inert.
    memoize_results / harvest_settled / max_cached_entries:
        Cross-query cache behaviour of the batch service (and of every shard
        worker): result memoisation, settled-cost harvesting, and the LRU
        bound of the shared record cache (``None`` = unbounded).
    shard_fallback_threshold:
        Monitoring only: minimum number of stale subscriptions in one tick
        before the end-of-tick recompute pass is sharded across workers.
    temporal / profile_source:
        The temporal subsystem's knobs.  ``temporal="profiles"`` lets the
        session answer departure-time-parameterised requests by evaluating
        the named time-profile set (``profile_source`` must then name one of
        the profile sets registered on the session) into per-time graph
        snapshots; ``"off"`` (the default) keeps the classic static
        semantics and rejects any ``departure_time``.
    temporal_quantum / temporal_cache_size:
        Snapshot reuse: departure times are quantised to multiples of
        ``temporal_quantum`` (in the profiles' time unit) before keying the
        snapshot LRU, which holds at most ``temporal_cache_size`` stacks.
    """

    algorithm: str = "cea"
    residency: str = "memory"
    dataset_path: str | None = None
    compiled: str = "auto"
    vector: str = "auto"
    page_size: int = 4096
    buffer_fraction: float = 0.01
    workers: int = 1
    routing: str = "round_robin"
    executor: str = "process"
    memoize_results: bool = True
    harvest_settled: bool = True
    max_cached_entries: int | None = None
    shard_fallback_threshold: int = 4
    temporal: str = "off"
    profile_source: str | None = None
    temporal_quantum: float = 0.25
    temporal_cache_size: int = 8

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise PolicyError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if self.residency not in RESIDENCIES:
            raise PolicyError(
                f"unknown residency {self.residency!r}; expected one of "
                f"{RESIDENCIES} (disk builds the simulated storage scheme, "
                "dataset serves a file-backed pack through mmap)"
            )
        if self.dataset_path is not None and not isinstance(self.dataset_path, str):
            raise PolicyError(
                f"dataset_path must be a string path or None, got "
                f"{type(self.dataset_path).__name__}"
            )
        if self.residency == "dataset" and not self.dataset_path:
            raise PolicyError(
                "residency='dataset' requires dataset_path to name the pack "
                "file (build one with the build-dataset CLI command or "
                "repro.storage.pack_network_storage)"
            )
        if self.compiled not in COMPILED_MODES:
            raise PolicyError(
                f"unknown compiled mode {self.compiled!r}; expected one of "
                f"{COMPILED_MODES} ('auto' defers to {COMPILED_ENV_VAR})"
            )
        if self.vector not in VECTOR_MODES:
            raise PolicyError(
                f"unknown vector mode {self.vector!r}; expected one of "
                f"{VECTOR_MODES} ('auto' defers to {VECTOR_ENV_VAR} and "
                "numpy availability)"
            )
        if not isinstance(self.page_size, int) or isinstance(self.page_size, bool) or self.page_size < 128:
            raise PolicyError(
                f"page_size must be an integer of at least 128 bytes, got "
                f"{self.page_size!r}"
            )
        if isinstance(self.buffer_fraction, bool) or not isinstance(
            self.buffer_fraction, (int, float)
        ):
            raise PolicyError(
                f"buffer_fraction must be a number in (0, 1], got "
                f"{self.buffer_fraction!r}"
            )
        # Store the canonical float so the value is usable (and hashable
        # consistently) everywhere downstream.
        object.__setattr__(self, "buffer_fraction", float(self.buffer_fraction))
        if not 0.0 < self.buffer_fraction <= 1.0:
            raise PolicyError(
                f"buffer_fraction must lie in (0, 1], got {self.buffer_fraction!r}"
            )
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) or self.workers < 1:
            raise PolicyError(
                f"workers must be a positive integer, got {self.workers!r} "
                "(1 = sequential execution)"
            )
        if self.routing not in ROUTINGS:
            raise PolicyError(
                f"unknown routing {self.routing!r}; expected one of {ROUTINGS}"
            )
        if self.executor not in EXECUTORS:
            raise PolicyError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}"
            )
        for flag_name in ("memoize_results", "harvest_settled"):
            value = getattr(self, flag_name)
            if not isinstance(value, bool):
                raise PolicyError(
                    f"{flag_name} must be a bool, got {type(value).__name__}"
                )
        if self.max_cached_entries is not None and (
            not isinstance(self.max_cached_entries, int)
            or isinstance(self.max_cached_entries, bool)
            or self.max_cached_entries < 1
        ):
            raise PolicyError(
                f"max_cached_entries must be a positive integer or None "
                f"(unbounded), got {self.max_cached_entries!r}"
            )
        if (
            not isinstance(self.shard_fallback_threshold, int)
            or isinstance(self.shard_fallback_threshold, bool)
            or self.shard_fallback_threshold < 1
        ):
            raise PolicyError(
                f"shard_fallback_threshold must be a positive integer, got "
                f"{self.shard_fallback_threshold!r}"
            )
        if self.temporal not in TEMPORAL_MODES:
            raise PolicyError(
                f"unknown temporal mode {self.temporal!r}; expected one of "
                f"{TEMPORAL_MODES} ('profiles' evaluates a registered "
                "time-profile set into per-departure-time snapshots)"
            )
        if self.profile_source is not None and not isinstance(self.profile_source, str):
            raise PolicyError(
                f"profile_source must be a string name or None, got "
                f"{type(self.profile_source).__name__}"
            )
        if self.temporal == "profiles" and not self.profile_source:
            raise PolicyError(
                "temporal='profiles' requires profile_source to name a "
                "profile set registered on the Session (profiles={name: ...})"
            )
        if self.temporal == "off" and self.profile_source is not None:
            raise PolicyError(
                "profile_source is set but temporal='off'; enable "
                "temporal='profiles' or drop the source"
            )
        if isinstance(self.temporal_quantum, bool) or not isinstance(
            self.temporal_quantum, (int, float)
        ):
            raise PolicyError(
                f"temporal_quantum must be a positive number, got "
                f"{self.temporal_quantum!r}"
            )
        object.__setattr__(self, "temporal_quantum", float(self.temporal_quantum))
        if not self.temporal_quantum > 0.0:
            raise PolicyError(
                f"temporal_quantum must be a positive number, got "
                f"{self.temporal_quantum!r}"
            )
        if (
            not isinstance(self.temporal_cache_size, int)
            or isinstance(self.temporal_cache_size, bool)
            or self.temporal_cache_size < 1
        ):
            raise PolicyError(
                f"temporal_cache_size must be a positive integer, got "
                f"{self.temporal_cache_size!r}"
            )

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def replace(self, **changes: object) -> "ExecutionPolicy":
        """A copy of this policy with ``changes`` applied (and re-validated)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def resolved_compiled(self) -> bool:
        """The effective fast-path decision (``"auto"`` resolved against the env)."""
        return resolve_compiled(self.compiled)

    def resolved_vector(self) -> bool:
        """The effective vectorised-kernel decision (``"auto"`` resolved against
        ``REPRO_VECTOR`` and numpy availability)."""
        return resolve_vector(self.vector)

    @property
    def parallel(self) -> "ParallelExecution | None":
        """The equivalent :class:`~repro.parallel.ParallelExecution`, or ``None``.

        ``None`` when ``workers == 1`` — sequential execution needs no
        parallelism spec.
        """
        if self.workers == 1:
            return None
        from repro.parallel import ParallelExecution

        return ParallelExecution(
            workers=self.workers, routing=self.routing, executor=self.executor
        )

    # ------------------------------------------------------------------ #
    # JSON payload codecs
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict[str, object]:
        """A plain-JSON dictionary describing this policy (see :func:`policy_to_payload`)."""
        return policy_to_payload(self)

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "ExecutionPolicy":
        """Rebuild a policy from a :func:`policy_to_payload` dictionary."""
        return policy_from_payload(payload)


#: The all-defaults policy: in-memory, sequential, env-controlled fast path.
DEFAULT_POLICY = ExecutionPolicy()

_PAYLOAD_FIELDS = tuple(field.name for field in dataclasses.fields(ExecutionPolicy))


def policy_to_payload(policy: ExecutionPolicy) -> dict[str, object]:
    """A plain-JSON dictionary that round-trips through :func:`policy_from_payload`.

    The payload is a flat field mapping, so a whole execution configuration
    ships alongside the request payloads of
    :mod:`repro.service.requests` — one JSON document fully describes *what*
    to run and *how* to run it.
    """
    if not isinstance(policy, ExecutionPolicy):
        raise PolicyError(
            f"expected an ExecutionPolicy, got {type(policy).__name__}"
        )
    return {name: getattr(policy, name) for name in _PAYLOAD_FIELDS}


def policy_from_payload(payload: dict[str, object]) -> ExecutionPolicy:
    """Rebuild an :class:`ExecutionPolicy` from its payload dictionary.

    Missing fields take their defaults (so old payloads keep decoding as the
    policy schema grows); unknown fields are rejected to catch typos like
    ``"worker"`` for ``"workers"`` early.
    """
    if not isinstance(payload, dict):
        raise PolicyError(f"expected a policy payload dict, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(_PAYLOAD_FIELDS))
    if unknown:
        raise PolicyError(
            f"unknown policy field(s) {unknown}; expected a subset of "
            f"{sorted(_PAYLOAD_FIELDS)}"
        )
    kwargs: dict[str, object] = dict(payload)
    if "max_cached_entries" in kwargs and kwargs["max_cached_entries"] is not None:
        kwargs["max_cached_entries"] = _integer_field(
            "max_cached_entries", kwargs["max_cached_entries"]
        )
    for name in ("page_size", "workers", "shard_fallback_threshold", "temporal_cache_size"):
        if name in kwargs:
            kwargs[name] = _integer_field(name, kwargs[name])
    for name in ("buffer_fraction", "temporal_quantum"):
        if name in kwargs:
            value = kwargs[name]
            try:
                kwargs[name] = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise PolicyError(
                    f"policy field {name} must be a number, got {value!r}"
                ) from None
    return ExecutionPolicy(**kwargs)  # type: ignore[arg-type]


def _integer_field(name: str, value: object) -> int:
    """Decode one integer policy field, rejecting anything lossy or non-numeric."""
    if isinstance(value, bool):
        raise PolicyError(f"policy field {name} must be an integer, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise PolicyError(
            f"policy field {name} must be an integer, got the non-integral {value!r}"
        )
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise PolicyError(
            f"policy field {name} must be an integer, got {value!r}"
        ) from None
