"""Rolling latency statistics shared by the session and the serving tier.

The batch/monitor reports already account for *work* (page reads, cache
hits, maintenance paths), but a long-running service also needs cheap,
always-on **latency observability**: "what did the last N requests feel
like" and "what has the tail looked like since boot".  Two structures
cover both questions without ever storing the full history:

* a bounded **rolling window** of the most recent observations, from which
  any percentile is computed exactly (the window is small, sorting it is
  nothing compared to a graph expansion);
* one streaming **P² quantile estimator** (Jain & Chlamtac 1985) per
  tracked quantile, maintaining five markers in O(1) per observation over
  the object's whole lifetime — the classic structure for latency
  percentiles that must never grow with traffic.

:class:`LatencyRecorder` bundles one :class:`RollingLatencyStats` per
label ("query", "batch", "tick", or a serve-tier endpoint) behind a lock,
so the single-threaded event loop, the serve executor thread and any
direct-session caller can all observe into the same recorder.  The
:class:`~repro.api.Session` facade owns one; the serving tier's
``/v1/metrics`` endpoint is a JSON view over two of them.
"""

from __future__ import annotations

import threading
from bisect import insort
from collections import deque
from collections.abc import Iterable

from repro.errors import QueryError

__all__ = [
    "DEFAULT_TRACKED_QUANTILES",
    "LatencyRecorder",
    "P2Quantile",
    "RollingLatencyStats",
]

#: The tail the serving tier reports by default (P² estimators are built
#: for exactly these; window percentiles accept any q).
DEFAULT_TRACKED_QUANTILES = (0.5, 0.9, 0.99)


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Keeps five markers (min, three interior, max) whose heights are nudged
    toward the ideal quantile positions with piecewise-parabolic
    interpolation — O(1) memory and time per observation, no samples
    stored.  Exact until five observations have arrived, an estimate
    afterwards; the estimate is what a service dashboard needs, the exact
    recent tail comes from the rolling window instead.
    """

    __slots__ = ("_q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise QueryError(f"quantile must lie in (0, 1), got {q!r}")
        self._q = float(q)
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    @property
    def q(self) -> float:
        return self._q

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if len(self._heights) < 5:
            insort(self._heights, value)
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]
        for index in (1, 2, 3):
            delta = self._desired[index] - positions[index]
            below = positions[index] - positions[index - 1]
            above = positions[index + 1] - positions[index]
            if (delta >= 1.0 and above > 1.0) or (delta <= -1.0 and below > 1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:  # parabolic prediction left the bracket: linear fallback
                    neighbor = index + int(step)
                    heights[index] += step * (
                        (heights[neighbor] - heights[index])
                        / (positions[neighbor] - positions[index])
                    )
                # Both updates stay inside the bracket mathematically, but
                # float rounding (and all-equal streams, where the bracket
                # is empty) can nudge a marker past its neighbour; clamping
                # keeps the five heights monotone by construction.
                if heights[index] < heights[index - 1]:
                    heights[index] = heights[index - 1]
                elif heights[index] > heights[index + 1]:
                    heights[index] = heights[index + 1]
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights, positions = self._heights, self._positions
        return heights[index] + step / (positions[index + 1] - positions[index - 1]) * (
            (positions[index] - positions[index - 1] + step)
            * (heights[index + 1] - heights[index])
            / (positions[index + 1] - positions[index])
            + (positions[index + 1] - positions[index] - step)
            * (heights[index] - heights[index - 1])
            / (positions[index] - positions[index - 1])
        )

    @property
    def value(self) -> float:
        """The current estimate (exact through five observations; 0.0 when empty).

        The five cells hold the sorted sample itself until a *sixth*
        observation arrives, so through ``count == 5`` the exact quantile is
        interpolated from them — returning the middle marker already at five
        would hand every ``q`` the sample median and put a discontinuity at
        the exact→estimate handoff.
        """
        if not self._heights:
            return 0.0
        if self._count <= 5:
            rank = self._q * (len(self._heights) - 1)
            low = int(rank)
            high = min(low + 1, len(self._heights) - 1)
            return self._heights[low] + (rank - low) * (
                self._heights[high] - self._heights[low]
            )
        return self._heights[2]


class RollingLatencyStats:
    """Latency statistics of one label: bounded window + lifetime P² tail.

    ``percentile(q)`` is exact over the most recent ``window`` observations;
    ``estimate(q)`` is the lifetime P² estimate for the tracked quantiles.
    ``observe`` is O(1) (amortised) — safe on every request of a hot
    serving loop.
    """

    def __init__(
        self,
        *,
        window: int = 512,
        quantiles: Iterable[float] = DEFAULT_TRACKED_QUANTILES,
    ):
        if not isinstance(window, int) or isinstance(window, bool) or window < 1:
            raise QueryError(f"window must be a positive integer, got {window!r}")
        self._window: deque[float] = deque(maxlen=window)
        self._estimators = {float(q): P2Quantile(q) for q in quantiles}
        if not self._estimators:
            raise QueryError("at least one tracked quantile is required")
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    @property
    def count(self) -> int:
        """Lifetime number of observations."""
        return self._count

    @property
    def window_size(self) -> int:
        """Number of observations currently in the rolling window."""
        return len(self._window)

    @property
    def window_capacity(self) -> int:
        return self._window.maxlen or 0

    @property
    def tracked_quantiles(self) -> tuple[float, ...]:
        return tuple(sorted(self._estimators))

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        if seconds < 0.0:
            raise QueryError(f"latency observations must be >= 0, got {seconds!r}")
        self._count += 1
        self._total += seconds
        if seconds > self._max:
            self._max = seconds
        self._window.append(seconds)
        for estimator in self._estimators.values():
            estimator.observe(seconds)

    def percentile(self, q: float) -> float:
        """Exact percentile over the rolling window (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise QueryError(f"percentile must lie in [0, 1], got {q!r}")
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = q * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        return ordered[low] + (rank - low) * (ordered[high] - ordered[low])

    def estimate(self, q: float) -> float:
        """Lifetime P² estimate for one *tracked* quantile."""
        try:
            return self._estimators[float(q)].value
        except KeyError:
            raise QueryError(
                f"quantile {q!r} is not tracked; tracked: {self.tracked_quantiles} "
                "(window percentiles via percentile() accept any q)"
            ) from None

    def summary(self) -> dict[str, object]:
        """A plain-JSON summary (milliseconds, the dashboard unit)."""
        payload: dict[str, object] = {
            "count": self._count,
            "window": len(self._window),
            "mean_ms": round(self.mean * 1000.0, 4),
            "max_ms": round(self._max * 1000.0, 4),
        }
        for q in self.tracked_quantiles:
            key = f"p{str(q)[2:].ljust(2, '0')}"  # 0.5 -> p50, 0.99 -> p99
            payload[f"{key}_ms"] = round(self.percentile(q) * 1000.0, 4)
            payload[f"{key}_lifetime_ms"] = round(self.estimate(q) * 1000.0, 4)
        return payload


class LatencyRecorder:
    """One :class:`RollingLatencyStats` per label, behind a lock.

    Labels are created on first observation, so callers never pre-register
    ("query" / "batch" / "tick" for the session, one label per endpoint in
    the serving tier).
    """

    def __init__(
        self,
        *,
        window: int = 512,
        quantiles: Iterable[float] = DEFAULT_TRACKED_QUANTILES,
    ):
        self._window = window
        self._quantiles = tuple(float(q) for q in quantiles)
        self._stats: dict[str, RollingLatencyStats] = {}
        self._lock = threading.Lock()

    def observe(self, label: str, seconds: float) -> None:
        with self._lock:
            stats = self._stats.get(label)
            if stats is None:
                stats = self._stats[label] = RollingLatencyStats(
                    window=self._window, quantiles=self._quantiles
                )
        stats.observe(seconds)

    def labels(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._stats))

    def stats_for(self, label: str) -> RollingLatencyStats:
        with self._lock:
            try:
                return self._stats[label]
            except KeyError:
                raise QueryError(
                    f"no latency observations recorded for {label!r}; "
                    f"recorded labels: {sorted(self._stats)}"
                ) from None

    def summary(self) -> dict[str, dict[str, object]]:
        """Per-label :meth:`RollingLatencyStats.summary`, JSON-ready."""
        with self._lock:
            stats = dict(self._stats)
        return {label: stats[label].summary() for label in sorted(stats)}
