"""The unified execution facade: :class:`Session`.

The reproduction grew four entry points — :class:`~repro.MCNQueryEngine`
(one-shot), :class:`~repro.QueryService` (batched),
:class:`~repro.ShardedQueryService` (parallel) and
:class:`~repro.MonitoringService` (continuous) — each with its own
overlapping construction knobs.  A :class:`Session` owns the *dataset* (one
graph, one facility set, optionally a pre-built storage or accessor) and
hides all four stacks behind three verbs:

* :meth:`Session.query` (plus the :meth:`skyline` / :meth:`top_k`
  convenience builders) — one request, one :class:`Response`;
* :meth:`Session.run_batch` — a request sequence, executed sequentially or
  sharded depending on the policy's ``workers``, one :class:`BatchResponse`;
* :meth:`Session.monitor` — long-lived subscriptions over the session's live
  facility set, returning a :class:`MonitorHandle` whose ticks yield
  :class:`TickResponse` envelopes.

All three accept the same request types
(:class:`~repro.service.SkylineRequest` / :class:`~repro.service.TopKRequest`)
and an optional per-call :class:`~repro.api.policy.ExecutionPolicy` override.
Engines, storages, compiled graphs, cross-query caches and shard pools are
constructed lazily and cached per resolved policy, so repeated calls with
the same configuration reuse one warm stack.

Policy/dataset conflicts (e.g. a parallel policy over an accessor that
cannot be snapshotted) are rejected with
:class:`~repro.errors.PolicyError` when the policy is *resolved* — at
session construction or call entry — never mid-batch.

Note that monitoring mutates the session's facility set: engines built for
``residency="disk"`` snapshot the set at build time and keep answering over
that snapshot, exactly as a directly-constructed
:class:`~repro.storage.NetworkStorage` would.

Example
-------
>>> from repro.api import ExecutionPolicy, Session
>>> from repro.datagen import WorkloadSpec, make_workload
>>> w = make_workload(WorkloadSpec(num_nodes=150, num_facilities=60, num_queries=2, seed=5))
>>> session = Session(w.graph, w.facilities)
>>> len(session.skyline(w.queries[0]).result) >= 1
True
>>> batch = session.run_batch(
...     [SkylineRequest(q) for q in w.queries],
...     policy=ExecutionPolicy(workers=2, executor="serial"),
... )
>>> len(batch)
2
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.api.policy import DEFAULT_POLICY, ExecutionPolicy
from repro.api.stats import LatencyRecorder
from repro.core.aggregates import AggregateFunction
from repro.core.engine import MCNQueryEngine
from repro.core.maintenance import MaintenanceStatistics, SkylineMaintainer, TopKMaintainer
from repro.core.results import SkylineResult, TopKResult
from repro.errors import PolicyError, QueryError
from repro.network.accessor import AccessStatistics, GraphAccessor
from repro.network.facilities import FacilityId, FacilitySet
from repro.network.graph import MultiCostGraph
from repro.network.location import NetworkLocation
from repro.service.cache import CacheStatistics
from repro.service.requests import (
    QueryOutcome,
    QueryRequest,
    SkylineRequest,
    TopKRequest,
)
from repro.service.service import QueryService
from repro.storage.catalog import PackedDataset, PackedNetworkStorage, open_dataset
from repro.storage.scheme import NetworkStorage

if TYPE_CHECKING:  # pragma: no cover - the executor is imported lazily
    from repro.temporal.executor import SweepResponse
    from repro.temporal.requests import SweepRequest

__all__ = [
    "BatchResponse",
    "MonitorHandle",
    "Response",
    "Session",
    "TickResponse",
]


@dataclass(frozen=True)
class Response:
    """The uniform envelope of one executed query.

    Carries the answer (:class:`~repro.core.results.SkylineResult` or
    :class:`~repro.core.results.TopKResult`), the per-query I/O counter
    delta, the wall-clock latency and the *resolved* policy the query ran
    under — one shape regardless of which execution stack did the work.
    """

    request: QueryRequest
    result: SkylineResult | TopKResult
    io: AccessStatistics
    elapsed_seconds: float
    policy: ExecutionPolicy
    served_from_memo: bool = False
    ticket: int = 0

    @property
    def kind(self) -> str:
        """``"skyline"`` or ``"topk"``."""
        return "skyline" if isinstance(self.request, SkylineRequest) else "topk"

    def __len__(self) -> int:
        return len(self.result)

    def __iter__(self) -> Iterator:
        return iter(self.result)

    @classmethod
    def from_outcome(cls, outcome: QueryOutcome, policy: ExecutionPolicy) -> "Response":
        """Wrap a service-layer :class:`~repro.service.QueryOutcome`."""
        return cls(
            request=outcome.request,
            result=outcome.result,
            io=outcome.io,
            elapsed_seconds=outcome.elapsed_seconds,
            policy=policy,
            served_from_memo=outcome.served_from_memo,
            ticket=outcome.ticket,
        )


@dataclass(frozen=True)
class BatchResponse:
    """The uniform envelope of one executed batch.

    One shape for sequential and sharded runs: per-request
    :class:`Response` envelopes in submission order, the batch's summed I/O
    and cache counter deltas, and the resolved policy.  For a sharded run
    ``workers``/``routing``/``executor`` echo the policy, ``shard_sizes``
    records how the batch was partitioned and ``shard_io`` carries each
    shard's own counter delta (their sum equals :attr:`io`).
    """

    responses: tuple[Response, ...]
    elapsed_seconds: float
    io: AccessStatistics
    cache: CacheStatistics
    policy: ExecutionPolicy
    shard_sizes: tuple[int, ...] = ()
    shard_io: tuple[AccessStatistics, ...] = ()

    @property
    def workers(self) -> int:
        return self.policy.workers

    @property
    def sharded(self) -> bool:
        """Whether the batch ran through the sharded parallel service."""
        return bool(self.shard_sizes)

    @property
    def page_reads(self) -> int:
        return self.io.page_reads

    @property
    def memo_hits(self) -> int:
        return sum(1 for response in self.responses if response.served_from_memo)

    def throughput_qps(self) -> float:
        """Queries answered per wall-clock second (0.0 for an empty batch)."""
        if not self.responses or self.elapsed_seconds <= 0:
            return 0.0
        return len(self.responses) / self.elapsed_seconds

    def describe(self) -> dict[str, object]:
        """Summary dictionary (CLI / replay-driver friendly)."""
        summary: dict[str, object] = {
            "queries": len(self.responses),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_qps": round(self.throughput_qps(), 1),
            "page_reads": self.io.page_reads,
            "buffer_hits": self.io.buffer_hits,
            "memo_hits": self.memo_hits,
            "cache_hit_rate": round(self.cache.hit_rate(), 4),
        }
        if self.sharded:
            summary.update(
                workers=self.policy.workers,
                routing=self.policy.routing,
                executor=self.policy.executor,
                shards=list(self.shard_sizes),
            )
        return summary

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self) -> Iterator[Response]:
        return iter(self.responses)

    @classmethod
    def from_report(cls, report, policy: ExecutionPolicy) -> "BatchResponse":
        """Wrap a :class:`~repro.service.BatchReport` (sharded or not)."""
        shards = tuple(getattr(report, "shards", ()))
        return cls(
            responses=tuple(
                Response.from_outcome(outcome, policy) for outcome in report.outcomes
            ),
            elapsed_seconds=report.elapsed_seconds,
            io=report.io,
            cache=report.cache,
            policy=policy,
            shard_sizes=tuple(shard.size for shard in shards),
            shard_io=tuple(shard.report.io for shard in shards),
        )


@dataclass(frozen=True)
class TickResponse:
    """The uniform envelope of one applied monitoring tick.

    Mirrors :class:`~repro.monitor.TickReport` (per-subscription deltas,
    maintenance-path counters, I/O) with the resolved policy attached.
    """

    index: int
    updates: int
    deltas: tuple
    counters: MaintenanceStatistics
    fallback_subscriptions: tuple[int, ...]
    sharded: bool
    elapsed_seconds: float
    io: AccessStatistics
    policy: ExecutionPolicy

    @property
    def incremental_updates(self) -> int:
        return self.counters.incremental_updates

    @property
    def recomputations(self) -> int:
        return self.counters.recomputations

    @property
    def changed_subscriptions(self) -> tuple[int, ...]:
        return tuple(delta.subscription_id for delta in self.deltas if delta.changed)

    @classmethod
    def from_report(cls, report, policy: ExecutionPolicy) -> "TickResponse":
        """Wrap a :class:`~repro.monitor.TickReport`."""
        return cls(
            index=report.index,
            updates=report.updates,
            deltas=tuple(report.deltas),
            counters=report.counters,
            fallback_subscriptions=report.fallback_subscriptions,
            sharded=report.sharded,
            elapsed_seconds=report.elapsed_seconds,
            io=report.io,
            policy=policy,
        )


class MonitorHandle:
    """The subscriptions one :meth:`Session.monitor` call registered.

    A thin, policy-carrying view over the session's shared
    :class:`~repro.MonitoringService`: ticks applied through any handle
    advance *all* of the session's subscriptions (they share one live
    facility set); the handle's :attr:`subscription_ids` identify the
    subset this call created.
    """

    def __init__(
        self,
        service,
        subscription_ids: tuple[int, ...],
        policy: ExecutionPolicy,
        recorder: LatencyRecorder | None = None,
    ):
        self._service = service
        self._subscription_ids = subscription_ids
        self._policy = policy
        self._recorder = recorder

    @property
    def service(self):
        """The underlying :class:`~repro.MonitoringService` (escape hatch)."""
        return self._service

    @property
    def subscription_ids(self) -> tuple[int, ...]:
        return self._subscription_ids

    @property
    def policy(self) -> ExecutionPolicy:
        return self._policy

    @property
    def statistics(self) -> MaintenanceStatistics:
        """The service's lifetime maintenance counters."""
        return self._service.statistics

    def tick(self, tick) -> TickResponse:
        """Apply one :class:`~repro.monitor.UpdateTick` atomically."""
        response = TickResponse.from_report(self._service.apply_tick(tick), self._policy)
        if self._recorder is not None:
            self._recorder.observe("tick", response.elapsed_seconds)
        return response

    def run(self, stream) -> list[TickResponse]:
        """Apply a whole :class:`~repro.monitor.UpdateStream` tick by tick."""
        return [self.tick(tick) for tick in stream]

    def result_signature(self, subscription_id: int) -> dict[FacilityId, object]:
        """The subscription's current result as a comparable mapping."""
        return self._service.result_signature(subscription_id)

    def maintainer_of(self, subscription_id: int) -> SkylineMaintainer | TopKMaintainer:
        """The maintainer behind one subscription (current result + counters)."""
        return self._service.maintainer_of(subscription_id)

    def unsubscribe(self, subscription_id: int) -> None:
        """Drop one subscription from the underlying service."""
        self._service.unsubscribe(subscription_id)
        self._subscription_ids = tuple(
            sid for sid in self._subscription_ids if sid != subscription_id
        )


class Session:
    """One dataset, one object, every execution stack.

    Parameters
    ----------
    graph:
        The multi-cost network.
    facilities:
        The facility set over ``graph``.  Monitoring mutates it in place.
    storage:
        Optional pre-built :class:`~repro.storage.NetworkStorage`; it backs
        every ``residency="disk"`` policy regardless of the policy's page
        knobs (the knobs only shape storages the session builds itself).
    accessor:
        Optional explicit :class:`~repro.network.accessor.GraphAccessor`
        that fixes the data layer outright (mutually exclusive with
        ``storage``).  A parallel policy then requires the accessor to
        support ``snapshot_view`` — checked when the policy resolves, not
        mid-batch.
    policy:
        The session's default :class:`~repro.api.policy.ExecutionPolicy`;
        every call accepts a per-call override.
    dataset_path:
        Open the session directly over a file-backed dataset pack (mutually
        exclusive with ``graph``/``facilities``/``storage``/``accessor``).
        The graph and facility set are then read-only ``mmap``-backed views
        of the pack: every query runs through the packed accessor, the
        compiled fast path is off (it needs the in-memory topology) and
        :meth:`monitor` is rejected.  To keep the fast path, build the
        workload in memory and attach the pack via
        ``ExecutionPolicy(residency="dataset", dataset_path=...)`` instead.
    verify_checksum:
        Whether opening ``dataset_path`` verifies the pack's SHA-256
        (default ``True``).
    profiles:
        Named time-profile sets (``{name: TimeVaryingMCN}``) the temporal
        subsystem can evaluate.  A policy with ``temporal="profiles"``
        names one of them via ``profile_source``; the session then answers
        ``departure_time``-bearing requests (and :meth:`sweep` calls) over
        profile-evaluated snapshots.  Every set must be built over this
        session's graph.
    """

    def __init__(
        self,
        graph: MultiCostGraph | None = None,
        facilities: FacilitySet | None = None,
        *,
        storage: NetworkStorage | None = None,
        accessor: GraphAccessor | None = None,
        policy: ExecutionPolicy | None = None,
        dataset_path: str | None = None,
        verify_checksum: bool = True,
        profiles: dict[str, object] | None = None,
    ):
        if storage is not None and accessor is not None:
            raise PolicyError(
                "pass either a pre-built storage or an explicit accessor, not "
                "both — they each fix the session's data layer"
            )
        self._datasets: dict[str, PackedDataset] = {}
        self._dataset_storages: dict[tuple[str, float], PackedNetworkStorage] = {}
        self._dataset_path: str | None = None
        if dataset_path is not None:
            if graph is not None or facilities is not None or storage is not None or accessor is not None:
                raise PolicyError(
                    "dataset_path fixes the session's data layer; do not also "
                    "pass graph/facilities/storage/accessor — either open the "
                    "pack alone, or keep the in-memory workload and attach the "
                    "pack via ExecutionPolicy(residency='dataset', "
                    "dataset_path=...)"
                )
            coerced = self._coerce_policy(policy)
            dataset = self._open_dataset(dataset_path, verify_checksum=verify_checksum)
            packed = dataset.storage(buffer_fraction=coerced.buffer_fraction)
            self._dataset_storages[(dataset_path, float(coerced.buffer_fraction))] = packed
            self._dataset_path = dataset_path
            graph = packed.graph
            facilities = packed.facilities
            accessor = packed
        elif graph is None or facilities is None:
            raise QueryError(
                "a Session needs either a graph and its facility set, or a "
                "dataset_path naming a dataset pack"
            )
        if facilities.graph is not graph:
            raise QueryError("facility set was built for a different graph")
        self._graph = graph
        self._facilities = facilities
        self._explicit_storage = storage
        self._explicit_accessor = accessor
        self._profiles = self._coerce_profiles(graph, profiles)
        self._temporal: dict[tuple, object] = {}
        self._default_policy = self._coerce_policy(policy)
        self._check_policy(self._default_policy)
        self._storages: dict[tuple[int, float], NetworkStorage] = {}
        self._engines: dict[tuple, MCNQueryEngine] = {}
        self._services: dict[tuple, QueryService] = {}
        self._sharded: dict[tuple, object] = {}
        self._monitor = None
        self._monitor_key: tuple | None = None
        self._latency = LatencyRecorder()
        self._closed = False
        #: Optional callable invoked with the verb name (``"query"`` /
        #: ``"batch"`` / ``"monitor"``) at every verb entry.  The serving
        #: tier's fault plane uses it to make a session verb fail on demand;
        #: it is ``None`` (and free) in normal operation.
        self.fault_hook: Callable[[str], None] | None = None
        # Computed eagerly: ticks mutate the facility set in place, and the
        # fingerprint must describe the *pristine* workload a journal was
        # opened against.
        self._fingerprint = self._compute_fingerprint()

    @classmethod
    def from_dataset(
        cls,
        path: str,
        *,
        policy: ExecutionPolicy | None = None,
        verify_checksum: bool = True,
    ) -> "Session":
        """Open a read-only session over a dataset pack (see ``dataset_path``)."""
        return cls(dataset_path=path, policy=policy, verify_checksum=verify_checksum)

    @staticmethod
    def _coerce_profiles(graph: MultiCostGraph, profiles: dict[str, object] | None) -> dict:
        if not profiles:
            return {}
        from repro.timedep.network import TimeVaryingMCN

        coerced = {}
        for name, network in profiles.items():
            if not isinstance(name, str) or not name:
                raise PolicyError(
                    f"profile-set names must be non-empty strings, got {name!r}"
                )
            if not isinstance(network, TimeVaryingMCN):
                raise PolicyError(
                    f"profile set {name!r} must be a TimeVaryingMCN, got "
                    f"{type(network).__name__}"
                )
            if network.base_graph is not graph:
                raise PolicyError(
                    f"profile set {name!r} was built over a different base "
                    "graph than the session's"
                )
            coerced[name] = network
        return coerced

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> MultiCostGraph:
        return self._graph

    @property
    def facilities(self) -> FacilitySet:
        """The session's live facility set (mutated by monitoring ticks)."""
        return self._facilities

    @property
    def policy(self) -> ExecutionPolicy:
        """The session's default execution policy."""
        return self._default_policy

    @property
    def profile_names(self) -> tuple[str, ...]:
        """The registered time-profile sets a temporal policy may name."""
        return tuple(sorted(self._profiles))

    def dataset_fingerprint(self) -> str:
        """A stable identifier of the workload this session serves.

        Dataset-backed sessions use the pack checksum; in-memory sessions
        hash the pristine workload shape.  The serving tier's batch-job
        journal records this at open time and refuses to recover against a
        different dataset (:class:`~repro.errors.JournalMismatchError`).
        """
        return self._fingerprint

    def _compute_fingerprint(self) -> str:
        if self._dataset_path is not None:
            return "pack:" + self._datasets[self._dataset_path].catalog.checksum
        shape = (
            f"{self._graph.num_nodes}:{self._graph.num_edges}:"
            f"{self._graph.num_cost_types}:{len(self._facilities)}"
        )
        return "shape:" + hashlib.sha256(shape.encode("ascii")).hexdigest()

    @property
    def latency(self) -> LatencyRecorder:
        """Rolling latency percentiles per verb (``query`` / ``batch`` / ``tick``).

        Always on and O(1) per call: a bounded window for the exact recent
        percentiles plus lifetime P² tail estimates — the structure the
        serving tier's ``/v1/metrics`` endpoint exposes.
        """
        return self._latency

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Tear down every cached stack deterministically (idempotent).

        Closes the monitoring service (folding its counters), drops the
        cross-query caches and result memos of every cached
        :class:`~repro.QueryService`, and releases the cached engines,
        sharded services and storages.  After ``close`` every execution
        verb raises :class:`~repro.errors.QueryError` — the serving tier
        (and tests) rely on this to never leak pooled state between cases.
        Latency statistics survive, so a shutdown hook can still report.
        """
        if self._closed:
            return
        self._closed = True
        monitor, self._monitor = self._monitor, None
        self._monitor_key = None
        if monitor is not None:
            monitor.close()
        temporal, self._temporal = self._temporal, {}
        for executor in temporal.values():
            executor.close()
        for service in self._services.values():
            service.reset_cache()
        self._services.clear()
        self._sharded.clear()
        self._engines.clear()
        self._storages.clear()
        self._dataset_storages.clear()
        datasets, self._datasets = self._datasets, {}
        for dataset in datasets.values():
            dataset.close()

    def __enter__(self) -> "Session":
        self._ensure_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def invalidate_result_caches(self) -> int:
        """Drop every cached service's cross-query cache and result memo.

        The caches memoise facility placements and whole results, so they
        must be invalidated whenever the session's facility set mutates
        *outside* a cached service's view — exactly what a serving-tier
        PATCH tick does.  Returns the number of services invalidated.
        Engines stay warm (compiled graphs refresh themselves via the
        facility-set revision changelog).
        """
        self._ensure_open()
        for service in self._services.values():
            service.reset_cache()
        return len(self._services)

    def _ensure_open(self) -> None:
        if self._closed:
            raise QueryError(
                "this Session is closed; build a new Session (close() tears "
                "down cached engines, services and the monitoring stack)"
            )

    def storage_for(self, policy: ExecutionPolicy | None = None) -> NetworkStorage | None:
        """The disk storage the resolved policy runs against (``None`` for memory).

        Built lazily (and cached per ``page_size``/``buffer_fraction``) the
        first time a disk policy needs it.
        """
        resolved = self._resolve(policy)
        if self._explicit_accessor is not None:
            accessor = self._explicit_accessor
            return accessor if isinstance(accessor, NetworkStorage) else None
        if resolved.residency != "disk":
            return None
        if self._explicit_storage is not None:
            return self._explicit_storage
        key = (resolved.page_size, float(resolved.buffer_fraction))
        if key not in self._storages:
            self._storages[key] = NetworkStorage.build(
                self._graph,
                self._facilities,
                page_size=resolved.page_size,
                buffer_fraction=resolved.buffer_fraction,
            )
        return self._storages[key]

    def _open_dataset(self, path: str, *, verify_checksum: bool = True) -> PackedDataset:
        if path not in self._datasets:
            self._datasets[path] = open_dataset(path, verify_checksum=verify_checksum)
        return self._datasets[path]

    def dataset_storage_for(
        self, policy: ExecutionPolicy | None = None
    ) -> PackedNetworkStorage | None:
        """The packed accessor a ``residency="dataset"`` policy runs against.

        ``None`` for other residencies.  For a graph-backed session the pack
        is opened lazily (and cached per path/buffer size) with the session's
        live graph and facility set attached, after checking that the pack's
        shape matches them — so answers stay validated against the in-memory
        structures and the compiled fast path keeps working, while every page
        fetch goes through the ``mmap``-backed file.
        """
        resolved = self._resolve(policy)
        if resolved.residency != "dataset":
            return None
        if self._dataset_path is not None:
            return self._explicit_accessor  # the session-owning pack accessor
        key = (resolved.dataset_path, float(resolved.buffer_fraction))
        if key not in self._dataset_storages:
            dataset = self._open_dataset(resolved.dataset_path)
            catalog = dataset.catalog
            mismatches = [
                f"{name}: pack has {packed}, session has {live}"
                for name, packed, live in (
                    ("num_nodes", catalog.num_nodes, self._graph.num_nodes),
                    ("num_edges", catalog.num_edges, self._graph.num_edges),
                    ("num_cost_types", catalog.num_cost_types, self._graph.num_cost_types),
                    ("num_facilities", catalog.num_facilities, len(self._facilities)),
                )
                if packed != live
            ]
            if mismatches:
                raise PolicyError(
                    f"dataset pack {resolved.dataset_path!r} does not match "
                    "the session's workload (" + "; ".join(mismatches) + "); "
                    "rebuild the pack from this graph or open it standalone "
                    "with Session(dataset_path=...)"
                )
            self._dataset_storages[key] = dataset.storage(
                buffer_fraction=resolved.buffer_fraction,
                graph=self._graph,
                facilities=self._facilities,
            )
        return self._dataset_storages[key]

    def engine_for(self, policy: ExecutionPolicy | None = None) -> MCNQueryEngine:
        """The (cached) engine the resolved policy executes on."""
        resolved = self._resolve(policy)
        key = self._engine_key(resolved)
        if key not in self._engines:
            compiled = self._resolved_compiled(resolved)
            vector = resolved.resolved_vector()
            if resolved.residency == "dataset" and self._dataset_path is None:
                engine = MCNQueryEngine(
                    self._graph,
                    self._facilities,
                    accessor=self.dataset_storage_for(resolved),
                    compiled=compiled,
                    vector=vector,
                )
            elif self._explicit_accessor is not None:
                engine = MCNQueryEngine(
                    self._graph,
                    self._facilities,
                    accessor=self._explicit_accessor,
                    compiled=compiled,
                    vector=vector,
                )
            elif resolved.residency == "disk":
                engine = MCNQueryEngine(
                    self._graph,
                    self._facilities,
                    storage=self.storage_for(resolved),
                    compiled=compiled,
                    vector=vector,
                )
            else:
                engine = MCNQueryEngine(
                    self._graph, self._facilities, compiled=compiled, vector=vector
                )
            self._engines[key] = engine
        return self._engines[key]

    # ------------------------------------------------------------------ #
    # One-shot execution
    # ------------------------------------------------------------------ #
    def query(self, request: QueryRequest, *, policy: ExecutionPolicy | None = None) -> Response:
        """Execute one request and return its :class:`Response` envelope.

        The request runs through the policy's (cached) batch service, so
        repeated sessions calls share the cross-query expansion cache and —
        when the policy enables it — the result memo.  A request carrying a
        ``departure_time`` requires ``temporal="profiles"`` and runs on the
        (cached) snapshot stack of that time instead.
        """
        if self.fault_hook is not None:
            self.fault_hook("query")
        resolved = self._resolve(policy)
        departure_time = getattr(request, "departure_time", None)
        if departure_time is not None:
            executor = self._temporal_for(resolved)
            response = executor.query(request, self._static_policy(resolved))
            response = Response(
                request=response.request,
                result=response.result,
                io=response.io,
                elapsed_seconds=response.elapsed_seconds,
                policy=resolved,
                served_from_memo=response.served_from_memo,
                ticket=response.ticket,
            )
            self._latency.observe("query", response.elapsed_seconds)
            return response
        outcome = self._service_for(resolved).execute(request)
        response = Response.from_outcome(outcome, resolved)
        self._latency.observe("query", response.elapsed_seconds)
        return response

    def skyline(
        self, location: NetworkLocation, *, policy: ExecutionPolicy | None = None
    ) -> Response:
        """Convenience: a skyline request at ``location`` under the policy's algorithm."""
        resolved = self._resolve(policy)
        return self.query(
            SkylineRequest(location, algorithm=resolved.algorithm), policy=resolved
        )

    def top_k(
        self,
        location: NetworkLocation,
        k: int,
        *,
        weights: Sequence[float] | None = None,
        aggregate: AggregateFunction | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> Response:
        """Convenience: a top-``k`` request at ``location`` under the policy's algorithm."""
        resolved = self._resolve(policy)
        request = TopKRequest(
            location,
            k,
            weights=tuple(float(w) for w in weights) if weights is not None else None,
            aggregate=aggregate,
            algorithm=resolved.algorithm,
        )
        return self.query(request, policy=resolved)

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        requests: Sequence[QueryRequest],
        *,
        policy: ExecutionPolicy | None = None,
    ) -> BatchResponse:
        """Execute ``requests`` under the resolved policy.

        With ``workers == 1`` the batch runs through the policy's sequential
        :class:`~repro.QueryService`; with ``workers > 1`` it is sharded
        across a (cached) :class:`~repro.ShardedQueryService`.  Either way
        the answers, their order and the summed counters are identical to
        the corresponding direct-service run.

        Requests carrying a ``departure_time`` (requires
        ``temporal="profiles"``) run on their snapshot stacks; a mixed batch
        is split into maximal same-stack runs executed in submission order,
        and the envelope sums their counters (shard accounting is then
        omitted).
        """
        if self.fault_hook is not None:
            self.fault_hook("batch")
        resolved = self._resolve(policy)
        if any(getattr(request, "departure_time", None) is not None for request in requests):
            response = self._run_temporal_batch(list(requests), resolved)
            self._latency.observe("batch", response.elapsed_seconds)
            return response
        if resolved.workers > 1:
            report = self._sharded_for(resolved).run_batch(requests)
        else:
            report = self._service_for(resolved).run_batch(requests)
        response = BatchResponse.from_report(report, resolved)
        self._latency.observe("batch", response.elapsed_seconds)
        return response

    def _run_temporal_batch(
        self, requests: list[QueryRequest], resolved: ExecutionPolicy
    ) -> BatchResponse:
        """Split a (possibly mixed) temporal batch into same-stack runs."""
        import time as time_module

        executor = self._temporal_for(resolved)
        static_policy = self._static_policy(resolved)
        start = time_module.perf_counter()
        responses: list[Response] = []
        io = AccessStatistics()
        cache = CacheStatistics()
        index = 0
        while index < len(requests):
            temporal_run = getattr(requests[index], "departure_time", None) is not None
            end = index + 1
            while end < len(requests) and (
                (getattr(requests[end], "departure_time", None) is not None) == temporal_run
            ):
                end += 1
            run = requests[index:end]
            if temporal_run:
                batch = executor.run_batch(run, static_policy)
            else:
                batch = BatchResponse.from_report(
                    self._service_for(resolved).run_batch(run), resolved
                )
            responses.extend(batch.responses)
            io.accumulate(batch.io)
            cache.accumulate(batch.cache)
            index = end
        return BatchResponse(
            responses=tuple(responses),
            elapsed_seconds=time_module.perf_counter() - start,
            io=io,
            cache=cache,
            policy=resolved,
        )

    # ------------------------------------------------------------------ #
    # Period sweeps (temporal subsystem)
    # ------------------------------------------------------------------ #
    def sweep(
        self, request: SweepRequest, *, policy: ExecutionPolicy | None = None
    ) -> SweepResponse:
        """Execute one period sweep and return its :class:`~repro.temporal.SweepResponse`.

        ``request`` is a :class:`~repro.temporal.SkylineSweepRequest` or
        :class:`~repro.temporal.TopKSweepRequest`; the resolved policy must
        enable ``temporal="profiles"``.  Every sampled instant is answered
        over its (cached) snapshot stack, and the per-instant answers are
        grouped into the paper's stable intervals.
        """
        if self.fault_hook is not None:
            self.fault_hook("query")
        resolved = self._resolve(policy)
        executor = self._temporal_for(resolved)
        response = executor.sweep(request, self._static_policy(resolved))
        self._latency.observe("query", response.elapsed_seconds)
        return dataclasses.replace(response, policy=resolved)

    # ------------------------------------------------------------------ #
    # Continuous monitoring
    # ------------------------------------------------------------------ #
    def monitor(
        self,
        requests: Sequence[QueryRequest],
        *,
        policy: ExecutionPolicy | None = None,
    ) -> MonitorHandle:
        """Register long-lived subscriptions and return their :class:`MonitorHandle`.

        Monitoring always runs on the in-memory layer over the session's
        *live* facility set (the policy's ``residency`` / page knobs do not
        apply); ``compiled``, ``workers``/``routing``/``executor`` and
        ``shard_fallback_threshold`` configure it.  Because every
        subscription shares that one mutable set, all :meth:`monitor` calls
        of a session must resolve to the same monitoring configuration —
        a conflicting override raises :class:`~repro.errors.PolicyError`.
        """
        if self.fault_hook is not None:
            self.fault_hook("monitor")
        resolved = self._resolve(policy)
        if self._dataset_path is not None:
            raise PolicyError(
                "a dataset-backed session is read-only: monitoring mutates the "
                "facility set in place, and a pack's facility view cannot be "
                "mutated; rebuild the workload in memory (a graph-backed "
                "Session) to monitor it"
            )
        key = (
            resolved.resolved_compiled(),
            resolved.resolved_vector(),
            resolved.workers,
            resolved.routing,
            resolved.executor,
            resolved.shard_fallback_threshold,
        )
        if self._monitor is None:
            from repro.monitor.service import MonitoringService

            self._monitor = MonitoringService(
                self._graph,
                self._facilities,
                policy=resolved.replace(residency="memory"),
            )
            self._monitor_key = key
        elif key != self._monitor_key:
            raise PolicyError(
                "this session already monitors with a different configuration "
                f"{self._monitor_key} (compiled, workers, routing, executor, "
                "shard_fallback_threshold); subscriptions share one live "
                "facility set, so either reuse the original policy or open a "
                "separate Session"
            )
        subscription_ids = tuple(self._monitor.subscribe(request) for request in requests)
        return MonitorHandle(self._monitor, subscription_ids, resolved, self._latency)

    # ------------------------------------------------------------------ #
    # Policy resolution internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce_policy(policy: ExecutionPolicy | None) -> ExecutionPolicy:
        if policy is None:
            return DEFAULT_POLICY
        if not isinstance(policy, ExecutionPolicy):
            raise PolicyError(
                f"expected an ExecutionPolicy, got {type(policy).__name__} "
                "(build one with repro.api.ExecutionPolicy(...))"
            )
        return policy

    def _resolve(self, policy: ExecutionPolicy | None) -> ExecutionPolicy:
        self._ensure_open()
        if policy is None:
            return self._default_policy
        resolved = self._coerce_policy(policy)
        if resolved is not self._default_policy:
            self._check_policy(resolved)
        return resolved

    def _resolved_compiled(self, policy: ExecutionPolicy) -> bool:
        """The effective fast-path decision for *this* session's data layer.

        A session opened straight over a pack has no in-memory topology to
        compile, so the fast path is forced off there regardless of the
        policy mode or the ``REPRO_COMPILED`` toggle.
        """
        if self._dataset_path is not None:
            return False
        return policy.resolved_compiled()

    def _check_policy(self, policy: ExecutionPolicy) -> None:
        """Reject policy/dataset conflicts before any execution starts."""
        if policy.temporal == "profiles":
            if self._dataset_path is not None:
                raise PolicyError(
                    "temporal='profiles' needs an in-memory base graph to "
                    "evaluate profiles over; a pack-backed session is "
                    "read-only — open the workload as a graph-backed Session"
                )
            if policy.residency == "dataset":
                raise PolicyError(
                    "temporal='profiles' conflicts with residency='dataset': "
                    "snapshots are materialised per departure time and cannot "
                    "be served from a static pack; use residency='memory' or "
                    "'disk'"
                )
            if policy.profile_source not in self._profiles:
                registered = ", ".join(sorted(self._profiles)) or "none registered"
                raise PolicyError(
                    f"unknown profile_source {policy.profile_source!r}; this "
                    f"session's profile sets: {registered} (register them via "
                    "Session(profiles={name: TimeVaryingMCN(...)}))"
                )
        if policy.residency == "dataset":
            if self._dataset_path is not None:
                if policy.dataset_path != self._dataset_path:
                    raise PolicyError(
                        f"this session is already backed by the dataset pack "
                        f"{self._dataset_path!r}; a policy naming "
                        f"{policy.dataset_path!r} cannot retarget it — open a "
                        "separate Session for the other pack"
                    )
                return
            if self._explicit_storage is not None or self._explicit_accessor is not None:
                raise PolicyError(
                    "residency='dataset' conflicts with the session's explicit "
                    "data layer; drop the storage/accessor argument or use "
                    "Session(dataset_path=...)"
                )
        accessor = self._explicit_accessor
        if accessor is None:
            return
        if policy.residency == "disk" and not isinstance(accessor, NetworkStorage):
            raise PolicyError(
                "residency='disk' conflicts with the session's explicit "
                f"{type(accessor).__name__}: the accessor already fixes the "
                "data layer; use residency='memory' or hand the session a "
                "NetworkStorage instead"
            )
        if policy.workers > 1 and not hasattr(accessor, "snapshot_view"):
            raise PolicyError(
                f"workers={policy.workers} needs a data layer that supports "
                f"read-only snapshot views, but the session's explicit "
                f"{type(accessor).__name__} does not; use workers=1 or a "
                "NetworkStorage / InMemoryAccessor data layer"
            )

    def _engine_key(self, policy: ExecutionPolicy) -> tuple:
        compiled = self._resolved_compiled(policy)
        vector = policy.resolved_vector()
        if policy.residency == "dataset" and self._dataset_path is None:
            return (
                "dataset",
                policy.dataset_path,
                float(policy.buffer_fraction),
                compiled,
                vector,
            )
        if self._explicit_accessor is not None:
            return ("accessor", compiled, vector)
        if policy.residency == "disk":
            if self._explicit_storage is not None:
                return ("disk", "explicit", compiled, vector)
            return (
                "disk",
                policy.page_size,
                float(policy.buffer_fraction),
                compiled,
                vector,
            )
        return ("memory", compiled, vector)

    @staticmethod
    def _static_policy(policy: ExecutionPolicy) -> ExecutionPolicy:
        """The equivalent static policy a snapshot stack executes under."""
        return policy.replace(temporal="off", profile_source=None)

    def _temporal_for(self, policy: ExecutionPolicy):
        """The (cached) temporal executor the resolved policy routes through."""
        if policy.temporal != "profiles":
            raise PolicyError(
                "this request needs the temporal subsystem (it carries a "
                "departure_time or is a period sweep), but the resolved "
                "policy has temporal='off'; use "
                "ExecutionPolicy(temporal='profiles', profile_source=<name>) "
                "with a profile set registered on the Session"
            )
        key = (
            policy.profile_source,
            float(policy.temporal_quantum),
            policy.temporal_cache_size,
        )
        if key not in self._temporal:
            from repro.temporal.executor import TemporalExecutor

            self._temporal[key] = TemporalExecutor(
                self._graph,
                self._facilities,
                self._profiles[policy.profile_source],
                quantum=policy.temporal_quantum,
                cache_size=policy.temporal_cache_size,
            )
        return self._temporal[key]

    def _service_for(self, policy: ExecutionPolicy) -> QueryService:
        key = self._engine_key(policy) + (
            policy.memoize_results,
            policy.harvest_settled,
            policy.max_cached_entries,
        )
        if key not in self._services:
            self._services[key] = QueryService(
                self.engine_for(policy), policy=policy.replace(workers=1)
            )
        return self._services[key]

    def _sharded_for(self, policy: ExecutionPolicy):
        key = self._engine_key(policy) + (
            policy.workers,
            policy.routing,
            policy.executor,
            policy.memoize_results,
            policy.harvest_settled,
            policy.max_cached_entries,
        )
        if key not in self._sharded:
            from repro.parallel.service import ShardedQueryService

            self._sharded[key] = ShardedQueryService(
                self.engine_for(policy), policy=policy
            )
        return self._sharded[key]
