"""Figure 9(a): skyline processing cost versus the edge-cost distribution.

Paper's shape: anti-correlated costs are the most expensive (facilities close
under one cost tend to be far under the others, so fewer dominations, more
candidates, larger skylines); correlated costs are the cheapest; independent
sits in between.  CEA wins under every distribution.
"""

from __future__ import annotations

from _common import BENCH_SCALE, cea_wins_everywhere, report_series

from repro.bench.experiments import effect_of_distribution


def test_fig9a_skyline_effect_of_distribution(benchmark):
    series = benchmark.pedantic(
        lambda: effect_of_distribution("skyline", BENCH_SCALE), rounds=1, iterations=1
    )
    report_series(benchmark, series)
    assert cea_wins_everywhere(series)
    by_value = {row.value: row for row in series.rows}
    for algorithm in ("lsa", "cea"):
        anti = by_value["anti-correlated"].metric(algorithm)
        correlated = by_value["correlated"].metric(algorithm)
        assert anti >= correlated, f"{algorithm}: anti-correlated should cost at least as much"
    # Anti-correlated costs also produce the largest skylines.
    assert (
        by_value["anti-correlated"].metric("cea", "mean_result_size")
        >= by_value["correlated"].metric("cea", "mean_result_size")
    )
